// Run inspector: execute the pipeline with the full observability stack
// armed — metrics registry, flight recorder (Chrome trace), process
// telemetry sampler, and (optionally) the embedded live HTTP inspector —
// then print the per-stage span table and headline counters and write
// the machine-readable artifacts to disk. This is the observability
// tour — see README "Observability" and "Live inspection".
//
//   run_inspector [REPORT_PATH]                    (legacy positional)
//                 [--report PATH]    run report JSON (default run_report.json)
//                 [--trace PATH]     Chrome trace JSON ("" = skip)
//                 [--threads N]      worker threads (default 2)
//                 [--scale S]        world scale (default 0.02)
//                 [--port N]         serve /metrics /report /trace /healthz
//                                    on 127.0.0.1:N (0 = ephemeral) and
//                                    linger after the run
//                 [--linger-s N]     seconds to keep serving (default 10)
#include <condition_variable>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>

#include "core/study.h"
#include "netflow/profile.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/proc_stats.h"
#include "obs/trace_buffer.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cbwt;

  std::string report_path = "run_report.json";
  std::string trace_path;
  double scale = 0.02;  // small world: this is a tour, not a bench
  unsigned threads = 2;
  int port = -1;  // -1 = inspector off
  unsigned linger_s = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--report" && value != nullptr) {
      report_path = value;
      ++i;
    } else if (flag == "--trace" && value != nullptr) {
      trace_path = value;
      ++i;
    } else if (flag == "--scale" && value != nullptr) {
      scale = std::atof(value);
      ++i;
    } else if (flag == "--threads" && value != nullptr) {
      threads = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (flag == "--port" && value != nullptr) {
      port = std::atoi(value);
      ++i;
    } else if (flag == "--linger-s" && value != nullptr) {
      linger_s = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (!flag.empty() && flag[0] != '-') {
      report_path = flag;  // legacy positional REPORT_PATH
    } else {
      std::fprintf(stderr,
                   "usage: run_inspector [REPORT_PATH] [--report PATH] "
                   "[--trace PATH] [--threads N] [--scale S] [--port N] "
                   "[--linger-s N]\n");
      return 2;
    }
  }

  obs::Registry registry;
  obs::TraceBuffer trace;
  obs::ProcSampler sampler(&registry, std::chrono::milliseconds(100));

  core::StudyConfig config;
  config.world.seed = 20180901;
  config.world.scale = scale;
  config.netflow.scale = 5e-5;
  config.threads = threads;  // exercise the parallel path (results are
                             // bit-identical to threads=1)
  config.registry = &registry;
  config.trace = &trace;
  if (port >= 0) {
    config.inspector.enabled = true;
    config.inspector.port = static_cast<std::uint16_t>(port);
  }
  // Chaos knob: CBWT_FAULT_RATE / CBWT_FAULT_SEED turn on deterministic
  // fault injection at every external-facing service (unset = zero-cost
  // fault-free run). See README "Fault injection".
  config.fault_plan = fault::FaultPlan::from_env();
  core::Study study(config);

  std::printf("cbwt run inspector (seed %llu, scale %.2f, threads %u)\n",
              static_cast<unsigned long long>(config.world.seed), config.world.scale,
              config.threads);
  if (study.inspector() != nullptr) {
    std::printf("inspector listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(study.inspector()->port()));
    std::fflush(stdout);
  }
  if (config.fault_plan.enabled()) {
    std::printf("fault injection on: rate %.2f, seed %llu\n",
                config.fault_plan.default_rates.total(),
                static_cast<unsigned long long>(config.fault_plan.seed));
  }

  // Drive the pipeline end to end: dataset -> pDNS -> classify -> geoloc
  // -> border analysis -> one ISP NetFlow day.
  (void)study.pdns_store();
  (void)study.outcomes();
  (void)study.completed_tracker_ips();
  const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);
  const auto confinement = study.analyzer().confinement(eu_flows);
  const auto isp_run = study.run_isp_snapshot(netflow::default_isps().front(),
                                              netflow::default_snapshots().front());

  // --- per-stage span table ---------------------------------------------
  util::TextTable table(
      {"stage", "parent", "wall ms", "proc cpu ms", "thread cpu ms", "items"});
  for (const auto& span : registry.spans()) {
    std::string name(span.depth * 2, ' ');
    name += span.name;
    table.add_row({name, span.parent, util::fmt_fixed(span.wall_seconds * 1e3, 2),
                   util::fmt_fixed(span.process_cpu_seconds * 1e3, 2),
                   util::fmt_fixed(span.thread_cpu_seconds * 1e3, 2),
                   util::fmt_count(span.items)});
  }
  std::printf("\n[stages]\n%s", table.render().c_str());

  // --- headline counters -------------------------------------------------
  std::printf("\n[counters]\n");
  for (const auto& [name, value] : registry.counters()) {
    std::printf("  %-48s %s\n", name.c_str(), util::fmt_count(value).c_str());
  }

  // --- flight recorder ---------------------------------------------------
  std::size_t trace_events = 0;
  for (const auto& thread : trace.snapshot()) trace_events += thread.events.size();
  std::printf("\n[trace] %zu events across %zu threads (%llu dropped)\n", trace_events,
              trace.thread_count(),
              static_cast<unsigned long long>(trace.total_dropped()));

  std::printf("\n[confinement] EU28: %.1f%% | ISP day: %s matched records\n",
              confinement.in_eu28,
              util::fmt_count(isp_run.collection.matched_records).c_str());

  // --- machine-readable artifacts ----------------------------------------
  // Final telemetry sample lands in the gauges before the report export.
  sampler.stop();
  std::ofstream out(report_path);
  out << study.run_report() << '\n';
  if (!out) {
    std::fprintf(stderr, "failed to write '%s'\n", report_path.c_str());
    return 1;
  }
  std::printf("\nrun report written to %s\n", report_path.c_str());
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    trace_out << obs::to_chrome_trace(trace) << '\n';
    if (!trace_out) {
      std::fprintf(stderr, "failed to write '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (load in Perfetto / chrome://tracing)\n",
                trace_path.c_str());
  }

  if (study.inspector() != nullptr && linger_s > 0) {
    std::printf("serving for %us more (curl 127.0.0.1:%u/metrics|report|trace|healthz)\n",
                linger_s, static_cast<unsigned>(study.inspector()->port()));
    std::fflush(stdout);
    // No sleep_for (raw-thread lint): an un-notified wait_for is the
    // dependency-free way to linger while the server thread works.
    std::mutex linger_mutex;
    std::condition_variable linger_cv;
    std::unique_lock<std::mutex> lock(linger_mutex);
    linger_cv.wait_for(lock, std::chrono::seconds(linger_s));
  }
  return 0;
}
