// Run inspector: execute the pipeline with a metrics registry attached,
// print the per-stage span table and headline counters, and write the
// machine-readable run report (Study::run_report()) to disk. This is the
// observability tour — see README "Observability" for the conventions.
//
//   run_inspector [REPORT_PATH]   (default: run_report.json)
#include <cstdio>
#include <fstream>
#include <string>

#include "core/study.h"
#include "netflow/profile.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  const std::string report_path = argc > 1 ? argv[1] : "run_report.json";

  obs::Registry registry;
  core::StudyConfig config;
  config.world.seed = 20180901;
  config.world.scale = 0.02;      // small world: this is a tour, not a bench
  config.netflow.scale = 5e-5;
  config.threads = 2;             // exercise the parallel path (results are
                                  // bit-identical to threads=1)
  config.registry = &registry;
  // Chaos knob: CBWT_FAULT_RATE / CBWT_FAULT_SEED turn on deterministic
  // fault injection at every external-facing service (unset = zero-cost
  // fault-free run). See README "Fault injection".
  config.fault_plan = fault::FaultPlan::from_env();
  core::Study study(config);

  std::printf("cbwt run inspector (seed %llu, scale %.2f, threads %u)\n",
              static_cast<unsigned long long>(config.world.seed), config.world.scale,
              config.threads);
  if (config.fault_plan.enabled()) {
    std::printf("fault injection on: rate %.2f, seed %llu\n",
                config.fault_plan.default_rates.total(),
                static_cast<unsigned long long>(config.fault_plan.seed));
  }

  // Drive the pipeline end to end: dataset -> pDNS -> classify -> geoloc
  // -> border analysis -> one ISP NetFlow day.
  (void)study.pdns_store();
  (void)study.outcomes();
  (void)study.completed_tracker_ips();
  const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);
  const auto confinement = study.analyzer().confinement(eu_flows);
  const auto isp_run = study.run_isp_snapshot(netflow::default_isps().front(),
                                              netflow::default_snapshots().front());

  // --- per-stage span table ---------------------------------------------
  util::TextTable table({"stage", "parent", "wall ms", "cpu ms", "items"});
  for (const auto& span : registry.spans()) {
    std::string name(span.depth * 2, ' ');
    name += span.name;
    table.add_row({name, span.parent, util::fmt_fixed(span.wall_seconds * 1e3, 2),
                   util::fmt_fixed(span.cpu_seconds * 1e3, 2),
                   util::fmt_count(span.items)});
  }
  std::printf("\n[stages]\n%s", table.render().c_str());

  // --- headline counters -------------------------------------------------
  std::printf("\n[counters]\n");
  for (const auto& [name, value] : registry.counters()) {
    std::printf("  %-48s %s\n", name.c_str(), util::fmt_count(value).c_str());
  }

  std::printf("\n[confinement] EU28: %.1f%% | ISP day: %s matched records\n",
              confinement.in_eu28,
              util::fmt_count(isp_run.collection.matched_records).c_str());

  // --- machine-readable report -------------------------------------------
  std::ofstream out(report_path);
  out << study.run_report() << '\n';
  if (!out) {
    std::fprintf(stderr, "failed to write '%s'\n", report_path.c_str());
    return 1;
  }
  std::printf("\nrun report written to %s\n", report_path.c_str());
  return 0;
}
