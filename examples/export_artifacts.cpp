// Example: run the study and export its artifacts (Sankey JSON for the
// paper's diagrams, per-country confinement JSON, flow CSV, the Table-2
// classification summary) into an output directory — the integration
// surface for dashboards and notebooks.
#include <cstdio>
#include <string>

#include "core/study.h"
#include "report/export.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  core::StudyConfig config;
  config.world.scale = 0.05;
  core::Study study(config);
  auto analyzer = study.analyzer();
  const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);

  const auto save = [&](const std::string& name, const std::string& contents) {
    const std::string path = out_dir + "/" + name;
    report::write_file(path, contents);
    std::printf("wrote %-32s (%zu bytes)\n", path.c_str(), contents.size());
  };

  save("flows_eu28.csv", report::flows_to_csv(analyzer, eu_flows));
  save("sankey_regions.json",
       report::sankey_to_json(analyzer.region_matrix(study.flows())));
  save("sankey_countries_eu28.json",
       report::sankey_to_json(analyzer.country_matrix(eu_flows)));
  save("confinement_eu28.json",
       report::confinement_to_json(analyzer.per_origin_confinement(eu_flows)));
  save("classification.json",
       report::classification_to_json(
           classify::summarize(study.dataset(), study.outcomes())));

  std::printf("\nAll artifacts exported. Feed the sankey_*.json files to any\n"
              "d3-sankey-style renderer to redraw the paper's Figures 6-8.\n");
  return 0;
}
