// Example: NetFlow-only study on the store-backed path. Each ISP-day
// snapshot is spilled to a memory-mapped record file and streamed back
// in bounded chunks, so the sampled-flow volume is limited by disk, not
// RAM — this is the configuration for the paper's full-scale ISP runs.
//
// The full observability stack rides along: a metrics registry (so the
// report surfaces the cbwt_store_* I/O counters), the flight recorder,
// and the ProcStats sampler whose VmHWM gauge backs the peak-RSS
// self-check — a run 10x past the in-memory comfort zone must still
// fit under --max-rss-mb. --inspect-port serves /metrics, /report,
// /trace and /healthz live while the run is in flight.
//
//   store_scale_run --store-dir DIR [--netflow-scale S] [--world-scale S]
//                   [--isp NAME] [--day N] [--threads N]
//                   [--report PATH] [--trace PATH] [--max-rss-mb N]
//                   [--inspect-port N] [--linger-s N]
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>

#include "core/study.h"
#include "netflow/profile.h"
#include "obs/proc_stats.h"
#include "obs/trace_buffer.h"

namespace {

std::uint64_t directory_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

double parse_double(const char* flag, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "store_scale_run: bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbwt;

  std::string store_dir;
  std::string report_path;
  std::string trace_path;
  std::string isp_name = "DE-Broadband";
  double netflow_scale = 1e-2;
  double world_scale = 0.01;
  std::int32_t day = 267;
  // Thread count: --threads wins, else CBWT_THREADS (the same override
  // the bench harness honors), else 0 = one per hardware core.
  unsigned threads = 0;
  if (const char* env = std::getenv("CBWT_THREADS"); env != nullptr && *env != '\0') {
    threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  std::uint64_t max_rss_mb = 0;
  int inspect_port = -1;  // -1 = inspector off
  unsigned linger_s = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--store-dir" && value != nullptr) {
      store_dir = value;
      ++i;
    } else if (flag == "--report" && value != nullptr) {
      report_path = value;
      ++i;
    } else if (flag == "--trace" && value != nullptr) {
      trace_path = value;
      ++i;
    } else if (flag == "--isp" && value != nullptr) {
      isp_name = value;
      ++i;
    } else if (flag == "--netflow-scale" && value != nullptr) {
      netflow_scale = parse_double("--netflow-scale", value);
      ++i;
    } else if (flag == "--world-scale" && value != nullptr) {
      world_scale = parse_double("--world-scale", value);
      ++i;
    } else if (flag == "--day" && value != nullptr) {
      day = std::atoi(value);
      ++i;
    } else if (flag == "--threads" && value != nullptr) {
      threads = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (flag == "--max-rss-mb" && value != nullptr) {
      max_rss_mb = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (flag == "--inspect-port" && value != nullptr) {
      inspect_port = std::atoi(value);
      ++i;
    } else if (flag == "--linger-s" && value != nullptr) {
      linger_s = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: store_scale_run --store-dir DIR [--netflow-scale S] "
                   "[--world-scale S] [--isp NAME] [--day N] [--threads N] "
                   "[--report PATH] [--trace PATH] [--max-rss-mb N] "
                   "[--inspect-port N] [--linger-s N]\n");
      return 2;
    }
  }
  if (store_dir.empty()) {
    std::fprintf(stderr, "store_scale_run: --store-dir is required\n");
    return 2;
  }

  const netflow::IspProfile* isp = nullptr;
  for (const auto& profile : netflow::default_isps()) {
    if (profile.name == isp_name) isp = &profile;
  }
  if (isp == nullptr) {
    std::fprintf(stderr, "store_scale_run: unknown ISP '%s'\n", isp_name.c_str());
    return 2;
  }

  obs::Registry registry;
  obs::TraceBuffer trace;
  obs::ProcSampler sampler(&registry, std::chrono::milliseconds(100));

  core::StudyConfig config;
  config.world.scale = world_scale;
  config.netflow.scale = netflow_scale;
  config.threads = threads;
  config.storage.mode = store::Mode::StoreBacked;
  config.storage.directory = store_dir;
  config.registry = &registry;
  config.trace = &trace;
  if (inspect_port >= 0) {
    config.inspector.enabled = true;
    config.inspector.port = static_cast<std::uint16_t>(inspect_port);
  }
  core::Study study(config);
  if (study.inspector() != nullptr) {
    std::printf("inspector listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(study.inspector()->port()));
    std::fflush(stdout);
  }

  const netflow::Snapshot snapshot{day, "day", 1.0};
  const auto run = study.run_isp_snapshot(*isp, snapshot);

  std::printf("store-backed NetFlow run: %s day %d\n", isp_name.c_str(), day);
  std::printf("  exported records   %" PRIu64 "\n", run.exported_records);
  std::printf("  matched records    %" PRIu64 "\n",
              static_cast<std::uint64_t>(run.collection.matched_records));
  std::printf("  tracking flows     %zu\n", run.flows.size());
  std::printf("  store dir bytes    %" PRIu64 "\n", directory_bytes(store_dir));
  // The out-of-core join's spill volume and fan-out (also in the JSON
  // report as cbwt_netflow_join_* counters).
  std::printf("  join partitions    %" PRIu64 "\n",
              registry.counter_value("cbwt_netflow_join_partitions_total"));
  std::printf("  join spill bytes   %" PRIu64 "\n",
              registry.counter_value("cbwt_netflow_join_spill_bytes_total"));
  std::printf("  join spill shards  %" PRIu64 "\n",
              registry.counter_value("cbwt_netflow_join_spill_shards_total"));
  // Per-phase wall time from the stage spans: generation (snapshot
  // write), pass 1 (parallel spill; 0 on a resumed run) and pass 2
  // (probe). These are the three legs the --threads override speeds up.
  double generate_ms = 0.0;
  double spill_ms = 0.0;
  double probe_ms = 0.0;
  for (const auto& span : registry.spans()) {
    if (span.name == "netflow/generate") generate_ms += span.wall_seconds * 1e3;
    if (span.name == "netflow/join/partition") spill_ms += span.wall_seconds * 1e3;
    if (span.name == "netflow/join/probe") probe_ms += span.wall_seconds * 1e3;
  }
  std::printf("  generate wall      %.1f ms\n", generate_ms);
  std::printf("  join spill wall    %.1f ms\n", spill_ms);
  std::printf("  join probe wall    %.1f ms\n", probe_ms);
  std::fflush(stdout);

  if (linger_s > 0) {
    // Keep the inspector serving a finished-but-live process so a smoke
    // harness can curl every endpoint. An un-notified wait_for lingers
    // without sleep_for (raw-thread lint) or extra threads.
    std::printf("  lingering          %us\n", linger_s);
    std::fflush(stdout);
    std::mutex linger_mutex;
    std::condition_variable linger_cv;
    std::unique_lock<std::mutex> lock(linger_mutex);
    linger_cv.wait_for(lock, std::chrono::seconds(linger_s));
  }

  // Stop sampling before the final export so the last sample (and the
  // final VmHWM envelope) is in the gauges the report serializes.
  sampler.stop();

  if (!report_path.empty()) {
    const std::string report = study.run_report();
    std::FILE* out = std::fopen(report_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "store_scale_run: cannot write %s\n", report_path.c_str());
      return 1;
    }
    std::fwrite(report.data(), 1, report.size(), out);
    std::fclose(out);
    std::printf("  report             %s (%zu bytes)\n", report_path.c_str(),
                report.size());
  }
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    trace_out << obs::to_chrome_trace(trace) << '\n';
    if (!trace_out) {
      std::fprintf(stderr, "store_scale_run: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("  trace              %s\n", trace_path.c_str());
  }

  // Peak resident set in kB (VmHWM from /proc/self/status, via the
  // shared ProcStats parser). VmHWM counts actual resident pages — not
  // reserved-but-untouched mmap ranges — so it measures exactly what
  // the store path claims to bound. 0 when /proc is unavailable.
  const std::uint64_t rss_kb = obs::vm_hwm_kb();
  std::printf("  peak RSS           %" PRIu64 " kB\n", rss_kb);
  if (max_rss_mb > 0 && rss_kb > max_rss_mb * 1024) {
    std::fprintf(stderr,
                 "store_scale_run: peak RSS %" PRIu64 " kB exceeds cap %" PRIu64
                 " MB\n",
                 rss_kb, max_rss_mb);
    return 1;
  }
  return 0;
}
