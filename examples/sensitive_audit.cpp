// Example: a DPA-style audit of tracking on GDPR-sensitive websites.
// Detects sensitive publishers, traces their tracking flows, and reports
// per-category exposure plus the organizations collecting on them —
// the workload §6 of the paper motivates.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/study.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  core::StudyConfig config;
  config.world.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  core::Study study(config);

  std::printf("sensitive-category tracking audit (scale %.2f)\n\n", config.world.scale);

  const auto& catalog = study.sensitive_catalog();
  const auto breakdown = sensitive::sensitive_breakdown(study.world(), catalog,
                                                        study.dataset(), study.outcomes());
  std::printf("inspected %s first-party domains; %zu flagged sensitive "
              "(%zu auto-tagged, rest by examiner panel)\n",
              util::fmt_count(catalog.inspected_domains).c_str(),
              catalog.detected.size(),
              static_cast<std::size_t>(catalog.auto_stage_hits));
  std::printf("sensitive tracking flows: %s (%.2f%% of all tracking)\n\n",
              util::fmt_count(breakdown.sensitive_flows).c_str(),
              util::percent(static_cast<double>(breakdown.sensitive_flows),
                            static_cast<double>(breakdown.tracking_flows)));

  // Who collects on sensitive sites, and from where?
  std::map<world::OrgId, std::uint64_t> by_org;
  const auto& dataset = study.dataset();
  const auto& outcomes = study.outcomes();
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    if (!catalog.detected.contains(dataset.requests[i].publisher)) continue;
    ++by_org[study.world().domain(dataset.requests[i].domain).org];
  }
  std::vector<std::pair<world::OrgId, std::uint64_t>> ranked(by_org.begin(), by_org.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  util::TextTable table({"organization", "role", "legal home", "sensitive flows"});
  for (std::size_t i = 0; i < ranked.size() && i < 10; ++i) {
    const auto& org = study.world().org(ranked[i].first);
    table.add_row({org.name, std::string(world::to_string(org.role)), org.hq_country,
                   util::fmt_count(ranked[i].second)});
  }
  std::printf("top collectors on sensitive categories:\n%s\n", table.render().c_str());

  // Cross-border exposure of the sensitive flows of EU citizens.
  const auto flows = sensitive::sensitive_flows(study.world(), catalog, dataset, outcomes);
  const auto eu = analysis::flows_from_region(flows, geo::Region::EU28);
  const auto regions = study.analyzer().destination_regions(eu);
  std::printf("EU28 citizens' sensitive flows terminate in:\n");
  for (const auto& [region, share] : regions.share) {
    std::printf("  %-16s %6.2f%%\n", std::string(geo::to_string(region)).c_str(),
                100.0 * share);
  }
  const auto confinement = study.analyzer().confinement(eu);
  std::printf("\n=> %.1f%% stay inside GDPR jurisdiction; %.1f%% stay inside the "
              "user's own country\n",
              confinement.in_eu28, confinement.in_country);
  return 0;
}
