// Example: continuous ISP-side GDPR-confinement monitoring — the system
// the paper's conclusion proposes to build. Joins each day's NetFlow
// against the extension-derived tracker-IP list and reports confinement
// over time, flagging regressions.
#include <cstdio>

#include "core/study.h"
#include "netflow/profile.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  core::StudyConfig config;
  config.world.scale = 0.05;
  config.netflow.scale = 2e-4;
  core::Study study(config);

  const std::string isp_name = argc > 1 ? argv[1] : "DE-Broadband";
  const netflow::IspProfile* isp = nullptr;
  for (const auto& profile : netflow::default_isps()) {
    if (profile.name == isp_name) isp = &profile;
  }
  if (isp == nullptr) {
    std::fprintf(stderr, "unknown ISP '%s' (try DE-Broadband, DE-Mobile, PL, HU)\n",
                 isp_name.c_str());
    return 1;
  }

  std::printf("GDPR-confinement monitor for %s (%s users, %s access)\n\n",
              std::string(isp->name).c_str(),
              util::fmt_fixed(isp->subscribers_m, 0).c_str(),
              std::string(netflow::to_string(isp->access)).c_str());

  auto analyzer = study.analyzer();
  util::TextTable table({"day", "label", "sampled flows", "EU28", "in-country", "alert"});
  double previous_eu28 = -1.0;
  // Monitor weekly between the paper's first and last snapshot.
  for (std::int32_t day = 68; day <= 292; day += 28) {
    netflow::Snapshot snapshot{day, "day", 1.0};
    const auto run = study.run_isp_snapshot(*isp, snapshot);
    const auto regions = analyzer.destination_regions(run.flows);
    const auto eu_it = regions.share.find(geo::Region::EU28);
    const double eu28 = eu_it == regions.share.end() ? 0.0 : 100.0 * eu_it->second;
    const auto confinement = analyzer.confinement(run.flows);
    const bool regression = previous_eu28 >= 0.0 && eu28 < previous_eu28 - 5.0;
    table.add_row({std::to_string(day), day < 267 ? "pre-GDPR" : "post-GDPR",
                   util::fmt_count(run.collection.matched_records),
                   util::fmt_pct(eu28, 1), util::fmt_pct(confinement.in_country, 1),
                   regression ? "CONFINEMENT DROP" : ""});
    previous_eu28 = eu28;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(GDPR implementation date falls on day 266; the paper found "
              "confinement high and stable across it)\n");
  return 0;
}
