// Example: a "GDPR-friendly DNS" planning tool for a tracking operator.
// Given the measured flow set, it reports — per organization — how much
// of its EU traffic already stays in-country, what simple DNS
// redirection to its own existing servers would achieve, and what a
// cloud footprint would add (the §5 what-if, turned into a planner).
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/study.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace cbwt;
  core::StudyConfig config;
  config.world.scale = 0.05;
  core::Study study(config);
  const auto& world = study.world();

  std::printf("localization planner: per-organization EU28 flow locality\n\n");

  // Per-org EU28 flow tallies: how many terminate in the user's country,
  // and for how many an in-country alternative exists inside the org.
  struct OrgPlan {
    std::uint64_t eu_flows = 0;
    std::uint64_t in_country = 0;
    std::uint64_t redirectable = 0;  // org has a server in the user's country
    std::uint64_t cloud_fixable = 0; // org's cloud has a PoP there
  };
  std::map<world::OrgId, OrgPlan> plans;

  const auto& dataset = study.dataset();
  const auto& outcomes = study.outcomes();
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    const auto& request = dataset.requests[i];
    const auto& user = world.users()[request.user];
    const auto* origin = geo::find_country(user.country);
    if (origin == nullptr || !origin->eu28) continue;
    const auto& domain = world.domain(request.domain);
    auto& plan = plans[domain.org];
    ++plan.eu_flows;
    const auto destination = world.true_country_of(request.server_ip);
    if (destination == user.country) {
      ++plan.in_country;
      continue;
    }
    // Would redirecting to an existing org server fix it?
    const auto& org = world.org(domain.org);
    bool has_local = false;
    for (const auto sid : org.servers) {
      if (world.datacenter(world.server(sid).datacenter).country == user.country) {
        has_local = true;
        break;
      }
    }
    if (has_local) ++plan.redirectable;
    if (org.cloud != world::kNoCloud) {
      for (const auto pop : world.clouds()[org.cloud].pops) {
        if (world.datacenter(pop).country == user.country) {
          ++plan.cloud_fixable;
          break;
        }
      }
    }
  }

  std::vector<std::pair<world::OrgId, OrgPlan>> ranked(plans.begin(), plans.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second.eu_flows > b.second.eu_flows; });

  util::TextTable table({"organization", "EU28 flows", "already local", "fix via own DNS",
                         "fix via cloud PoPs", "residual"});
  for (std::size_t i = 0; i < ranked.size() && i < 15; ++i) {
    const auto& org = world.org(ranked[i].first);
    const auto& plan = ranked[i].second;
    const auto pct = [&](std::uint64_t part) {
      return util::fmt_pct(util::percent(static_cast<double>(part),
                                         static_cast<double>(plan.eu_flows)),
                           1);
    };
    const std::uint64_t residual =
        plan.eu_flows - plan.in_country - plan.redirectable - plan.cloud_fixable;
    table.add_row({org.name, util::fmt_count(plan.eu_flows), pct(plan.in_country),
                   pct(plan.redirectable), pct(plan.cloud_fixable),
                   pct(residual > plan.eu_flows ? 0 : residual)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("'fix via own DNS' flows only need a TTL-scale geo-DNS change — the\n"
              "paper's point that confinement is cheap for most of the market.\n");
  return 0;
}
