// Quickstart: run the whole cross-border tracking study end to end on a
// small world and print the headline numbers. This is the 60-second tour
// of the public API; the bench/ binaries reproduce the paper's tables
// and figures one by one.
#include <cstdio>
#include <string>

#include "core/study.h"
#include "util/strings.h"

int main() {
  using namespace cbwt;

  core::StudyConfig config;
  config.world.seed = 20180901;
  config.world.scale = 0.05;  // ~5% of the paper's request volume

  core::Study study(config);

  std::printf("cbwt quickstart (seed %llu, scale %.2f)\n",
              static_cast<unsigned long long>(config.world.seed), config.world.scale);

  // --- dataset ---------------------------------------------------------
  const auto& dataset = study.dataset();
  std::printf("\n[extension] %s users, %s visits, %s third-party requests\n",
              util::fmt_count(study.world().users().size()).c_str(),
              util::fmt_count(dataset.first_party_visits).c_str(),
              util::fmt_count(dataset.requests.size()).c_str());

  // --- classification ---------------------------------------------------
  const auto summary = classify::summarize(dataset, study.outcomes());
  std::printf("[classify] ABP lists: %s requests | semi-automatic: +%s | NTF: %s\n",
              util::fmt_count(summary.abp.total_requests).c_str(),
              util::fmt_count(summary.semi.total_requests).c_str(),
              util::fmt_count(summary.untracked_requests).c_str());

  // --- tracker IPs & pDNS completion -------------------------------------
  const auto observed = study.observed_tracker_ips().size();
  const auto completed = study.completed_tracker_ips().size();
  std::printf("[pdns] tracker IPs observed: %zu, after completion: %zu (+%.2f%%)\n",
              observed, completed,
              observed == 0 ? 0.0 : 100.0 * static_cast<double>(completed - observed) /
                                        static_cast<double>(observed));

  // --- where do EU28 tracking flows terminate? ---------------------------
  const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);
  for (const auto tool : {geoloc::Tool::MaxMindLike, geoloc::Tool::ActiveIpmap}) {
    const auto breakdown = study.analyzer(tool).destination_regions(eu_flows);
    std::printf("[geo:%s] EU28-origin flows by destination region:\n",
                std::string(geoloc::to_string(tool)).c_str());
    for (const auto& [region, share] : breakdown.share) {
      std::printf("    %-15s %6.2f%%\n", std::string(geo::to_string(region)).c_str(),
                  100.0 * share);
    }
  }

  // --- confinement headline ----------------------------------------------
  const auto confinement = study.analyzer().confinement(eu_flows);
  std::printf("\n[confinement] EU28 users: %.1f%% in-country, %.1f%% in EU28, "
              "%.1f%% in-continent (%s flows)\n",
              confinement.in_country, confinement.in_eu28, confinement.in_continent,
              util::fmt_count(confinement.total).c_str());
  return 0;
}
