#include "util/contract.h"

#include <gtest/gtest.h>

namespace cbwt::util {
namespace {

/// Restores the process-wide policy on scope exit so test order cannot
/// leak a Throw policy into unrelated tests.
class PolicyGuard {
 public:
  PolicyGuard() : saved_(contract_policy()) {}
  ~PolicyGuard() { set_contract_policy(saved_); }
  PolicyGuard(const PolicyGuard&) = delete;
  PolicyGuard& operator=(const PolicyGuard&) = delete;

 private:
  ContractPolicy saved_;
};

int checked_increment(int value) {
  CBWT_EXPECTS(value >= 0);
  const int out = value + 1;
  CBWT_ENSURES(out > value);
  return out;
}

TEST(Contract, PassingChecksAreSilent) {
  EXPECT_EQ(checked_increment(41), 42);
  CBWT_ASSERT(1 + 1 == 2);
}

TEST(Contract, ThrowPolicyRaisesContractViolation) {
  const PolicyGuard guard;
  set_contract_policy(ContractPolicy::Throw);
  EXPECT_THROW(checked_increment(-1), ContractViolation);
}

TEST(Contract, ViolationCarriesKindAndLocation) {
  const PolicyGuard guard;
  set_contract_policy(ContractPolicy::Throw);
  try {
    checked_increment(-1);
    FAIL() << "precondition did not fire";
  } catch (const ContractViolation& violation) {
    EXPECT_EQ(violation.kind(), ContractKind::Precondition);
    const std::string what = violation.what();
    EXPECT_NE(what.find("value >= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("checked_increment"), std::string::npos) << what;
  }
}

TEST(Contract, EnsuresAndAssertReportTheirKind) {
  const PolicyGuard guard;
  set_contract_policy(ContractPolicy::Throw);
  try {
    CBWT_ENSURES(false);
    FAIL();
  } catch (const ContractViolation& violation) {
    EXPECT_EQ(violation.kind(), ContractKind::Postcondition);
  }
  try {
    CBWT_ASSERT(false);
    FAIL();
  } catch (const ContractViolation& violation) {
    EXPECT_EQ(violation.kind(), ContractKind::Assertion);
  }
}

TEST(Contract, PolicyIsReadable) {
  const PolicyGuard guard;
  EXPECT_EQ(contract_policy(), ContractPolicy::Abort);
  set_contract_policy(ContractPolicy::Throw);
  EXPECT_EQ(contract_policy(), ContractPolicy::Throw);
}

TEST(Contract, KindNames) {
  EXPECT_EQ(to_string(ContractKind::Precondition), "precondition");
  EXPECT_EQ(to_string(ContractKind::Postcondition), "postcondition");
  EXPECT_EQ(to_string(ContractKind::Assertion), "assertion");
}

TEST(ContractDeathTest, AbortPolicyAborts) {
  // Default policy: a violated check must terminate loudly, printing
  // the expression and location to stderr.
  EXPECT_DEATH(checked_increment(-1), "precondition failed: value >= 0");
}

}  // namespace
}  // namespace cbwt::util
