#include "obs/trace_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/metrics.h"

namespace cbwt::obs {
namespace {

const TraceBuffer::ThreadTrace* find_thread(
    const std::vector<TraceBuffer::ThreadTrace>& threads, const std::string& label) {
  for (const auto& thread : threads) {
    if (thread.label == label) return &thread;
  }
  return nullptr;
}

// --- basic recording --------------------------------------------------

TEST(TraceBuffer, RecordsEventsInOrderWithPhasesAndArgs) {
  TraceBuffer trace(16);
  trace.emit(TracePhase::kBegin, "stage/a", 1);
  trace.emit(TracePhase::kInstant, "tick", 2);
  trace.emit(TracePhase::kEnd, "stage/a", 3);

  const auto threads = trace.snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const auto& main = threads.front();
  EXPECT_EQ(main.label, "main");
  EXPECT_EQ(main.dropped, 0u);
  ASSERT_EQ(main.events.size(), 3u);
  EXPECT_EQ(main.events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(main.events[0].name, "stage/a");
  EXPECT_EQ(main.events[0].arg, 1u);
  EXPECT_EQ(main.events[1].phase, TracePhase::kInstant);
  EXPECT_EQ(main.events[1].name, "tick");
  EXPECT_EQ(main.events[2].phase, TracePhase::kEnd);
  EXPECT_EQ(main.events[2].arg, 3u);
  // Timestamps are monotone per thread.
  EXPECT_LE(main.events[0].ts_ns, main.events[1].ts_ns);
  EXPECT_LE(main.events[1].ts_ns, main.events[2].ts_ns);
}

TEST(TraceBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceBuffer(5).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(8).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(1).capacity(), 2u);  // floor of 2
}

TEST(TraceBuffer, LongNamesAreTruncatedNotRejected) {
  TraceBuffer trace(4);
  const std::string longname(200, 'x');
  trace.emit(TracePhase::kInstant, longname);
  const auto threads = trace.snapshot();
  ASSERT_EQ(threads.front().events.size(), 1u);
  const std::string& recorded = threads.front().events.front().name;
  EXPECT_EQ(recorded.size(), kTraceNameBytes - 1);
  EXPECT_EQ(recorded, longname.substr(0, kTraceNameBytes - 1));
}

// --- wraparound / overflow --------------------------------------------

TEST(TraceBuffer, WraparoundKeepsNewestAndCountsDropped) {
  TraceBuffer trace(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace.emit(TracePhase::kInstant, "event", i);
  }
  const auto threads = trace.snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const auto& main = threads.front();
  ASSERT_EQ(main.events.size(), 8u);
  EXPECT_EQ(main.dropped, 12u);
  EXPECT_EQ(trace.total_dropped(), 12u);
  // The survivors are exactly the newest eight, oldest first.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(main.events[i].arg, 12 + i);
  }
}

// --- multi-thread rings -----------------------------------------------

TEST(TraceBuffer, EachThreadGetsItsOwnRing) {
  TraceBuffer trace(64);
  trace.emit(TracePhase::kInstant, "from-main");
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&trace, t] {
      for (int i = 0; i < 10; ++i) {
        trace.emit(TracePhase::kInstant, "from-worker", static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  const auto threads = trace.snapshot();
  EXPECT_EQ(threads.size(), 4u);
  EXPECT_EQ(trace.thread_count(), 4u);
  const auto* main = find_thread(threads, "main");
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(main->events.size(), 1u);
  std::size_t worker_events = 0;
  for (const auto& thread : threads) {
    if (thread.label != "main") worker_events += thread.events.size();
  }
  EXPECT_EQ(worker_events, 30u);
}

TEST(TraceBuffer, SnapshotWhileEmittingIsSafeAndUntorn) {
  TraceBuffer trace(32);
  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      trace.emit(TracePhase::kInstant, "spin", i++);
    }
  });
  for (int round = 0; round < 50; ++round) {
    for (const auto& thread : trace.snapshot()) {
      for (const auto& event : thread.events) {
        EXPECT_TRUE(event.name == "spin" || event.name == "main-probe") << event.name;
      }
    }
    trace.emit(TracePhase::kInstant, "main-probe");
  }
  stop.store(true, std::memory_order_relaxed);
  emitter.join();
}

// --- ScopedTrace ------------------------------------------------------

TEST(ScopedTrace, EmitsBeginEndPairAgainstArmedRegistry) {
  Registry registry;
  TraceBuffer trace(16);
  registry.set_trace_buffer(&trace);
  {
    ScopedTrace scoped(&registry, "scoped/stage", 7);
  }
  const auto threads = trace.snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads.front().events.size(), 2u);
  EXPECT_EQ(threads.front().events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(threads.front().events[0].name, "scoped/stage");
  EXPECT_EQ(threads.front().events[0].arg, 7u);
  EXPECT_EQ(threads.front().events[1].phase, TracePhase::kEnd);
}

TEST(ScopedTrace, NullRegistryAndUnarmedRegistryAreNoOps) {
  { ScopedTrace scoped(nullptr, "nothing"); }
  Registry unarmed;
  { ScopedTrace scoped(&unarmed, "nothing"); }
}

// --- Chrome trace export ----------------------------------------------

TEST(ChromeTrace, ExportIsValidJsonWithMetadataAndEvents) {
  TraceBuffer trace(16);
  trace.emit(TracePhase::kBegin, "stage/export", 5);
  trace.emit(TracePhase::kInstant, "marker");
  trace.emit(TracePhase::kEnd, "stage/export");
  std::thread worker([&trace] { trace.emit(TracePhase::kInstant, "worker-side"); });
  worker.join();

  const std::string text = to_chrome_trace(trace);
  EXPECT_TRUE(testing::JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per ring.
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"main\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  // Instants carry the mandatory scope field.
  EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(text.find("\"stage/export\""), std::string::npos);
  EXPECT_NE(text.find("\"worker-side\""), std::string::npos);
}

TEST(ChromeTrace, EmptyBufferStillValidDocument) {
  TraceBuffer trace(4);
  const std::string text = to_chrome_trace(trace);
  EXPECT_TRUE(testing::JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"droppedEvents\":0"), std::string::npos);
}

}  // namespace
}  // namespace cbwt::obs
