#include "sensitive/detection.h"

#include <gtest/gtest.h>

#include "core/study.h"

namespace cbwt::sensitive {
namespace {

class SensitiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::StudyConfig config;
    config.world.seed = 654;
    config.world.scale = 0.02;
    study_ = new core::Study(config);
  }
  static void TearDownTestSuite() { delete study_; }
  static core::Study* study_;
};

core::Study* SensitiveTest::study_ = nullptr;

TEST_F(SensitiveTest, AutoTagsHideSensitiveTopicsUnderUmbrellas) {
  util::Rng rng(1);
  for (const auto& publisher : study_->world().publishers()) {
    const auto tags = auto_tags(publisher, rng);
    EXPECT_GE(tags.size(), 5U);
    EXPECT_LE(tags.size(), 15U);
    // The precise sensitive names never appear; their umbrellas do.
    for (const auto& tag : tags) {
      EXPECT_NE(tag, "pregnancy");
      EXPECT_NE(tag, "porn");
      EXPECT_NE(tag, "sexual orientation");
    }
    if (publisher.id > 200) break;
  }
}

TEST_F(SensitiveTest, DetectionFindsMostSensitivePublishers) {
  const auto& catalog = study_->sensitive_catalog();
  const auto& world = study_->world();
  EXPECT_EQ(catalog.inspected_domains, world.publishers().size());

  std::size_t truly = 0;
  std::size_t caught = 0;
  std::size_t false_hits = 0;
  for (const auto& publisher : world.publishers()) {
    bool is_sensitive = false;
    for (const auto topic : publisher.topics) {
      if (world::topic_by_id(topic).sensitive) is_sensitive = true;
    }
    const bool detected = catalog.detected.contains(publisher.id);
    if (is_sensitive) {
      ++truly;
      caught += detected ? 1 : 0;
    } else if (detected) {
      ++false_hits;
    }
  }
  ASSERT_GT(truly, 100U);
  EXPECT_GT(static_cast<double>(caught) / truly, 0.85);
  EXPECT_LT(static_cast<double>(false_hits) / world.publishers().size(), 0.02);
  // Stage A alone catches only the Health umbrella subset.
  EXPECT_GT(catalog.auto_stage_hits, 0U);
  EXPECT_LT(catalog.auto_stage_hits, caught);
}

TEST_F(SensitiveTest, DetectedCategoryMatchesTruthForTruePositives) {
  const auto& catalog = study_->sensitive_catalog();
  const auto& world = study_->world();
  for (const auto& [publisher_id, topic] : catalog.detected) {
    const auto& publisher = world.publisher(publisher_id);
    bool is_sensitive = false;
    for (const auto t : publisher.topics) {
      if (world::topic_by_id(t).sensitive) is_sensitive = true;
    }
    if (!is_sensitive) continue;  // false positives get an arbitrary label
    const bool topic_in_publisher =
        std::find(publisher.topics.begin(), publisher.topics.end(), topic) !=
        publisher.topics.end();
    EXPECT_TRUE(topic_in_publisher) << publisher.domain;
  }
}

TEST_F(SensitiveTest, BreakdownMatchesPaperShape) {
  const auto breakdown = sensitive_breakdown(study_->world(), study_->sensitive_catalog(),
                                             study_->dataset(), study_->outcomes());
  ASSERT_FALSE(breakdown.categories.empty());
  // ~3% of tracking flows touch sensitive sites (paper: 2.89%).
  const double share = static_cast<double>(breakdown.sensitive_flows) /
                       static_cast<double>(breakdown.tracking_flows);
  EXPECT_GT(share, 0.01);
  EXPECT_LT(share, 0.08);
  // Health is the most tracked category in the paper (38%, gambling 22%);
  // at small scale the two can swap, but health must stay in the top two
  // with a substantial share.
  ASSERT_GE(breakdown.categories.size(), 2U);
  const bool health_top2 = breakdown.categories[0].category == "health" ||
                           breakdown.categories[1].category == "health";
  EXPECT_TRUE(health_top2);
  double health_share = 0.0;
  for (const auto& category : breakdown.categories) {
    if (category.category == "health") {
      health_share = static_cast<double>(category.flows) /
                     static_cast<double>(breakdown.sensitive_flows);
    }
  }
  EXPECT_GT(health_share, 0.15);
  // Categories are sorted by flow count.
  for (std::size_t i = 1; i < breakdown.categories.size(); ++i) {
    EXPECT_GE(breakdown.categories[i - 1].flows, breakdown.categories[i].flows);
  }
}

TEST_F(SensitiveTest, SensitiveFlowsFilterByCategory) {
  const auto all = sensitive_flows(study_->world(), study_->sensitive_catalog(),
                                   study_->dataset(), study_->outcomes());
  const auto health = sensitive_flows(study_->world(), study_->sensitive_catalog(),
                                      study_->dataset(), study_->outcomes(), "health");
  const auto gambling = sensitive_flows(study_->world(), study_->sensitive_catalog(),
                                        study_->dataset(), study_->outcomes(), "gambling");
  EXPECT_GT(all.size(), health.size());
  EXPECT_GT(health.size(), 0U);
  EXPECT_LE(health.size() + gambling.size(), all.size());
}

TEST_F(SensitiveTest, SensitiveConfinementTracksGeneralConfinement) {
  // The paper's closing finding: sensitive flows cross borders at a rate
  // similar to general traffic.
  const auto sensitive =
      sensitive_flows(study_->world(), study_->sensitive_catalog(), study_->dataset(),
                      study_->outcomes());
  const auto eu_sensitive = analysis::flows_from_region(sensitive, geo::Region::EU28);
  const auto eu_all = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  auto analyzer = study_->analyzer(geoloc::Tool::GroundTruth);
  const auto conf_sensitive = analyzer.confinement(eu_sensitive);
  const auto conf_all = analyzer.confinement(eu_all);
  ASSERT_GT(conf_sensitive.total, 500U);
  EXPECT_NEAR(conf_sensitive.in_eu28, conf_all.in_eu28, 8.0);
}

TEST(SensitiveUnit, ExaminerAgreementThreshold) {
  // With zero sensitivity nothing is caught beyond stage A; with perfect
  // examiners everything sensitive is caught.
  world::WorldConfig world_config;
  world_config.seed = 12;
  world_config.scale = 0.01;
  world_config.publishers = 400;
  const auto world = world::build_world(world_config);

  DetectionConfig blind;
  blind.examiner_sensitivity = 0.0;
  blind.examiner_false_positive = 0.0;
  util::Rng rng_a(1);
  const auto catalog_blind = detect_sensitive_publishers(world, blind, rng_a);
  EXPECT_EQ(catalog_blind.detected.size(), catalog_blind.auto_stage_hits);

  DetectionConfig perfect;
  perfect.examiner_sensitivity = 1.0;
  perfect.examiner_false_positive = 0.0;
  util::Rng rng_b(2);
  const auto catalog_perfect = detect_sensitive_publishers(world, perfect, rng_b);
  std::size_t truly = 0;
  for (const auto& publisher : world.publishers()) {
    for (const auto topic : publisher.topics) {
      if (world::topic_by_id(topic).sensitive) {
        ++truly;
        break;
      }
    }
  }
  EXPECT_EQ(catalog_perfect.detected.size(), truly);
}

}  // namespace
}  // namespace cbwt::sensitive
