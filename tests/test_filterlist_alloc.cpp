// Verifies the tentpole's allocation-free guarantee: Engine::match must
// perform zero heap allocations (cache-off path). Global operator
// new/delete are replaced with counting versions; the counter delta
// across a batch of match() calls over a realistic generated-list
// engine must be exactly zero.
//
// Sanitizer builds interpose the allocator themselves, so the counting
// replacement is compiled out there and the test passes trivially (the
// equivalence/property suites still run under sanitizers).
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "filterlist/engine.h"
#include "filterlist/generate.h"
#include "util/prng.h"
#include "world/world.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CBWT_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CBWT_ALLOC_COUNTING 0
#else
#define CBWT_ALLOC_COUNTING 1
#endif
#else
#define CBWT_ALLOC_COUNTING 1
#endif

#if CBWT_ALLOC_COUNTING

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // CBWT_ALLOC_COUNTING

namespace cbwt::filterlist {
namespace {

TEST(EngineAlloc, MatchIsAllocationFree) {
#if !CBWT_ALLOC_COUNTING
  GTEST_SKIP() << "allocator interposed by a sanitizer; counting disabled";
#else
  world::WorldConfig config;
  config.seed = 99;
  config.scale = 0.01;
  config.publishers = 100;
  const auto world = world::build_world(config);
  util::Rng rng(5);
  const auto lists = generate_lists(world, rng);

  Engine engine;
  engine.add_list(FilterList("easylist", lists.easylist));
  engine.add_list(FilterList("easyprivacy", lists.easyprivacy));

  // A request mix covering every match path: anchored hits, token hits,
  // exception probes, long URLs (token-buffer overflow resume), misses.
  std::vector<std::string> urls;
  std::vector<std::string> hosts;
  for (const auto& domain : world.domains()) {
    const bool ad_path = urls.size() % 2 == 0;
    urls.push_back("https://" + domain.fqdn +
                   (ad_path ? "/ads/display/1?pub=x.com&ad_slot=2"
                            : "/assets/app.js"));
    hosts.push_back(domain.fqdn);
    if (urls.size() >= 64) break;
  }
  urls.push_back("https://clean.example.org/collect?uid=1&cookiesync=2");
  hosts.push_back("clean.example.org");
  urls.push_back("https://clean.example.org/styles/main.css");
  hosts.push_back("clean.example.org");
  {
    std::string long_url = "https://long.example.org/p";
    for (int i = 0; i < 200; ++i) long_url += "/segment" + std::to_string(i);
    urls.push_back(long_url + "/adserve/x");
    hosts.push_back("long.example.org");
  }

  std::vector<RequestContext> requests;
  requests.reserve(urls.size());
  for (std::size_t i = 0; i < urls.size(); ++i) {
    RequestContext context;
    context.url = urls[i];
    context.host = hosts[i];
    context.page_host = "news.publisher-site.com";
    context.third_party = true;
    requests.push_back(context);
  }

  // Warm-up pass (first calls must already be clean, but keep the timed
  // region focused on steady state anyway), then the counted passes.
  std::size_t matched = 0;
  for (const auto& request : requests) {
    if (engine.match(request).matched) ++matched;
  }
  EXPECT_GT(matched, 0U) << "corpus must exercise the hit path";
  EXPECT_LT(matched, requests.size()) << "corpus must exercise the miss path";

  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& request : requests) {
      (void)engine.match(request);
    }
  }
  const std::uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0U)
      << "Engine::match allocated " << (after - before) << " times over "
      << 3 * requests.size() << " calls";
#endif
}

}  // namespace
}  // namespace cbwt::filterlist
