#include "obs/http_inspector.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cbwt::obs {
namespace {

// --- request-line parser ----------------------------------------------

TEST(ParseHttpRequest, AcceptsWellFormedGet) {
  const auto request = parse_http_request("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/metrics");
}

TEST(ParseHttpRequest, StripsQueryString) {
  const auto request = parse_http_request("GET /trace?pretty=1 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->target, "/trace");
}

TEST(ParseHttpRequest, PreservesNonGetMethods) {
  const auto request = parse_http_request("POST /metrics HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "POST");
}

TEST(ParseHttpRequest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("GET\r\n").has_value());
  EXPECT_FALSE(parse_http_request("GET /metrics\r\n").has_value());          // no version
  EXPECT_FALSE(parse_http_request("GET /metrics SMTP/1.0\r\n").has_value()); // not HTTP
  EXPECT_FALSE(parse_http_request("GET  HTTP/1.1\r\n").has_value());         // empty target
  EXPECT_FALSE(parse_http_request("GET metrics HTTP/1.1\r\n").has_value());  // no slash
  EXPECT_FALSE(parse_http_request("\r\n\r\n").has_value());
}

// --- live server ------------------------------------------------------

/// Minimal blocking test client: one request, full response.
std::string fetch(std::uint16_t port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, raw_request.data(), raw_request.size(), 0);
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;  // Connection: close — EOF ends the response
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& target) {
  return fetch(port, "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

InspectorHandlers canned_handlers() {
  InspectorHandlers handlers;
  handlers.metrics = [] { return std::string("cbwt_obs_test_total 1\n"); };
  handlers.report = [] { return std::string("{\"name\":\"report\"}"); };
  handlers.trace = [] { return std::string("{\"traceEvents\":[]}"); };
  return handlers;
}

TEST(HttpInspector, ServesAllFourEndpoints) {
  InspectorConfig config;
  config.enabled = true;
  config.port = 0;  // ephemeral
  HttpInspector inspector(config, canned_handlers());
  ASSERT_GT(inspector.port(), 0);

  const std::string metrics = get(inspector.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("cbwt_obs_test_total 1"), std::string::npos);

  const std::string report = get(inspector.port(), "/report");
  EXPECT_NE(report.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(report.find("application/json"), std::string::npos);
  EXPECT_NE(report.find("{\"name\":\"report\"}"), std::string::npos);

  const std::string trace = get(inspector.port(), "/trace");
  EXPECT_NE(trace.find("{\"traceEvents\":[]}"), std::string::npos);

  const std::string healthz = get(inspector.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  EXPECT_GE(inspector.requests_served(), 4u);
  inspector.stop();
  inspector.stop();  // idempotent
}

TEST(HttpInspector, QueryStringsResolveToTheSameEndpoint) {
  HttpInspector inspector(InspectorConfig{.enabled = true}, canned_handlers());
  const std::string response = get(inspector.port(), "/healthz?verbose=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(HttpInspector, ErrorsAreStatusCodesNotDisconnects) {
  HttpInspector inspector(InspectorConfig{.enabled = true}, canned_handlers());
  EXPECT_NE(get(inspector.port(), "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(fetch(inspector.port(), "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(fetch(inspector.port(), "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(HttpInspector, NullHandlerAnswers404AndThrowingHandler500) {
  InspectorHandlers handlers;  // all three payload handlers null
  handlers.report = []() -> std::string { throw std::runtime_error("report exploded"); };
  HttpInspector inspector(InspectorConfig{.enabled = true}, std::move(handlers));
  EXPECT_NE(get(inspector.port(), "/metrics").find("HTTP/1.1 404"), std::string::npos);
  const std::string report = get(inspector.port(), "/report");
  EXPECT_NE(report.find("HTTP/1.1 500"), std::string::npos);
  EXPECT_NE(report.find("report exploded"), std::string::npos);
}

TEST(HttpInspector, ConcurrentGetsAllSucceed) {
  HttpInspector inspector(InspectorConfig{.enabled = true}, canned_handlers());
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok, port = inspector.port()] {
      const std::string response = get(port, "/metrics");
      if (response.find("HTTP/1.1 200 OK") != std::string::npos) {
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GE(inspector.requests_served(), static_cast<std::uint64_t>(kClients));
}

TEST(HttpInspector, BadBindAddressThrows) {
  InspectorConfig config;
  config.enabled = true;
  config.bind_address = "not-an-ip";
  EXPECT_THROW(HttpInspector(config, canned_handlers()), std::runtime_error);
}

}  // namespace
}  // namespace cbwt::obs
