#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/table.h"

namespace cbwt::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1U);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1U);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("AdSeRvE.CoM"), "adserve.com");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Contains, CaseSensitivity) {
  EXPECT_TRUE(contains("tracker.com/rtb", "rtb"));
  EXPECT_FALSE(contains("tracker.com/RTB", "rtb"));
  EXPECT_TRUE(icontains("tracker.com/RTB", "rtb"));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(FmtFixed, Decimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(1.0, 0), "1");
  EXPECT_EQ(fmt_pct(84.93, 2), "84.93%");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(7172752), "7,172,752");
  EXPECT_EQ(fmt_count(1057000000ULL), "1,057,000,000");
}

TEST(TextTable, RendersAlignedRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const auto text = table.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Rows are padded to equal column starts: "value" and "1" align.
  EXPECT_EQ(table.rows(), 2U);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW({ const auto text = table.render(); (void)text; });
}

TEST(RenderBars, ScalesToMax) {
  const std::string out = render_bars({{"x", 10.0, ""}, {"y", 5.0, "note"}}, 10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("note"), std::string::npos);
}

TEST(RenderBars, AllZeroValues) {
  const std::string out = render_bars({{"x", 0.0, ""}}, 10);
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(RenderCdf, FormatsSeries) {
  const std::string out = render_cdf("test", {{1.0, 0.5}, {2.0, 1.0}});
  EXPECT_NE(out.find("test"), std::string::npos);
  EXPECT_NE(out.find("0.5000"), std::string::npos);
}

}  // namespace
}  // namespace cbwt::util
