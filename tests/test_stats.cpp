#include "util/stats.h"

#include "util/prng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cbwt::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0U);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1U);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(EmpiricalCdf, AtAndQuantile) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  EmpiricalCdf cdf({});
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.curve(5).empty());
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf({5.0, 1.0, 9.0, 3.0, 7.0, 2.0});
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 10U);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second + 1e-12);
  }
}

TEST(Histogram, BinningAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(-1.0);   // clamps into bin 0
  hist.add(0.5);
  hist.add(3.0);
  hist.add(9.9);
  hist.add(42.0);   // clamps into last bin
  EXPECT_EQ(hist.total(), 5U);
  EXPECT_EQ(hist.bin_count(0), 2U);
  EXPECT_EQ(hist.bin_count(1), 1U);
  EXPECT_EQ(hist.bin_count(4), 2U);
  EXPECT_EQ(hist.bin_count(99), 0U);
}

TEST(Histogram, BinRange) {
  Histogram hist(0.0, 10.0, 5);
  const auto [lo, hi] = hist.bin_range(1);
  EXPECT_DOUBLE_EQ(lo, 2.0);
  EXPECT_DOUBLE_EQ(hi, 4.0);
}

TEST(Tally, CountsAndShares) {
  Tally tally;
  tally.add("a");
  tally.add("b", 3);
  tally.add("a");
  EXPECT_EQ(tally.total(), 5U);
  EXPECT_EQ(tally.distinct(), 2U);
  EXPECT_EQ(tally.count("a"), 2U);
  EXPECT_EQ(tally.count("missing"), 0U);
  EXPECT_DOUBLE_EQ(tally.share("b"), 0.6);
}

TEST(Tally, TopOrdering) {
  Tally tally;
  tally.add("x", 1);
  tally.add("y", 5);
  tally.add("z", 5);
  const auto top = tally.top(2);
  ASSERT_EQ(top.size(), 2U);
  EXPECT_EQ(top[0].first, "y");  // tie broken lexicographically
  EXPECT_EQ(top[1].first, "z");
}

TEST(Tally, EmptyShareIsZero) {
  Tally tally;
  EXPECT_DOUBLE_EQ(tally.share("a"), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
  const std::vector<double> mismatched = {1.0};
  EXPECT_DOUBLE_EQ(pearson(xs, mismatched), 0.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> xs = {1, 2, 2, 3};
  const std::vector<double> ys = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Bootstrap, DegenerateInputs) {
  Rng rng(1);
  const std::vector<double> empty;
  const auto none = bootstrap_mean_ci(empty, 0.95, 100, rng);
  EXPECT_DOUBLE_EQ(none.point, 0.0);
  const std::vector<double> one = {5.0};
  const auto single = bootstrap_mean_ci(one, 0.95, 100, rng);
  EXPECT_DOUBLE_EQ(single.point, 5.0);
  EXPECT_DOUBLE_EQ(single.lower, 5.0);
  EXPECT_DOUBLE_EQ(single.upper, 5.0);
}

TEST(Bootstrap, CoversTheMeanAndOrdersBounds) {
  Rng rng(2);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.next_normal(10.0, 2.0));
  const auto ci = bootstrap_mean_ci(sample, 0.95, 500, rng);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_NEAR(ci.point, 10.0, 0.5);
  // 95% CI of a 200-point normal(10,2) sample: roughly +-0.28 wide.
  EXPECT_LT(ci.upper - ci.lower, 1.5);
  EXPECT_GT(ci.upper - ci.lower, 0.1);
}

TEST(Bootstrap, TighterWithMoreData) {
  Rng rng(3);
  std::vector<double> small_sample;
  std::vector<double> big_sample;
  for (int i = 0; i < 50; ++i) small_sample.push_back(rng.next_normal(0.0, 1.0));
  for (int i = 0; i < 5000; ++i) big_sample.push_back(rng.next_normal(0.0, 1.0));
  const auto wide = bootstrap_mean_ci(small_sample, 0.95, 400, rng);
  const auto narrow = bootstrap_mean_ci(big_sample, 0.95, 400, rng);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(Percent, Basics) {
  EXPECT_DOUBLE_EQ(percent(1.0, 4.0), 25.0);
  EXPECT_DOUBLE_EQ(percent(1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace cbwt::util
