// Differential join-equivalence suite: the out-of-core radix join
// (netflow/join.h) must produce the in-memory collector's
// CollectionResult bit for bit — same counters, same per-IP map, same
// fault-drop set — across a seeded property corpus (snapshot scales ×
// tracker-set sizes × partition counts × chunk sizes, in-memory and
// store-backed sources), hand-built edge cases, fault injection,
// resume-mid-join, and a threads-1/2/8 determinism sweep with obs
// counter equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "net/ip.h"
#include "netflow/collector.h"
#include "netflow/flow_page.h"
#include "netflow/join.h"
#include "netflow/profile.h"
#include "netflow/wire.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "store/checkpoint.h"
#include "store/dataset.h"
#include "store/record_file.h"
#include "util/prng.h"

namespace cbwt {
namespace {

// Sanitizer builds pay ~10x per record through the spill/probe loops;
// shrink the corpus scales but keep every structural dimension.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr std::size_t kCorpusScales[] = {500, 4'000};
#else
constexpr std::size_t kCorpusScales[] = {1'000, 10'000, 60'000};
#endif

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/cbwt_join_" + name;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<char> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Deterministic, distinct tracker IPs (v4 with a v6 tail, like the
/// paper's mix). Distinctness comes from the index, not the RNG.
std::vector<net::IpAddress> make_tracker_pool(std::size_t count) {
  std::vector<net::IpAddress> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 7 == 6) {
      pool.push_back(net::IpAddress::v6(0x20010DB8u, 0xAD0000u + i));
    } else {
      pool.push_back(net::IpAddress::v4(0x50000000u + static_cast<std::uint32_t>(i) * 7));
    }
  }
  return pool;
}

netflow::TrackerIpIndex make_index(std::span<const net::IpAddress> pool) {
  netflow::TrackerIpIndex index;
  for (const auto& ip : pool) index.add(ip);
  return index;
}

/// Seeded synthetic snapshot: ~80% internal records, ~40% of remotes
/// drawn from the tracker pool (so matches are plentiful), occasional
/// inbound flows with the tracker on the src side, v4/v6 and TCP/UDP
/// mixes, a healthy share of port 443.
std::vector<netflow::RawRecord> make_records(std::uint64_t seed, std::size_t count,
                                             std::span<const net::IpAddress> pool) {
  util::Rng rng(seed);
  std::vector<netflow::RawRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    netflow::RawRecord record;
    record.timestamp_s = static_cast<std::uint32_t>(rng.next_below(86'400));
    record.router = static_cast<std::uint16_t>(rng.next_below(48));
    record.interface = static_cast<std::uint16_t>(rng.next_below(8));
    record.internal_interface = rng.chance(0.8);
    record.protocol = rng.chance(0.3) ? 17 : 6;
    record.src = net::IpAddress::v4(0x0A000000u +
                                    static_cast<std::uint32_t>(rng.next_below(1u << 16)));
    if (!pool.empty() && rng.chance(0.4)) {
      record.dst = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
    } else if (rng.chance(0.1)) {
      record.dst = net::IpAddress::v6(
          0x20010DB8u, static_cast<std::uint32_t>(rng.next_below(1u << 20)));
    } else {
      record.dst = net::IpAddress::v4(
          0xC0000000u + static_cast<std::uint32_t>(rng.next_below(1u << 20)));
    }
    record.src_port = static_cast<std::uint16_t>(32'768 + rng.next_below(16'384));
    record.dst_port = rng.chance(0.5) ? 443
                                      : static_cast<std::uint16_t>(rng.next_below(1'024));
    if (rng.chance(0.05)) {
      // Inbound-style flow: the tracker (if any) sits on the src side,
      // which exercises the join's cross-partition src probe.
      std::swap(record.src, record.dst);
      std::swap(record.src_port, record.dst_port);
    }
    record.packets = 1 + static_cast<std::uint32_t>(rng.next_below(1'000));
    record.bytes = 60 + static_cast<std::uint32_t>(rng.next_below(1u << 20));
    record.tos = static_cast<std::uint8_t>(rng.next_below(256));
    records.push_back(record);
  }
  return records;
}

void expect_same_collection(const netflow::CollectionResult& got,
                            const netflow::CollectionResult& ref) {
  EXPECT_EQ(got.records_seen, ref.records_seen);
  EXPECT_EQ(got.internal_records, ref.internal_records);
  EXPECT_EQ(got.matched_records, ref.matched_records);
  EXPECT_EQ(got.https_records, ref.https_records);
  EXPECT_EQ(got.udp_records, ref.udp_records);
  EXPECT_EQ(got.dropped_records, ref.dropped_records);
  EXPECT_EQ(got.per_ip, ref.per_ip);
}

/// Writes `records` into a wire-codec record file and wraps it as a
/// store-backed RecordSource.
store::RecordSource<netflow::WireCodec> store_source(
    std::span<const netflow::RawRecord> records, const std::string& path) {
  {
    store::RecordFileWriter<netflow::WireCodec> writer(path);
    writer.append(records);
    writer.finalize();
  }
  return store::RecordSource<netflow::WireCodec>(
      store::RecordFileReader<netflow::WireCodec>(path));
}

const netflow::IspProfile& test_isp() { return netflow::default_isps()[0]; }

/// Runs the join (optionally store-backed) and asserts equivalence to
/// the serial in-memory collect() — the definition of the result.
void expect_join_matches(std::span<const netflow::RawRecord> records,
                         const netflow::TrackerIpIndex& index,
                         netflow::JoinConfig config, runtime::ThreadPool* pool,
                         bool store_backed, const std::string& tag,
                         const fault::FaultPlan* plan = nullptr) {
  SCOPED_TRACE(tag);
  const auto ref = netflow::collect(records, index, test_isp(), {.fault_plan = plan});
  config.spill_directory = temp_dir(tag + "_spill");
  netflow::JoinStats stats;
  netflow::CollectionResult got;
  if (store_backed) {
    const auto source = store_source(records, temp_path(tag + ".rec"));
    got = netflow::join_flows(source, index, test_isp(), config, pool,
                              /*registry=*/nullptr, plan, &stats);
  } else {
    const store::RecordSource<netflow::WireCodec> source{records};
    got = netflow::join_flows(source, index, test_isp(), config, pool,
                              /*registry=*/nullptr, plan, &stats);
  }
  expect_same_collection(got, ref);
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(stats.spill_records + got.dropped_records, records.size());
  // Spill volume is exactly the finalized page files.
  EXPECT_EQ(stats.spill_bytes, config.partitions * store::kSuperblockSize +
                                   stats.spill_pages * netflow::kFlowPageBytes);
}

// --- property corpus --------------------------------------------------

TEST(JoinEquivalence, PropertyCorpus) {
  runtime::ThreadPool pool(4);
  const std::size_t tracker_sizes[] = {0, 1, 64, 1'024};
  const std::size_t partition_counts[] = {1, 3, 16};
  const std::size_t chunk_sizes[] = {7, 4'096};
  std::uint64_t seed = 0x90114C0905ULL;
  std::size_t case_index = 0;
  for (const std::size_t scale : kCorpusScales) {
    for (const std::size_t tracker_size : tracker_sizes) {
      const auto pool_ips = make_tracker_pool(tracker_size);
      const auto index = make_index(pool_ips);
      const auto records = make_records(seed++, scale, pool_ips);
      // Sweep partitions × chunks on a rotating schedule so the corpus
      // covers the grid without quadratic runtime.
      const std::size_t partitions = partition_counts[case_index % 3];
      const std::size_t chunk = chunk_sizes[case_index % 2];
      netflow::JoinConfig config;
      config.partitions = partitions;
      config.chunk_records = chunk;
      expect_join_matches(records, index, config, &pool,
                          /*store_backed=*/case_index % 2 == 0,
                          "corpus_" + std::to_string(case_index));
      ++case_index;
    }
  }
}

// --- hand-built edge cases --------------------------------------------

TEST(JoinEquivalence, EmptySnapshot) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(16);
  expect_join_matches({}, make_index(pool_ips), {}, &pool, /*store_backed=*/true,
                      "empty");
  expect_join_matches({}, make_index(pool_ips), {}, &pool, /*store_backed=*/false,
                      "empty_mem");
}

TEST(JoinEquivalence, ZeroTrackerIps) {
  runtime::ThreadPool pool(2);
  const auto records = make_records(0xA11CE, 2'000, {});
  expect_join_matches(records, netflow::TrackerIpIndex{}, {}, &pool,
                      /*store_backed=*/true, "no_trackers");
}

TEST(JoinEquivalence, AllRecordsMatch) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(8);
  const auto index = make_index(pool_ips);
  std::vector<netflow::RawRecord> records;
  for (std::uint32_t i = 0; i < 1'000; ++i) {
    netflow::RawRecord record;
    record.internal_interface = true;
    record.src = net::IpAddress::v4(0x0A000000u + i);
    record.dst = pool_ips[i % pool_ips.size()];
    record.dst_port = (i % 2) != 0 ? 443 : 80;
    record.protocol = (i % 3) != 0 ? 6 : 17;
    records.push_back(record);
  }
  expect_join_matches(records, index, {}, &pool, /*store_backed=*/true, "all_match");
}

TEST(JoinEquivalence, OnePartition) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(64);
  const auto records = make_records(0x0E7, 3'000, pool_ips);
  netflow::JoinConfig config;
  config.partitions = 1;
  expect_join_matches(records, make_index(pool_ips), config, &pool,
                      /*store_backed=*/true, "one_partition");
}

TEST(JoinEquivalence, RecordsStraddleChunkBoundaries) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(32);
  const auto records = make_records(0x57A, 1'001, pool_ips);
  // A prime chunk size guarantees the last chunk is partial and most
  // chunks end mid-page; results must not move.
  netflow::JoinConfig config;
  config.chunk_records = 13;
  config.partitions = 5;
  expect_join_matches(records, make_index(pool_ips), config, &pool,
                      /*store_backed=*/true, "straddle");
}

TEST(JoinEquivalence, DuplicateDestinationsAcrossPartitions) {
  runtime::ThreadPool pool(2);
  // Two tracker IPs that land in different partitions at fan-out 4,
  // each hit many times, plus flows where the tracker is the *source*
  // (probing a partition the record was not routed to).
  const auto pool_ips = make_tracker_pool(2);
  ASSERT_NE(netflow::join_partition_of(pool_ips[0], 4),
            netflow::join_partition_of(pool_ips[1], 4));
  const auto index = make_index(pool_ips);
  std::vector<netflow::RawRecord> records;
  for (std::uint32_t i = 0; i < 2'000; ++i) {
    netflow::RawRecord record;
    record.internal_interface = (i % 5) != 0;
    record.src = net::IpAddress::v4(0x0A000000u + (i % 37));
    record.dst = pool_ips[i % 2];
    record.dst_port = 443;
    if (i % 4 == 3) {
      std::swap(record.src, record.dst);  // tracker on the src side
      record.src_port = 443;
      record.dst_port = 53'000;
    }
    records.push_back(record);
  }
  netflow::JoinConfig config;
  config.partitions = 4;
  expect_join_matches(records, index, config, &pool, /*store_backed=*/true,
                      "dup_dst");
}

// --- fault equivalence ------------------------------------------------

TEST(JoinEquivalence, FaultDropsMatchInMemoryCollector) {
  runtime::ThreadPool pool(4);
  fault::FaultPlan plan;
  plan.seed = 0xFA11;
  plan.site_rates[std::string(fault::sites::kNetflowExport)] = {
      .timeout = 0.05, .error = 0.03, .slow = 0.02, .stale = 0.01};
  const auto pool_ips = make_tracker_pool(128);
  const auto records = make_records(0xD20F5, 8'000, pool_ips);
  const auto index = make_index(pool_ips);
  netflow::JoinConfig config;
  config.partitions = 8;
  config.chunk_records = 501;
  expect_join_matches(records, index, config, &pool, /*store_backed=*/true,
                      "fault_store", &plan);
  expect_join_matches(records, index, config, &pool, /*store_backed=*/false,
                      "fault_mem", &plan);
}

// --- resume-mid-join --------------------------------------------------

TEST(JoinResume, SecondRunReusesSpillsAndMatches) {
  runtime::ThreadPool pool(4);
  const auto pool_ips = make_tracker_pool(64);
  const auto records = make_records(0x2E50, 6'000, pool_ips);
  const auto index = make_index(pool_ips);
  const auto source = store_source(records, temp_path("resume.rec"));
  netflow::JoinConfig config;
  config.spill_directory = temp_dir("resume_spill");
  config.partitions = 8;

  netflow::JoinStats first_stats;
  const auto first = netflow::join_flows(source, index, test_isp(), config, &pool,
                                         nullptr, nullptr, &first_stats);
  EXPECT_FALSE(first_stats.resumed);
  EXPECT_GT(first_stats.spill_pages, 0u);

  // Second run over the same input adopts the manifest: pass 1 skipped,
  // same spill accounting, bit-identical result — even at a different
  // thread count.
  netflow::JoinStats second_stats;
  const auto second = netflow::join_flows(source, index, test_isp(), config,
                                          /*pool=*/nullptr, nullptr, nullptr,
                                          &second_stats);
  EXPECT_TRUE(second_stats.resumed);
  EXPECT_EQ(second_stats.spill_bytes, first_stats.spill_bytes);
  EXPECT_EQ(second_stats.spill_pages, first_stats.spill_pages);
  EXPECT_EQ(second_stats.spill_records, first_stats.spill_records);
  EXPECT_EQ(second_stats.spill_shards, first_stats.spill_shards);
  expect_same_collection(second, first);
}

TEST(JoinResume, MismatchedManifestRepartitions) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(32);
  const auto records = make_records(0xBAD, 2'000, pool_ips);
  const auto index = make_index(pool_ips);
  const auto source = store_source(records, temp_path("resume_bad.rec"));
  netflow::JoinConfig config;
  config.spill_directory = temp_dir("resume_bad_spill");

  netflow::JoinStats stats;
  const auto first =
      netflow::join_flows(source, index, test_isp(), config, &pool, nullptr,
                          nullptr, &stats);
  ASSERT_FALSE(stats.resumed);

  // A different partition fan-out invalidates the manifest.
  auto other = config;
  other.partitions = config.partitions * 2;
  const auto repartitioned = netflow::join_flows(source, index, test_isp(), other,
                                                 &pool, nullptr, nullptr, &stats);
  EXPECT_FALSE(stats.resumed);
  expect_same_collection(repartitioned, first);

  // A corrupted spill file is rejected by its checksum and re-spilled.
  {
    const std::string victim = config.spill_directory + "/part_0.rec";
    std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(-1, std::ios::end);
    file.put('\xFF');
  }
  const auto recovered = netflow::join_flows(source, index, test_isp(), config,
                                             &pool, nullptr, nullptr, &stats);
  EXPECT_FALSE(stats.resumed);
  expect_same_collection(recovered, first);

  // ...after which the repaired spill set resumes again.
  const auto resumed = netflow::join_flows(source, index, test_isp(), config, &pool,
                                           nullptr, nullptr, &stats);
  EXPECT_TRUE(stats.resumed);
  expect_same_collection(resumed, first);
}

TEST(JoinResume, GeometryChangeRepartitions) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(32);
  const auto records = make_records(0x6E0, 5'000, pool_ips);
  const auto index = make_index(pool_ips);
  const auto source = store_source(records, temp_path("resume_geom.rec"));
  netflow::JoinConfig config;
  config.spill_directory = temp_dir("resume_geom_spill");
  config.spill_min_shard_records = 1'000;
  config.spill_max_shards = 4;

  netflow::JoinStats stats;
  const auto first = netflow::join_flows(source, index, test_isp(), config, &pool,
                                         nullptr, nullptr, &stats);
  ASSERT_FALSE(stats.resumed);
  ASSERT_GT(stats.spill_shards, 1u);

  // Shard geometry shapes the page layout, so a geometry change must
  // invalidate the manifest and silently re-partition — both knobs.
  auto finer = config;
  finer.spill_min_shard_records = 500;
  const auto repartitioned = netflow::join_flows(source, index, test_isp(), finer,
                                                 &pool, nullptr, nullptr, &stats);
  EXPECT_FALSE(stats.resumed);
  expect_same_collection(repartitioned, first);

  auto capped = finer;
  capped.spill_max_shards = 2;
  const auto recapped = netflow::join_flows(source, index, test_isp(), capped, &pool,
                                            nullptr, nullptr, &stats);
  EXPECT_FALSE(stats.resumed);
  expect_same_collection(recapped, first);

  // Unchanged geometry resumes off the freshly rewritten spill set.
  const auto resumed = netflow::join_flows(source, index, test_isp(), capped, &pool,
                                           nullptr, nullptr, &stats);
  EXPECT_TRUE(stats.resumed);
  expect_same_collection(resumed, first);
}

TEST(JoinResume, PreGeometryManifestRepartitions) {
  runtime::ThreadPool pool(2);
  const auto pool_ips = make_tracker_pool(32);
  const auto records = make_records(0x01D, 3'000, pool_ips);
  const auto index = make_index(pool_ips);
  const auto source = store_source(records, temp_path("resume_old.rec"));
  netflow::JoinConfig config;
  config.spill_directory = temp_dir("resume_old_spill");

  netflow::JoinStats stats;
  const auto first = netflow::join_flows(source, index, test_isp(), config, &pool,
                                         nullptr, nullptr, &stats);
  ASSERT_FALSE(stats.resumed);

  // Strip the shard-geometry keys, reconstructing a manifest written by
  // a build that predates them. Resume must fall back to
  // re-partitioning (missing key, not a crash), then heal the manifest.
  const std::string manifest_path = config.spill_directory + "/join_manifest.txt";
  const auto manifest = store::read_manifest(manifest_path);
  store::Manifest stripped;
  for (const auto& [key, value] : manifest.entries()) {
    if (key == "spill_min_shard_records" || key == "spill_max_shards" ||
        key == "spill_shards") {
      continue;
    }
    stripped.set(key, value);
  }
  store::write_manifest(manifest_path, stripped);

  const auto repartitioned = netflow::join_flows(source, index, test_isp(), config,
                                                 &pool, nullptr, nullptr, &stats);
  EXPECT_FALSE(stats.resumed);
  expect_same_collection(repartitioned, first);

  const auto resumed = netflow::join_flows(source, index, test_isp(), config, &pool,
                                           nullptr, nullptr, &stats);
  EXPECT_TRUE(stats.resumed);
  expect_same_collection(resumed, first);
}

// --- spill-set byte identity (threads 1/2/8) --------------------------

/// The tentpole invariant of the parallel spill pass: the on-disk spill
/// set — every partition file byte for byte, superblock checksum
/// included, plus the resume manifest — is identical at any thread
/// count, because page boundaries fall at shard-plan boundaries and the
/// plan is a pure function of (input size, spill geometry).
TEST(JoinSpillDeterminism, SpillSetByteIdenticalAcrossThreadCounts) {
  const auto pool_ips = make_tracker_pool(128);
  const auto records = make_records(0x5B111, 20'000, pool_ips);
  const auto index = make_index(pool_ips);
  const auto source = store_source(records, temp_path("spill_ident.rec"));
  netflow::JoinConfig base;
  base.partitions = 8;
  base.spill_min_shard_records = 1'000;  // many shards even at test scale
  base.spill_max_shards = 16;

  std::vector<std::vector<char>> reference_files;
  std::vector<char> reference_manifest;
  netflow::CollectionResult reference;
  bool have_reference = false;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    runtime::ThreadPool pool(threads);
    auto config = base;
    config.spill_directory = temp_dir("spill_ident_t" + std::to_string(threads));
    netflow::JoinStats stats;
    const auto result = netflow::join_flows(source, index, test_isp(), config, &pool,
                                            nullptr, nullptr, &stats);
    EXPECT_FALSE(stats.resumed);
    EXPECT_GT(stats.spill_shards, 1u);  // the sweep must exercise merging

    std::vector<std::vector<char>> files;
    for (std::size_t p = 0; p < config.partitions; ++p) {
      files.push_back(read_file_bytes(config.spill_directory + "/part_" +
                                      std::to_string(p) + ".rec"));
    }
    auto manifest = read_file_bytes(config.spill_directory + "/join_manifest.txt");
    if (!have_reference) {
      reference_files = std::move(files);
      reference_manifest = std::move(manifest);
      reference = result;
      have_reference = true;
      continue;
    }
    expect_same_collection(result, reference);
    EXPECT_EQ(manifest, reference_manifest);
    ASSERT_EQ(files.size(), reference_files.size());
    for (std::size_t p = 0; p < files.size(); ++p) {
      EXPECT_EQ(files[p], reference_files[p]) << "partition " << p;
    }
  }
}

// --- determinism sweep (threads 1/2/8) --------------------------------

/// The join's thread-count invariance, StudyDeterminism-style: results
/// and every deterministic obs counter must be identical at any pool
/// size, store-backed or in-memory, fresh or resumed.
class JoinDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(JoinDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto pool_ips = make_tracker_pool(256);
  const auto records = make_records(0xDE7E2, 12'000, pool_ips);
  const auto index = make_index(pool_ips);

  // Serial reference: the definition of the result.
  obs::Registry ref_registry;
  netflow::JoinConfig ref_config;
  ref_config.spill_directory =
      temp_dir("det_ref_t" + std::to_string(GetParam()));
  {
    const store::RecordSource<netflow::WireCodec> memory{
        std::span<const netflow::RawRecord>(records)};
    const auto ref = netflow::join_flows(memory, index, test_isp(), ref_config,
                                         /*pool=*/nullptr, &ref_registry);

    runtime::ThreadPool pool(GetParam());
    obs::Registry registry;
    netflow::JoinConfig config;
    config.spill_directory = temp_dir("det_t" + std::to_string(GetParam()));
    const auto source =
        store_source(records, temp_path("det_t" + std::to_string(GetParam()) + ".rec"));
    const auto got =
        netflow::join_flows(source, index, test_isp(), config, &pool, &registry);
    expect_same_collection(got, ref);

    // Deterministic counters must not move with the thread count (the
    // store read counters differ by the input file the store-backed leg
    // reads; the join/netflow counters may not).
    for (const char* name :
         {"cbwt_netflow_records_collected_total", "cbwt_netflow_internal_total",
          "cbwt_netflow_matched_total", "cbwt_netflow_join_partitions_total",
          "cbwt_netflow_join_spill_bytes_total",
          "cbwt_netflow_join_spill_records_total",
          "cbwt_netflow_join_spill_pages_total",
          "cbwt_netflow_join_spill_shards_total",
          "cbwt_netflow_join_resumed_total",
          "cbwt_netflow_join_probe_records_total"}) {
      EXPECT_EQ(registry.counter_value(name), ref_registry.counter_value(name))
          << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, JoinDeterminism, ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

// --- flow pages -------------------------------------------------------

TEST(FlowPage, EncodeParseFixpoint) {
  const auto pool_ips = make_tracker_pool(8);
  const auto records = make_records(0xF10A, 64, pool_ips);
  netflow::FlowPageBuilder builder;
  std::vector<netflow::FlowPage> pages;
  for (const auto& record : records) {
    if (!builder.try_add(record)) {
      pages.push_back(builder.take());
      ASSERT_TRUE(builder.try_add(record));
    }
  }
  if (!builder.empty()) pages.push_back(builder.take());
  ASSERT_FALSE(pages.empty());

  std::size_t total = 0;
  for (const auto& page : pages) {
    std::uint8_t buffer[netflow::kFlowPageBytes];
    netflow::encode_flow_page(page, buffer);
    const auto parsed = netflow::parse_flow_page({buffer, sizeof buffer});
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, page);
    // Canonical: re-encoding the parse reproduces the exact bytes.
    std::uint8_t again[netflow::kFlowPageBytes];
    netflow::encode_flow_page(*parsed, again);
    EXPECT_EQ(std::vector<std::uint8_t>(buffer, buffer + sizeof buffer),
              std::vector<std::uint8_t>(again, again + sizeof again));
    total += page.records.size();
  }
  EXPECT_EQ(total, records.size());
}

/// The in-place image builder must make the exact page-split decisions
/// and produce the exact sealed bytes of the buffer-then-encode path —
/// they share one per-record encoder, and this pins that they stay
/// shared.
TEST(FlowPage, ImageBuilderMatchesBatchEncoder) {
  const auto pool_ips = make_tracker_pool(16);
  const auto records = make_records(0x1A6E, 2'000, pool_ips);
  netflow::FlowPageBuilder batch;
  netflow::FlowPageImageBuilder inplace;
  std::vector<netflow::FlowPage> pages;
  std::vector<netflow::FlowPageImage> images;
  for (const auto& record : records) {
    const bool batch_fit = batch.try_add(record);
    const bool inplace_fit = inplace.try_add(record);
    ASSERT_EQ(batch_fit, inplace_fit);  // identical split decisions
    ASSERT_EQ(batch.records(), inplace.records());
    if (!batch_fit) {
      pages.push_back(batch.take());
      inplace.seal_into(images);
      ASSERT_TRUE(batch.try_add(record));
      ASSERT_TRUE(inplace.try_add(record));
    }
  }
  if (!batch.empty()) {
    pages.push_back(batch.take());
    inplace.seal_into(images);
  }
  ASSERT_GT(pages.size(), 1u);
  ASSERT_EQ(pages.size(), images.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    std::uint8_t buffer[netflow::kFlowPageBytes];
    netflow::encode_flow_page(pages[i], buffer);
    EXPECT_EQ(0, std::memcmp(buffer, images[i].bytes.data(), sizeof buffer))
        << "page " << i;
    // And the sealed image parses back to the buffered page.
    const auto parsed = netflow::parse_flow_page(
        {images[i].bytes.data(), netflow::kFlowPageBytes});
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pages[i]);
  }
}

/// append_encoded + incremental checksums must leave a file that is
/// byte-for-byte the one append() with the finalize-time checksum
/// leaves — the spill pass swaps both in, and resume compares the
/// superblock checksum across runs.
TEST(FlowPage, EncodedAppendWithIncrementalChecksumMatchesAppend) {
  const auto pool_ips = make_tracker_pool(16);
  const auto records = make_records(0xE9C, 2'000, pool_ips);
  netflow::FlowPageBuilder batch;
  netflow::FlowPageImageBuilder inplace;
  const std::string decoded_path = temp_path("writer_parity_decoded.rec");
  const std::string encoded_path = temp_path("writer_parity_encoded.rec");
  {
    store::RecordFileWriter<netflow::FlowPageCodec> decoded_writer(decoded_path);
    store::RecordFileWriter<netflow::FlowPageCodec> encoded_writer(
        encoded_path, /*registry=*/nullptr, /*incremental_checksum=*/true);
    std::vector<netflow::FlowPageImage> images;
    for (const auto& record : records) {
      if (!batch.try_add(record)) {
        decoded_writer.append(batch.take());
        ASSERT_TRUE(batch.try_add(record));
      }
      if (!inplace.try_add(record)) {
        inplace.seal_into(images);
        ASSERT_TRUE(inplace.try_add(record));
      }
    }
    if (!batch.empty()) decoded_writer.append(batch.take());
    if (!inplace.empty()) inplace.seal_into(images);
    for (const auto& image : images) encoded_writer.append_encoded(image.bytes);
    ASSERT_GT(decoded_writer.size(), 1u);
    decoded_writer.finalize();
    encoded_writer.finalize();
  }
  EXPECT_EQ(read_file_bytes(encoded_path), read_file_bytes(decoded_path));
  // Both open clean (superblock checksum validates either way).
  EXPECT_EQ(store::RecordFileReader<netflow::FlowPageCodec>(encoded_path).checksum(),
            store::RecordFileReader<netflow::FlowPageCodec>(decoded_path).checksum());
}

TEST(FlowPage, RejectsCorruption) {
  netflow::FlowPage page;
  page.records = make_records(0xBADF10A, 8, {});
  std::uint8_t buffer[netflow::kFlowPageBytes];
  netflow::encode_flow_page(page, buffer);
  ASSERT_TRUE(netflow::parse_flow_page({buffer, sizeof buffer}).has_value());

  auto corrupted = [&](std::size_t at, std::uint8_t delta) {
    std::uint8_t copy[netflow::kFlowPageBytes];
    std::copy(buffer, buffer + sizeof buffer, copy);
    copy[at] ^= delta;
    return netflow::parse_flow_page({copy, sizeof copy});
  };
  EXPECT_FALSE(corrupted(0, 0xFF).has_value());   // magic
  EXPECT_FALSE(corrupted(2, 0x01).has_value());   // version
  EXPECT_FALSE(corrupted(3, 0x01).has_value());   // reserved byte
  EXPECT_FALSE(corrupted(5, 0x01).has_value());   // record count vs payload
  EXPECT_FALSE(corrupted(8, 0x01).has_value());   // checksum
  EXPECT_FALSE(corrupted(20, 0x01).has_value());  // payload bit flip
  // Non-zero padding after the payload.
  EXPECT_FALSE(corrupted(netflow::kFlowPageBytes - 1, 0x01).has_value());
  // Wrong span size.
  EXPECT_FALSE(netflow::parse_flow_page({buffer, 100}).has_value());
}

}  // namespace
}  // namespace cbwt
