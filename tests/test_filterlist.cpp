#include "filterlist/engine.h"
#include "filterlist/generate.h"
#include "filterlist/rule.h"

#include <gtest/gtest.h>

namespace cbwt::filterlist {
namespace {

RequestContext ctx(std::string_view url, std::string_view page_host = "news.example.com",
                   bool third_party = true) {
  RequestContext request;
  request.url = url;
  const std::size_t scheme = url.find("://");
  std::string_view rest = url.substr(scheme + 3);
  request.host = rest.substr(0, rest.find('/'));
  request.page_host = page_host;
  request.third_party = third_party;
  return request;
}

bool matches(std::string_view rule_text, const RequestContext& request) {
  const auto rule = parse_rule(rule_text);
  EXPECT_TRUE(rule.has_value()) << rule_text;
  return rule_matches(*rule, request);
}

// ---------------------------------------------------------------- parsing

TEST(ParseRule, SkipsCommentsAndEmpties) {
  EXPECT_FALSE(parse_rule("! comment").has_value());
  EXPECT_FALSE(parse_rule("").has_value());
  EXPECT_FALSE(parse_rule("   ").has_value());
}

TEST(ParseRule, SkipsElementHiding) {
  EXPECT_FALSE(parse_rule("example.com##.ad-banner").has_value());
  EXPECT_FALSE(parse_rule("example.com#@#.whitelisted").has_value());
}

TEST(ParseRule, DomainAnchor) {
  const auto rule = parse_rule("||ads.example.com^");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->anchor, AnchorKind::DomainName);
  EXPECT_FALSE(rule->exception);
  ASSERT_EQ(rule->parts.size(), 1U);
  EXPECT_EQ(rule->parts[0], "ads.example.com^");
}

TEST(ParseRule, ExceptionAndOptions) {
  const auto rule = parse_rule("@@||good.com^$third-party,domain=a.com|~b.com");
  ASSERT_TRUE(rule.has_value());
  EXPECT_TRUE(rule->exception);
  ASSERT_TRUE(rule->options.third_party.has_value());
  EXPECT_TRUE(*rule->options.third_party);
  ASSERT_EQ(rule->options.include_domains.size(), 1U);
  EXPECT_EQ(rule->options.include_domains[0], "a.com");
  ASSERT_EQ(rule->options.exclude_domains.size(), 1U);
  EXPECT_EQ(rule->options.exclude_domains[0], "b.com");
}

TEST(ParseRule, WildcardSplitting) {
  const auto rule = parse_rule("/banner/*/img^");
  ASSERT_TRUE(rule.has_value());
  ASSERT_EQ(rule->parts.size(), 2U);
  EXPECT_EQ(rule->parts[0], "/banner/");
  EXPECT_EQ(rule->parts[1], "/img^");
}

TEST(ParseRule, StartAndEndAnchors) {
  const auto rule = parse_rule("|https://ads.|");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->anchor, AnchorKind::Start);
  EXPECT_TRUE(rule->end_anchor);
}

TEST(ParseRule, LowercasesPattern) {
  const auto rule = parse_rule("||AdServe.COM^");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->parts[0], "adserve.com^");
}

// --------------------------------------------------------------- matching

TEST(RuleMatch, SeparatorClass) {
  EXPECT_TRUE(is_separator_char('/'));
  EXPECT_TRUE(is_separator_char('?'));
  EXPECT_TRUE(is_separator_char(':'));
  EXPECT_FALSE(is_separator_char('a'));
  EXPECT_FALSE(is_separator_char('5'));
  EXPECT_FALSE(is_separator_char('-'));
  EXPECT_FALSE(is_separator_char('.'));
  EXPECT_FALSE(is_separator_char('%'));
  EXPECT_FALSE(is_separator_char('_'));
}

TEST(RuleMatch, DomainAnchorMatchesHostAndSubdomains) {
  EXPECT_TRUE(matches("||example.com^", ctx("https://example.com/x")));
  EXPECT_TRUE(matches("||example.com^", ctx("https://sub.example.com/x")));
  EXPECT_FALSE(matches("||example.com^", ctx("https://badexample.com/x")));
  EXPECT_FALSE(matches("||example.com^", ctx("https://example.common/x")));
}

TEST(RuleMatch, DomainAnchorWithTrailingCaretAtUrlEnd) {
  // '^' may match the end of the address.
  EXPECT_TRUE(matches("||example.com^", ctx("https://example.com")));
}

TEST(RuleMatch, DomainAnchorDoesNotMatchInsidePathOrQuery) {
  EXPECT_FALSE(matches("||track.com^", ctx("https://safe.com/track.com/x")));
  EXPECT_FALSE(matches("||track.com^", ctx("https://safe.com/x?u=track.com")));
}

TEST(RuleMatch, PlainSubstring) {
  EXPECT_TRUE(matches("/adframe/", ctx("https://x.com/adframe/1.js")));
  EXPECT_FALSE(matches("/adframe/", ctx("https://x.com/frame/1.js")));
}

TEST(RuleMatch, WildcardSpansSegments) {
  EXPECT_TRUE(matches("/banner/*/img^", ctx("https://x.com/banner/123/img?s=1")));
  EXPECT_TRUE(matches("/banner/*/img^", ctx("https://x.com/banner/a/b/img")));
  EXPECT_FALSE(matches("/banner/*/img^", ctx("https://x.com/banner/123/image")));
}

TEST(RuleMatch, StartAnchor) {
  EXPECT_TRUE(matches("|https://ads.", ctx("https://ads.example.com/x")));
  EXPECT_FALSE(matches("|https://ads.", ctx("https://www.ads.example.com/x")));
}

TEST(RuleMatch, EndAnchor) {
  EXPECT_TRUE(matches(".swf|", ctx("https://x.com/movie.swf")));
  EXPECT_FALSE(matches(".swf|", ctx("https://x.com/movie.swf?x=1")));
}

TEST(RuleMatch, ThirdPartyOption) {
  EXPECT_TRUE(matches("||t.com^$third-party", ctx("https://t.com/x", "news.com", true)));
  EXPECT_FALSE(matches("||t.com^$third-party", ctx("https://t.com/x", "t.com", false)));
  EXPECT_FALSE(matches("||t.com^$~third-party", ctx("https://t.com/x", "news.com", true)));
}

TEST(RuleMatch, DomainOption) {
  EXPECT_TRUE(
      matches("/ads/$domain=news.com", ctx("https://t.com/ads/1", "news.com")));
  EXPECT_TRUE(
      matches("/ads/$domain=news.com", ctx("https://t.com/ads/1", "sub.news.com")));
  EXPECT_FALSE(
      matches("/ads/$domain=news.com", ctx("https://t.com/ads/1", "other.com")));
  EXPECT_FALSE(
      matches("/ads/$domain=~news.com", ctx("https://t.com/ads/1", "news.com")));
  EXPECT_TRUE(
      matches("/ads/$domain=~news.com", ctx("https://t.com/ads/1", "other.com")));
}

TEST(RuleMatch, ResourceTypeOptionsAreIgnoredNotFatal) {
  EXPECT_TRUE(matches("||t.com^$script,image", ctx("https://t.com/x")));
}

TEST(RuleMatch, CaretMatchesQueryBoundary) {
  EXPECT_TRUE(matches("||t.com^*/pixel?", ctx("https://t.com/a/pixel?uid=1")));
  // A caret between host and path:
  EXPECT_TRUE(matches("||t.com^pixel", ctx("https://t.com/pixel")));
  EXPECT_FALSE(matches("||t.com^pixel", ctx("https://t.com/xpixel")));
}

// ----------------------------------------------------------------- engine

TEST(Engine, MatchesAcrossListsAndReportsListName) {
  Engine engine;
  engine.add_list(FilterList("easylist", {"||ads.t.com^"}));
  engine.add_list(FilterList("easyprivacy", {"/collect?"}));
  const auto hit1 = engine.match(ctx("https://ads.t.com/x"));
  EXPECT_TRUE(hit1.matched);
  EXPECT_EQ(hit1.list, "easylist");
  const auto hit2 = engine.match(ctx("https://stats.u.com/collect?sid=1"));
  EXPECT_TRUE(hit2.matched);
  EXPECT_EQ(hit2.list, "easyprivacy");
  EXPECT_FALSE(engine.match(ctx("https://clean.com/app.js")).matched);
}

TEST(Engine, ExceptionOverridesBlock) {
  Engine engine;
  engine.add_list(FilterList("easylist", {"||ads.t.com^", "@@||ads.t.com/allowed/"}));
  EXPECT_TRUE(engine.match(ctx("https://ads.t.com/x")).matched);
  EXPECT_FALSE(engine.match(ctx("https://ads.t.com/allowed/x")).matched);
}

TEST(Engine, IndexedSubdomainLookup) {
  Engine engine;
  engine.add_list(FilterList("easylist", {"||t.com^"}));
  EXPECT_TRUE(engine.match(ctx("https://deep.sub.t.com/x")).matched);
}

// Regression: hosts with underscores (real easylist carries rules like
// ||ad_server.example^) must land in the anchor index, not silently
// fall through to the scan bucket with a truncated key.
TEST(Engine, AnchorKeyKeepsUnderscoreHosts) {
  const auto rule = parse_rule("||ad_server.example.com^");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(anchor_index_key(*rule), "ad_server.example.com");

  Engine engine;
  engine.add_list(FilterList("easylist", {"||ad_server.example.com^"}));
  EXPECT_EQ(engine.index_stats().anchored_rules, 1U);
  EXPECT_EQ(engine.index_stats().tokenized_rules, 0U);
  EXPECT_EQ(engine.index_stats().fallback_rules, 0U);
  EXPECT_TRUE(
      engine.match(ctx("https://ad_server.example.com/x", "site.com")).matched);
  EXPECT_TRUE(
      engine.match(ctx("https://sub.ad_server.example.com/x", "site.com")).matched);
  EXPECT_FALSE(engine.match(ctx("https://adxserver.example.com/x", "site.com")).matched);
}

// The compiled index must put every rule in exactly one bucket.
TEST(Engine, IndexStatsPartitionTheRules) {
  Engine engine;
  engine.add_list(FilterList("easylist",
                             {"||ads.t.com^", "/adserve/", "&ad_slot=", "trk",
                              "@@||ads.t.com/allowed/", "@@trk"}));
  const auto& stats = engine.index_stats();
  EXPECT_EQ(stats.anchored_rules + stats.tokenized_rules + stats.fallback_rules +
                stats.tokenized_exceptions + stats.fallback_exceptions,
            engine.total_rules());
  EXPECT_GT(stats.anchored_rules, 0U);
  EXPECT_GT(stats.tokenized_rules, 0U);
  EXPECT_GT(stats.literal_bytes, 0U);
}

TEST(Engine, SkippedLineAccounting) {
  const FilterList list("x", {"! comment", "||a.com^", "bad##hide", ""});
  EXPECT_EQ(list.rule_count(), 1U);
  EXPECT_EQ(list.skipped_lines(), 3U);
}

TEST(Engine, TotalRules) {
  Engine engine;
  engine.add_list(FilterList("a", {"||a.com^", "/x/"}));
  engine.add_list(FilterList("b", {"||b.com^"}));
  EXPECT_EQ(engine.total_rules(), 3U);
}

/// Property: the indexed engine agrees with a naive scan over all rules.
TEST(Engine, AgreesWithNaiveScan) {
  const std::vector<std::string> lines = {
      "||ads.t.com^$third-party", "||u.com^", "/banner/*/img^",  "&ad_slot=",
      "|https://ads.",            ".swf|",    "@@||u.com/benign/",
  };
  Engine engine;
  engine.add_list(FilterList("l", lines));
  std::vector<Rule> rules;
  for (const auto& line : lines) {
    if (auto rule = parse_rule(line)) rules.push_back(std::move(*rule));
  }

  const std::vector<std::string> urls = {
      "https://ads.t.com/x",
      "https://sub.ads.t.com/y?a=1",
      "https://u.com/page",
      "https://u.com/benign/ok",
      "https://x.com/banner/12/img?s=1",
      "https://x.com/a?x=1&ad_slot=3",
      "https://ads.site.com/z",
      "https://clean.org/app.swf",
      "https://clean.org/app.swf?v=2",
      "https://nothing.example/",
  };
  for (const auto& url : urls) {
    const auto request = ctx(url);
    bool naive_blocked = false;
    bool naive_excepted = false;
    for (const auto& rule : rules) {
      if (!rule_matches(rule, request)) continue;
      if (rule.exception) naive_excepted = true;
      else naive_blocked = true;
    }
    const bool naive = naive_blocked && !naive_excepted;
    EXPECT_EQ(engine.match(request).matched, naive) << url;
  }
}

// -------------------------------------------------------------- generation

TEST(Generate, ListsCoverTheWorldsListedDomains) {
  world::WorldConfig config;
  config.seed = 99;
  config.scale = 0.01;
  config.publishers = 100;
  const auto world = world::build_world(config);
  util::Rng rng(5);
  const auto lists = generate_lists(world, rng);
  EXPECT_GT(lists.easylist.size(), 50U);
  EXPECT_GT(lists.easyprivacy.size(), 20U);

  Engine engine;
  engine.add_list(FilterList("easylist", lists.easylist));
  engine.add_list(FilterList("easyprivacy", lists.easyprivacy));

  // Every in_easylist ad-network FQDN must be blocked at its root.
  std::size_t checked = 0;
  for (const auto& domain : world.domains()) {
    if (!domain.in_easylist ||
        world.org(domain.org).role != world::OrgRole::AdNetwork) {
      continue;
    }
    const std::string url =
        "https://" + domain.fqdn + "/ads/display/1?pub=x.com&ad_slot=2";
    EXPECT_TRUE(engine.match(ctx(url)).matched) << url;
    if (++checked > 60) break;
  }
  // Clean-service hosts never match.
  for (const auto& domain : world.domains()) {
    if (world.org(domain.org).role != world::OrgRole::CleanService) continue;
    const std::string url = "https://" + domain.fqdn + "/assets/app-1.js";
    EXPECT_FALSE(engine.match(ctx(url)).matched) << url;
  }
}

// ------------------------------------------------- parser edge cases
// Promoted from fuzz/fuzz_rule.cpp and its seed corpus
// (fuzz/corpus/rule); keep in sync when new crashers are minimized.

TEST(ParseRuleEdgeCases, EmptyAndDegenerateLines) {
  EXPECT_FALSE(parse_rule("").has_value());
  EXPECT_FALSE(parse_rule("   \t  ").has_value());
  // A lone wildcard has no anchors and no literals: nothing to match on.
  EXPECT_FALSE(parse_rule("*").has_value());
  EXPECT_FALSE(parse_rule("***").has_value());
}

TEST(ParseRuleEdgeCases, BareAnchorsStillParse) {
  // "||" and "|"-only rules are anchored, so they are valid (if broad).
  const auto domain_only = parse_rule("||");
  ASSERT_TRUE(domain_only.has_value());
  EXPECT_EQ(domain_only->anchor, AnchorKind::DomainName);
  EXPECT_TRUE(domain_only->parts.empty());
}

TEST(ParseRuleEdgeCases, NonUtf8BytesDoNotCrash) {
  const std::string_view line("ad\xFFs\x00tracker^", 12);
  const auto rule = parse_rule(line);
  ASSERT_TRUE(rule.has_value());
  RequestContext request;
  request.url = "http://ads.tracker.com/x";
  request.host = "ads.tracker.com";
  request.page_host = "news.example.com";
  request.third_party = true;
  EXPECT_FALSE(rule_matches(*rule, request));
}

TEST(ParseRuleEdgeCases, OversizedRuleLine) {
  const std::string huge = "||" + std::string(64 * 1024, 'a') + ".com^";
  const auto rule = parse_rule(huge);
  ASSERT_TRUE(rule.has_value());
  RequestContext request;
  request.url = "http://short.com/";
  request.host = "short.com";
  request.page_host = "news.example.com";
  request.third_party = true;
  EXPECT_FALSE(rule_matches(*rule, request));
}

TEST(ParseRuleEdgeCases, DollarOnlyAndTrailingOptionForms) {
  // '$' at position 0 is part of the pattern (no option split).
  const auto dollar = parse_rule("$third-party");
  ASSERT_TRUE(dollar.has_value());
  ASSERT_EQ(dollar->parts.size(), 1U);
  EXPECT_EQ(dollar->parts[0], "$third-party");
  // Empty option list after a real pattern parses cleanly.
  EXPECT_TRUE(parse_rule("tracker$").has_value());
  EXPECT_TRUE(parse_rule("tracker$,,").has_value());
}

TEST(ParseRuleEdgeCases, StoredTextReparsesToSameRule) {
  for (const std::string_view line :
       {"@@||cdn.site.org^$third-party",
        "/banner/*/img^$domain=site.org|~sub.site.org,third-party",
        "|http://ads.", "||ads.tracker.com^|"}) {
    const auto rule = parse_rule(line);
    ASSERT_TRUE(rule.has_value()) << line;
    const auto reparsed = parse_rule(rule->text);
    ASSERT_TRUE(reparsed.has_value()) << line;
    EXPECT_EQ(reparsed->exception, rule->exception);
    EXPECT_EQ(reparsed->anchor, rule->anchor);
    EXPECT_EQ(reparsed->end_anchor, rule->end_anchor);
    EXPECT_EQ(reparsed->parts, rule->parts);
  }
}

}  // namespace
}  // namespace cbwt::filterlist
