#include "netflow/collector.h"
#include "netflow/generator.h"
#include "netflow/profile.h"
#include "netflow/sflow.h"
#include "netflow/wire.h"

#include <gtest/gtest.h>

namespace cbwt::netflow {
namespace {

TEST(Profiles, TableSevenShape) {
  const auto isps = default_isps();
  ASSERT_EQ(isps.size(), 4U);
  EXPECT_EQ(isps[0].name, "DE-Broadband");
  EXPECT_EQ(isps[0].country, "DE");
  EXPECT_EQ(isps[0].access, AccessType::Broadband);
  EXPECT_DOUBLE_EQ(isps[0].subscribers_m, 15.0);
  EXPECT_EQ(isps[1].name, "DE-Mobile");
  EXPECT_DOUBLE_EQ(isps[1].subscribers_m, 40.0);
  EXPECT_EQ(isps[2].name, "PL");
  EXPECT_EQ(isps[3].name, "HU");
  // Mobile operators keep users behind the ISP resolver.
  EXPECT_LT(isps[1].third_party_resolver_share, isps[0].third_party_resolver_share);
}

TEST(Profiles, SnapshotsBracketTheGdprDate) {
  const auto snapshots = default_snapshots();
  ASSERT_EQ(snapshots.size(), 4U);
  EXPECT_EQ(snapshots[0].label, "Nov 8");
  EXPECT_EQ(snapshots[3].label, "June 20");
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_GT(snapshots[i].day, snapshots[i - 1].day);
  }
}

TEST(Anonymize, StripsSubscriberSide) {
  RawRecord record;
  record.src = net::IpAddress::v4(0x59000001);  // subscriber
  record.dst = net::IpAddress::v4(0x0B000001);  // tracker
  record.src_port = 44444;
  record.dst_port = 443;
  record.protocol = 6;
  record.packets = 3;
  record.bytes = 999;
  const auto anon = anonymize(record, /*subscriber_is_src=*/true, "DE");
  EXPECT_EQ(anon.subscriber_country, "DE");
  EXPECT_EQ(anon.remote, record.dst);
  EXPECT_EQ(anon.remote_port, 443);
  EXPECT_EQ(anon.direction, Direction::Outbound);
  // Reverse direction:
  const auto inbound = anonymize(record, /*subscriber_is_src=*/false, "DE");
  EXPECT_EQ(inbound.remote, record.src);
  EXPECT_EQ(inbound.direction, Direction::Inbound);
}

TEST(TrackerIpIndex, PdnsWindowing) {
  pdns::Store store;
  store.observe("a.t.com", "t.com", net::IpAddress::v4(1), 10);
  store.observe("a.t.com", "t.com", net::IpAddress::v4(1), 20);
  store.observe("b.t.com", "t.com", net::IpAddress::v4(2), 50);
  const auto at15 = TrackerIpIndex::from_pdns(store, 15);
  EXPECT_TRUE(at15.contains(net::IpAddress::v4(1)));
  EXPECT_FALSE(at15.contains(net::IpAddress::v4(2)));
  const auto at50 = TrackerIpIndex::from_pdns(store, 50);
  EXPECT_FALSE(at50.contains(net::IpAddress::v4(1)));
  EXPECT_TRUE(at50.contains(net::IpAddress::v4(2)));
  const auto all = TrackerIpIndex::from_pdns_all_time(store);
  EXPECT_EQ(all.size(), 2U);
}

class NetflowPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 606;
    config.scale = 0.01;
    config.publishers = 300;
    world_ = new world::World(world::build_world(config));
    resolver_ = new dns::Resolver(*world_);
    config_.scale = 2e-6;  // tiny but enough records to aggregate
  }
  static void TearDownTestSuite() {
    delete resolver_;
    delete world_;
  }
  static world::World* world_;
  static dns::Resolver* resolver_;
  static GeneratorConfig config_;
};

world::World* NetflowPipeline::world_ = nullptr;
dns::Resolver* NetflowPipeline::resolver_ = nullptr;
GeneratorConfig NetflowPipeline::config_;

TEST_F(NetflowPipeline, VolumeScalesWithProfile) {
  util::Rng rng(1);
  const auto& isps = default_isps();
  const auto& snapshot = default_snapshots()[1];
  const auto big = generate_snapshot(*world_, *resolver_, isps[0], snapshot, config_, rng);
  const auto small = generate_snapshot(*world_, *resolver_, isps[2], snapshot, config_, rng);
  // DE-Broadband exports ~75x more than PL (Table 8 volumes).
  EXPECT_GT(big.tracking_intended, small.tracking_intended * 30);
  EXPECT_EQ(big.records.size(),
            (big.tracking_intended + big.background_intended) +
                (big.tracking_intended + big.background_intended) / 50);
}

TEST_F(NetflowPipeline, RecordsAreWellFormed) {
  util::Rng rng(2);
  const auto exported = generate_snapshot(*world_, *resolver_, default_isps()[3],
                                          default_snapshots()[0], config_, rng);
  std::size_t https = 0;
  for (const auto& record : exported.records) {
    EXPECT_LT(record.timestamp_s, 86400U);
    EXPECT_TRUE(record.protocol == 6 || record.protocol == 17);
    EXPECT_TRUE(record.dst_port == 443 || record.dst_port == 80);
    EXPECT_GT(record.packets, 0U);
    EXPECT_GT(record.bytes, 0U);
    if (record.dst_port == 443) ++https;
    // QUIC only rides on 443.
    if (record.protocol == 17) {
      EXPECT_EQ(record.dst_port, 443);
    }
  }
  // Small-sample binomial noise: ~185 records -> sd ~2.7pp.
  EXPECT_NEAR(static_cast<double>(https) / exported.records.size(), 0.834, 0.09);
}

TEST_F(NetflowPipeline, CollectorFiltersAndMatches) {
  util::Rng rng(3);
  const auto& isp = default_isps()[0];
  const auto exported = generate_snapshot(*world_, *resolver_, isp,
                                          default_snapshots()[1], config_, rng);

  // Index over every tracking server IP (ground truth join list).
  TrackerIpIndex index;
  for (const auto id : world_->tracking_domain_ids()) {
    for (const auto sid : world_->domain(id).servers) {
      index.add(world_->server(sid).ip);
    }
  }

  const auto result = collect(exported.records, index, isp);
  EXPECT_EQ(result.records_seen, exported.records.size());
  EXPECT_LT(result.internal_records, result.records_seen);  // peering filtered
  // All intended tracking flows (and nothing from the peering noise)
  // should match; clean-service flows should not.
  EXPECT_EQ(result.matched_records, exported.tracking_intended);
  EXPECT_GT(result.per_ip.size(), 10U);
  std::uint64_t total = 0;
  for (const auto& [ip, count] : result.per_ip) {
    EXPECT_TRUE(index.contains(ip));
    total += count;
  }
  EXPECT_EQ(total, result.matched_records);
  EXPECT_GT(result.https_records, result.matched_records / 2);
}

TEST_F(NetflowPipeline, FlowsCarryTheIspCountry) {
  util::Rng rng(4);
  const auto& isp = default_isps()[2];  // PL
  const auto exported = generate_snapshot(*world_, *resolver_, isp,
                                          default_snapshots()[0], config_, rng);
  TrackerIpIndex index;
  for (const auto id : world_->tracking_domain_ids()) {
    for (const auto sid : world_->domain(id).servers) {
      index.add(world_->server(sid).ip);
    }
  }
  const auto result = collect(exported.records, index, isp);
  const auto flows = result.flows("PL");
  std::uint64_t total = 0;
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.origin_country, "PL");
    total += flow.weight;
  }
  EXPECT_EQ(total, result.matched_records);
}

TEST_F(NetflowPipeline, MobileIspsResolveMoreLocally) {
  // Mobile subscribers sit behind the ISP resolver, broadband leans on
  // third-party DNS: generate both flavors for the same country and
  // compare in-country termination (the paper's §7.3 observation).
  util::Rng rng(5);
  IspProfile broadband = default_isps()[0];
  IspProfile mobile = broadband;
  mobile.access = AccessType::Mobile;
  mobile.third_party_resolver_share = 0.05;
  broadband.third_party_resolver_share = 0.60;  // exaggerate for a small sample

  const auto count_local = [&](const IspProfile& isp) {
    const auto exported = generate_snapshot(*world_, *resolver_, isp,
                                            default_snapshots()[1], config_, rng);
    std::uint64_t local = 0;
    std::uint64_t total = 0;
    for (const auto& record : exported.records) {
      if (!record.internal_interface) continue;
      const auto country = world_->true_country_of(record.dst);
      if (country.empty()) continue;
      ++total;
      if (country == isp.country) ++local;
    }
    return static_cast<double>(local) / static_cast<double>(total);
  };
  EXPECT_GT(count_local(mobile), count_local(broadband));
}

TEST_F(NetflowPipeline, SflowHostVisibilityFollowsTransport) {
  util::Rng rng(11);
  SflowConfig config;
  config.scale = 4e-6;
  const auto exported = generate_sflow_snapshot(*world_, *resolver_, default_isps()[0],
                                                default_snapshots()[1], config, rng);
  ASSERT_GT(exported.samples.size(), 1000U);
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> by_kind;  // kind -> (visible, total)
  for (const auto& sample : exported.samples) {
    const int kind = sample.dst_port == 80 ? 0 : (sample.protocol == 17 ? 2 : 1);
    auto& [visible, total] = by_kind[kind];
    ++total;
    visible += sample.visible_host.empty() ? 0 : 1;
    if (!sample.visible_host.empty()) {
      EXPECT_EQ(sample.visible_host, world_->domain(sample.true_domain).fqdn);
    }
  }
  const auto rate = [&](int kind) {
    const auto& [visible, total] = by_kind[kind];
    return total == 0 ? 0.0 : static_cast<double>(visible) / static_cast<double>(total);
  };
  EXPECT_GT(rate(0), 0.85);          // plaintext HTTP: Host nearly always seen
  EXPECT_GT(rate(0), rate(1));       // TLS hides most
  EXPECT_GT(rate(1), rate(2));       // QUIC hides almost everything
  EXPECT_LT(rate(2), 0.2);
}

TEST_F(NetflowPipeline, IpJoinOutRecallsHostJoin) {
  util::Rng rng(13);
  SflowConfig config;
  config.scale = 4e-6;
  const auto exported = generate_sflow_snapshot(*world_, *resolver_, default_isps()[0],
                                                default_snapshots()[1], config, rng);
  TrackerIpIndex trackers;
  std::set<std::string> registrable_set;
  for (const auto id : world_->tracking_domain_ids()) {
    registrable_set.insert(world_->domain(id).registrable);
    for (const auto sid : world_->domain(id).servers) {
      trackers.add(world_->server(sid).ip);
    }
  }
  const std::vector<std::string> registrables(registrable_set.begin(),
                                              registrable_set.end());
  const auto comparison = compare_matchers(*world_, exported, registrables, trackers);
  ASSERT_GT(comparison.tracking_samples, 1000U);
  EXPECT_GT(comparison.ip_recall(), 0.95);          // protocol-agnostic join
  EXPECT_LT(comparison.host_recall(), 0.70);        // capped by handshake visibility
  EXPECT_GT(comparison.host_recall(), 0.20);
  EXPECT_EQ(comparison.false_ip_matches, 0U);
  EXPECT_EQ(comparison.false_host_matches, 0U);
}

// ------------------------------------------------------ wire format
// Edge cases mirror fuzz/fuzz_netflow_record.cpp and its seed corpus
// (fuzz/corpus/netflow); keep in sync when new crashers are minimized.

RawRecord sample_record() {
  RawRecord record;
  record.timestamp_s = 3600;
  record.router = 2;
  record.interface = 1;
  record.internal_interface = true;
  record.protocol = 6;
  record.src = net::IpAddress::v4(0xC0000201);
  record.dst = net::IpAddress::v4(0xCB007101);
  record.src_port = 41234;
  record.dst_port = 443;
  record.packets = 12;
  record.bytes = 9000;
  record.tos = 0;
  return record;
}

TEST(Wire, RecordRoundTripV4) {
  const RawRecord record = sample_record();
  const auto bytes = encode_record(record);
  ASSERT_EQ(bytes.size(), kWireRecordSize);
  const auto parsed = parse_record(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->timestamp_s, record.timestamp_s);
  EXPECT_EQ(parsed->router, record.router);
  EXPECT_EQ(parsed->interface, record.interface);
  EXPECT_EQ(parsed->internal_interface, record.internal_interface);
  EXPECT_EQ(parsed->protocol, record.protocol);
  EXPECT_EQ(parsed->src, record.src);
  EXPECT_EQ(parsed->dst, record.dst);
  EXPECT_EQ(parsed->src_port, record.src_port);
  EXPECT_EQ(parsed->dst_port, record.dst_port);
  EXPECT_EQ(parsed->packets, record.packets);
  EXPECT_EQ(parsed->bytes, record.bytes);
  EXPECT_EQ(encode_record(*parsed), bytes);
}

TEST(Wire, GoldenBytesPinTheLayout) {
  // The exact serialized bytes of sample_record(), written out by hand
  // from the layout table in wire.cpp. This is the regression tripwire
  // for the on-disk store format: any codec change that alters these
  // bytes silently invalidates every existing store file and must bump
  // store::kFormatVersion instead. The encoding is big-endian by
  // byte-shift construction, so this test passes unchanged on little-
  // and big-endian hosts.
  const std::vector<std::uint8_t> golden = {
      0x00, 0x00, 0x0E, 0x10,                          // timestamp_s = 3600
      0x00, 0x02,                                      // router = 2
      0x00, 0x01,                                      // interface = 1
      0x01,                                            // flags: internal
      0x06,                                            // protocol = TCP
      0x04,                                            // src family = v4
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // src hi
      0x00, 0x00, 0x00, 0x00, 0xC0, 0x00, 0x02, 0x01,  // src lo = 192.0.2.1
      0x04,                                            // dst family = v4
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // dst hi
      0x00, 0x00, 0x00, 0x00, 0xCB, 0x00, 0x71, 0x01,  // dst lo = 203.0.113.1
      0xA1, 0x12,                                      // src_port = 41234
      0x01, 0xBB,                                      // dst_port = 443
      0x00, 0x00, 0x00, 0x0C,                          // packets = 12
      0x00, 0x00, 0x23, 0x28,                          // bytes = 9000
      0x00,                                            // tos
  };
  ASSERT_EQ(golden.size(), kWireRecordSize);
  EXPECT_EQ(encode_record(sample_record()), golden);
  // encode_record_into (the store's allocation-free path) must emit the
  // identical bytes.
  std::vector<std::uint8_t> direct(kWireRecordSize);
  encode_record_into(sample_record(), direct.data());
  EXPECT_EQ(direct, golden);
  const auto parsed = parse_record(golden);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sample_record());
}

TEST(Wire, RecordRoundTripV6) {
  RawRecord record = sample_record();
  record.src = net::IpAddress::v6(0x20010DB800000000ULL, 1);
  record.dst = net::IpAddress::v6(0x20010DB800000000ULL, 2);
  record.protocol = 17;
  const auto bytes = encode_record(record);
  const auto parsed = parse_record(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, record.src);
  EXPECT_EQ(parsed->dst, record.dst);
}

TEST(Wire, EmptyInputRejected) {
  EXPECT_FALSE(parse_record({}).has_value());
  EXPECT_FALSE(parse_packet({}).has_value());
}

TEST(Wire, TruncatedRecordRejected) {
  const auto bytes = encode_record(sample_record());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{20},
                                kWireRecordSize - 1}) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(parse_record(prefix).has_value()) << cut;
  }
  // One trailing byte is equally malformed.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(parse_record(padded).has_value());
}

TEST(Wire, BadAddressFamilyRejected) {
  auto bytes = encode_record(sample_record());
  bytes[10] = 9;  // src family tag
  EXPECT_FALSE(parse_record(bytes).has_value());
}

TEST(Wire, DirtyHighBitsInV4Rejected) {
  auto bytes = encode_record(sample_record());
  bytes[11] = 0xFF;  // hi bits of a v4 source must be zero
  EXPECT_FALSE(parse_record(bytes).has_value());
}

TEST(Wire, ReservedFlagBitsRejected) {
  auto bytes = encode_record(sample_record());
  bytes[8] |= 0x80;
  EXPECT_FALSE(parse_record(bytes).has_value());
}

TEST(Wire, PacketRoundTrip) {
  std::vector<RawRecord> records{sample_record(), sample_record()};
  records[1].dst_port = 80;
  const auto bytes = encode_packet(records);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2U);
  EXPECT_EQ((*parsed)[1].dst_port, 80);
  EXPECT_EQ(encode_packet(*parsed), bytes);
}

TEST(Wire, EmptyPacketIsValid) {
  const auto bytes = encode_packet({});
  ASSERT_EQ(bytes.size(), kWireHeaderSize);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(Wire, OverstatedCountRejected) {
  // Header claims 5 records but carries 1: the truncation bug class.
  auto bytes = encode_packet(std::vector<RawRecord>{sample_record()});
  bytes[3] = 5;
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Wire, WrongVersionRejected) {
  auto bytes = encode_packet(std::vector<RawRecord>{sample_record()});
  bytes[1] = 5;
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Wire, TrailingBytesRejected) {
  auto bytes = encode_packet(std::vector<RawRecord>{sample_record()});
  bytes.push_back(0);
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

}  // namespace
}  // namespace cbwt::netflow
