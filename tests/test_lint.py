#!/usr/bin/env python3
"""Unit tests for tools/cbwt_lint.py (run under ctest as `lint_unittests`).

The fixture files under tests/lint_fixtures/ are exercised separately by
`cbwt_lint.py --self-test`; this suite covers the engine internals:
escape parsing, the metric-name grammar, layering module resolution,
DAG cycle detection, and the fallback TOML parser.
"""

import os
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import cbwt_lint  # noqa: E402


def load_config():
    return cbwt_lint.Config(
        cbwt_lint.load_toml(os.path.join(REPO_ROOT, "tools", "lint_rules.toml"))
    )


CONFIG = load_config()


def rules_for(path, text):
    return {f.rule for f in cbwt_lint.lint_text(CONFIG, path, text)}


class EscapeParsing(unittest.TestCase):
    def test_single_rule(self):
        line = "x();  // cbwt-lint: allow(steady-clock)"
        self.assertEqual(cbwt_lint.escaped_rules(line), {"steady-clock"})

    def test_multiple_rules_and_spacing(self):
        line = "x()  # cbwt-lint: allow( wall-clock , raw-thread )"
        self.assertEqual(
            cbwt_lint.escaped_rules(line), {"wall-clock", "raw-thread"}
        )

    def test_no_escape(self):
        self.assertEqual(cbwt_lint.escaped_rules("plain line"), set())

    def test_escape_only_covers_its_line(self):
        text = (
            "// cbwt-lint: allow(steady-clock)\n"
            "auto t = std::chrono::steady_clock::now();\n"
        )
        self.assertIn("steady-clock", rules_for("src/dns/x.cpp", text))

    def test_escape_suppresses_named_rule_only(self):
        line = (
            "auto t = std::chrono::system_clock::now();"
            "  // cbwt-lint: allow(steady-clock)\n"
        )
        self.assertEqual(rules_for("src/dns/x.cpp", line), {"wall-clock"})


class MetricNames(unittest.TestCase):
    def check(self, snippet):
        return rules_for("src/classify/m.cpp", snippet)

    def test_good_counter(self):
        self.assertEqual(
            self.check('counter("cbwt_classify_hits_total")'), set()
        )

    def test_counter_needs_total(self):
        self.assertEqual(
            self.check('counter("cbwt_classify_hits")'), {"metric-naming"}
        )

    def test_histogram_needs_seconds(self):
        self.assertEqual(
            self.check('histogram("cbwt_classify_wait_ms", b)'),
            {"metric-naming"},
        )

    def test_gauge_rejects_total(self):
        self.assertEqual(
            self.check('gauge("cbwt_classify_queued_total")'), {"metric-naming"}
        )

    def test_unknown_module(self):
        self.assertEqual(
            self.check('counter("cbwt_mystery_hits_total")'), {"metric-naming"}
        )

    def test_report_json_is_a_module(self):
        self.assertEqual(
            self.check('counter("cbwt_report_json_rows_total")'), set()
        )

    def test_doubled_underscore(self):
        self.assertEqual(
            self.check('counter("cbwt_classify__hits_total")'), {"metric-naming"}
        )

    def test_prefix_fragment_charset_only(self):
        self.assertEqual(
            self.check('counter("cbwt_classify_" + site + "_total")'), set()
        )
        self.assertEqual(
            self.check('counter("cbwt_Classify_" + site)'), {"metric-naming"}
        )

    def test_bare_literal_outside_call(self):
        self.assertEqual(
            self.check('names = {"cbwt_classify_hits_total"};'), set()
        )
        self.assertEqual(
            self.check('names = {"cbwt_BadName"};'), {"metric-naming"}
        )

    def test_out_of_scope_path_ignored(self):
        findings = rules_for("docs/notes.cpp", 'counter("cbwt_BadName")')
        self.assertEqual(findings, set())


class Layering(unittest.TestCase):
    def test_module_of_uses_overrides(self):
        self.assertEqual(cbwt_lint.module_of(CONFIG, "report/json.h"), "report_json")
        self.assertEqual(cbwt_lint.module_of(CONFIG, "report/writer.h"), "report")
        self.assertEqual(cbwt_lint.module_of(CONFIG, "util/prng.h"), "util")

    def test_allowed_edge(self):
        text = '#include "filterlist/engine.h"\n'
        self.assertEqual(rules_for("src/classify/x.cpp", text), set())

    def test_forbidden_edge(self):
        text = '#include "classify/match_cache.h"\n'
        self.assertEqual(rules_for("src/filterlist/x.cpp", text), {"layering"})

    def test_system_includes_ignored(self):
        text = "#include <classify/match_cache.h>\n"
        self.assertEqual(rules_for("src/filterlist/x.cpp", text), set())

    def test_intra_module_include_ignored(self):
        text = '#include "filterlist/tokens.h"\n'
        self.assertEqual(rules_for("src/filterlist/x.cpp", text), set())

    def test_obs_may_use_report_json_but_not_report(self):
        ok = '#include "report/json.h"\n'
        bad = '#include "report/writer.h"\n'
        self.assertEqual(rules_for("src/obs/x.cpp", ok), set())
        self.assertEqual(rules_for("src/obs/x.cpp", bad), {"layering"})

    def test_files_outside_src_skip_layering(self):
        text = '#include "classify/match_cache.h"\n'
        self.assertEqual(rules_for("tests/test_x.cpp", text), set())


class DagCheck(unittest.TestCase):
    def make_config(self, deps):
        config = load_config()
        config.deps = deps
        return config

    def test_tree_dag_is_acyclic(self):
        self.assertEqual(list(cbwt_lint.check_dag(CONFIG)), [])

    def test_cycle_detected(self):
        config = self.make_config({"a": ["b"], "b": ["c"], "c": ["a"]})
        findings = list(cbwt_lint.check_dag(config))
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "layering-config")
        self.assertIn("a -> b -> c -> a", findings[0].message)

    def test_self_loop_detected(self):
        config = self.make_config({"a": ["a"]})
        findings = list(cbwt_lint.check_dag(config))
        self.assertEqual(len(findings), 1)


class MiniTomlFallback(unittest.TestCase):
    """The <3.11 fallback parser must agree with tomllib on our ruleset."""

    def test_parses_ruleset_identically(self):
        path = os.path.join(REPO_ROOT, "tools", "lint_rules.toml")
        with open(path, encoding="utf-8") as f:
            fallback = cbwt_lint._mini_toml_parse(f.read())
        import tomllib

        with open(path, "rb") as f:
            reference = tomllib.load(f)
        self.assertEqual(fallback, reference)


class TreeIsClean(unittest.TestCase):
    def test_repo_tree_has_no_findings(self):
        findings = cbwt_lint.lint_tree(REPO_ROOT, CONFIG)
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
