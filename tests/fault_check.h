// Property-style harness for the fault-injection layer: chaos scenarios
// are (study seed, thread count, fault plan) triples, and the helpers
// here run them end to end and hand the observable outcome to invariant
// predicates. The three invariants the suite leans on:
//
//   * determinism — a fixed (seed, plan) yields the same outcome at any
//     thread count, fault counters included;
//   * zero-cost default — a rate-0 plan is indistinguishable from no
//     plan, down to the registry's metric name set;
//   * monotone degradation — raising a loss rate never locates more IPs
//     (nested fault sets, see src/fault/fault.h).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/study.h"
#include "fault/fault.h"
#include "geoloc/active.h"
#include "netflow/profile.h"
#include "obs/metrics.h"

namespace cbwt::fault_check {

/// Everything the invariants compare about one chaos study run. All
/// fields are logical results — no wall-clock quantities — so equality
/// is meaningful across thread counts and repeated runs.
struct StudyOutcome {
  std::size_t pdns_ips = 0;
  std::vector<net::IpAddress> completed_tracker_ips;
  std::vector<std::string> geo_verdicts;  ///< sampled active verdicts, in IP order
  std::size_t located = 0;                ///< non-empty verdicts in the sample
  std::uint64_t exported_records = 0;
  std::uint64_t records_seen = 0;
  std::uint64_t internal_records = 0;
  std::uint64_t matched_records = 0;
  std::uint64_t dropped_records = 0;
  std::unordered_map<net::IpAddress, std::uint64_t> per_ip;
  /// Name-sorted snapshot of every cbwt_fault_* counter (empty when the
  /// plan is disabled — the zero-cost-default contract).
  std::vector<std::pair<std::string, std::uint64_t>> fault_counters;
  std::string run_report;
};

/// The scaled-down chaos pipeline config (mirrors the determinism
/// sweep's sizing in test_runtime.cpp; see that file for the rationale).
inline core::StudyConfig chaos_config(std::uint64_t seed, unsigned threads,
                                      const fault::FaultPlan& plan) {
  core::StudyConfig config;
  config.world.seed = seed;
  config.world.scale = 0.01;
  config.netflow.scale = 2e-5;
  config.threads = threads;
  config.fault_plan = plan;
  return config;
}

/// Runs the pipeline end to end — pDNS completion, a sample of active
/// geolocation verdicts, one full ISP NetFlow snapshot — and snapshots
/// the outcome. Each call builds its own Study and Registry.
inline StudyOutcome run_chaos_study(std::uint64_t seed, unsigned threads,
                                    const fault::FaultPlan& plan,
                                    std::size_t geo_sample = 128) {
  obs::Registry registry;
  auto config = chaos_config(seed, threads, plan);
  config.registry = &registry;
  core::Study study(config);

  StudyOutcome out;
  out.pdns_ips = study.pdns_store().all_ips().size();
  out.completed_tracker_ips = study.completed_tracker_ips();
  const auto& ips = out.completed_tracker_ips;
  const std::size_t sample = std::min(geo_sample, ips.size());
  out.geo_verdicts.reserve(sample);
  for (std::size_t i = 0; i < sample; ++i) {
    out.geo_verdicts.push_back(study.geo().locate(ips[i], geoloc::Tool::ActiveIpmap));
    if (!out.geo_verdicts.back().empty()) ++out.located;
  }

  const auto isp = netflow::default_isps()[0];
  const auto snapshot = netflow::default_snapshots()[0];
  const auto run = study.run_isp_snapshot(isp, snapshot);
  out.exported_records = run.exported_records;
  out.records_seen = run.collection.records_seen;
  out.internal_records = run.collection.internal_records;
  out.matched_records = run.collection.matched_records;
  out.dropped_records = run.collection.dropped_records;
  out.per_ip = run.collection.per_ip;

  for (const auto& [name, value] : registry.counters()) {
    if (name.starts_with("cbwt_fault_")) out.fault_counters.emplace_back(name, value);
  }
  out.run_report = study.run_report();
  return out;
}

/// Asserts two outcomes are identical — the determinism invariant. The
/// run_report strings are deliberately excluded (they embed the thread
/// count and wall-clock span timings).
inline void expect_same_outcome(const StudyOutcome& got, const StudyOutcome& want,
                                const char* context) {
  EXPECT_EQ(got.pdns_ips, want.pdns_ips) << context;
  EXPECT_EQ(got.completed_tracker_ips, want.completed_tracker_ips) << context;
  EXPECT_EQ(got.geo_verdicts, want.geo_verdicts) << context;
  EXPECT_EQ(got.located, want.located) << context;
  EXPECT_EQ(got.exported_records, want.exported_records) << context;
  EXPECT_EQ(got.records_seen, want.records_seen) << context;
  EXPECT_EQ(got.internal_records, want.internal_records) << context;
  EXPECT_EQ(got.matched_records, want.matched_records) << context;
  EXPECT_EQ(got.dropped_records, want.dropped_records) << context;
  EXPECT_EQ(got.per_ip, want.per_ip) << context;
  EXPECT_EQ(got.fault_counters, want.fault_counters) << context;
}

/// A loss-only plan (timeout + error in equal shares, no slow/stale):
/// the shape whose fault sets nest exactly, used by the monotonicity
/// properties.
inline fault::FaultPlan loss_plan(std::uint64_t seed, double loss_rate) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.default_rates.timeout = loss_rate / 2.0;
  plan.default_rates.error = loss_rate / 2.0;
  return plan;
}

/// Located-IP count over the first `n_ips` servers of `world` under a
/// probe-loss plan, measured with the bare ActiveGeolocator (no Study)
/// so rate sweeps stay cheap. Each IP draws from its own stateless rng
/// stream, so the measured samples are identical across rates and only
/// the loss decisions differ.
inline std::size_t located_count(const world::World& world, const geoloc::ProbeMesh& mesh,
                                 const fault::FaultPlan& plan, std::size_t n_ips,
                                 std::uint64_t measurement_seed) {
  const geoloc::ActiveGeolocator locator(world, mesh);
  const fault::FaultPlan* live = plan.enabled() ? &plan : nullptr;
  std::size_t located = 0;
  std::size_t checked = 0;
  for (const auto& server : world.servers()) {
    if (checked++ >= n_ips) break;
    util::Rng rng(util::mix64(measurement_seed ^ server.ip.hash()));
    if (!locator.locate(server.ip, rng, live).country.empty()) ++located;
  }
  return located;
}

/// Asserts `values` (indexed by ascending fault rate) never increase —
/// the monotone-degradation invariant.
template <typename T>
void expect_monotone_non_increasing(std::span<const T> values,
                                    std::span<const double> rates) {
  ASSERT_EQ(values.size(), rates.size());
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i], values[i - 1])
        << "degradation not monotone between rate " << rates[i - 1] << " and "
        << rates[i];
  }
}

/// Sweeps `fn(seed, rate)` over the scenario grid — the harness shape
/// for properties that must hold pointwise on every (seed, rate) pair.
template <typename Fn>
void for_each_scenario(std::span<const std::uint64_t> seeds,
                       std::span<const double> rates, Fn&& fn) {
  for (const auto seed : seeds) {
    for (const auto rate : rates) fn(seed, rate);
  }
}

}  // namespace cbwt::fault_check
