// End-to-end integration tests over the Study facade: the paper's
// headline findings must hold in shape on a small world.
#include "core/study.h"

#include <gtest/gtest.h>

#include "analysis/jurisdiction.h"
#include "json_check.h"
#include "netflow/profile.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace cbwt::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig config;
    config.world.seed = 20180901;
    config.world.scale = 0.02;
    study_ = new Study(config);
  }
  static void TearDownTestSuite() { delete study_; }
  static Study* study_;
};

Study* StudyTest::study_ = nullptr;

TEST_F(StudyTest, DatasetHasTableOneShape) {
  const auto& dataset = study_->dataset();
  EXPECT_EQ(study_->world().users().size(), 350U);
  EXPECT_GT(dataset.first_party_visits, 500U);
  EXPECT_GT(dataset.requests.size(), 50000U);
  // Most third-party requests are ad/tracking related (Fig. 2 takeaway).
  std::size_t tracking = 0;
  for (const auto& outcome : study_->outcomes()) {
    tracking += classify::is_tracking(outcome.method) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(tracking) / dataset.requests.size(), 0.5);
}

TEST_F(StudyTest, PdnsCompletionAddsIps) {
  const auto observed = study_->observed_tracker_ips().size();
  const auto completed = study_->completed_tracker_ips().size();
  EXPECT_GT(observed, 500U);
  EXPECT_GE(completed, observed);
  // Small single-digit-percentage gain, like the paper's +2.78%.
  const double gain = static_cast<double>(completed - observed) /
                      static_cast<double>(observed);
  EXPECT_LT(gain, 0.15);
}

TEST_F(StudyTest, HeadlineConfinementUnderActiveGeolocation) {
  const auto eu_flows = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  const auto confinement = study_->analyzer().confinement(eu_flows);
  // Paper Fig. 7(b): ~85% of EU28 tracking flows stay inside EU28.
  EXPECT_GT(confinement.in_eu28, 70.0);
  EXPECT_LT(confinement.in_eu28, 95.0);
  EXPECT_GT(confinement.in_continent, confinement.in_eu28);
  // National confinement is much lower (Table 5 Default: 27.6%).
  EXPECT_LT(confinement.in_country, 40.0);
}

TEST_F(StudyTest, MaxMindFlipsTheConclusion) {
  // The paper's Fig. 7(a)/(b) contrast: under the commercial database the
  // majority appears to leak to North America; under active geolocation
  // it stays in Europe.
  const auto eu_flows = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  const auto active = study_->analyzer(geoloc::Tool::ActiveIpmap)
                          .destination_regions(eu_flows);
  const auto maxmind = study_->analyzer(geoloc::Tool::MaxMindLike)
                           .destination_regions(eu_flows);
  EXPECT_GT(active.share.at(geo::Region::EU28), 0.70);
  EXPECT_LT(maxmind.share.at(geo::Region::EU28), 0.50);
  EXPECT_GT(maxmind.share.at(geo::Region::NorthAmerica),
            active.share.at(geo::Region::NorthAmerica) + 0.25);
}

TEST_F(StudyTest, SouthAmericaLeaksNorth) {
  const auto sa_flows =
      analysis::flows_from_region(study_->flows(), geo::Region::SouthAmerica);
  ASSERT_FALSE(sa_flows.empty());
  const auto breakdown = study_->analyzer().destination_regions(sa_flows);
  // Paper Fig. 6: ~90% of South American tracking flows end in N. America.
  const auto na = breakdown.share.find(geo::Region::NorthAmerica);
  ASSERT_NE(na, breakdown.share.end());
  EXPECT_GT(na->second, 0.5);
  const auto sa = breakdown.share.find(geo::Region::SouthAmerica);
  const double confined = sa == breakdown.share.end() ? 0.0 : sa->second;
  EXPECT_LT(confined, 0.3);
}

TEST_F(StudyTest, BigCountriesConfineMoreThanSmallOnes) {
  const auto eu_flows = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  const auto by_origin = study_->analyzer().per_origin_confinement(eu_flows);
  const auto pct = [&](const char* country) {
    const auto it = by_origin.find(country);
    return it == by_origin.end() ? 0.0 : it->second.in_country;
  };
  EXPECT_GT(pct("DE"), pct("GR"));
  EXPECT_GT(pct("GB"), pct("CY"));
  EXPECT_GT(pct("ES"), pct("CY"));
  EXPECT_LT(pct("CY"), 5.0);
}

TEST_F(StudyTest, ConfinementCorrelatesWithInfraDensity) {
  // §5's observation: national confinement tracks datacenter density.
  const auto eu_flows = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  const auto by_origin = study_->analyzer().per_origin_confinement(eu_flows);
  std::vector<double> densities;
  std::vector<double> confinements;
  for (const auto& [country, confinement] : by_origin) {
    if (confinement.total < 200) continue;  // skip tiny samples
    densities.push_back(geo::find_country(country)->infra_density);
    confinements.push_back(confinement.in_country);
  }
  ASSERT_GE(densities.size(), 6U);
  EXPECT_GT(util::spearman(densities, confinements), 0.5);
}

TEST_F(StudyTest, IspRunMatchesExtensionView) {
  const auto& isp = netflow::default_isps()[0];  // DE-Broadband
  const auto& snapshot = netflow::default_snapshots()[1];
  const auto run = study_->run_isp_snapshot(isp, snapshot);
  ASSERT_GT(run.collection.matched_records, 1000U);
  auto analyzer = study_->analyzer();
  const auto breakdown = analyzer.destination_regions(run.flows);
  // Table 8: EU28 confinement 76-93% across ISPs and dates.
  EXPECT_GT(breakdown.share.at(geo::Region::EU28), 0.70);
  // Mostly HTTPS (>83% in the paper).
  EXPECT_GT(static_cast<double>(run.collection.https_records) /
                run.collection.matched_records,
            0.75);
}

TEST_F(StudyTest, MobileIspConfinesMoreThanBroadband) {
  const auto& broadband = netflow::default_isps()[0];
  const auto& mobile = netflow::default_isps()[1];
  const auto& snapshot = netflow::default_snapshots()[0];
  const auto run_b = study_->run_isp_snapshot(broadband, snapshot);
  const auto run_m = study_->run_isp_snapshot(mobile, snapshot);
  auto analyzer = study_->analyzer(geoloc::Tool::GroundTruth);
  const auto eu_b = analyzer.destination_regions(run_b.flows).share.at(geo::Region::EU28);
  const auto eu_m = analyzer.destination_regions(run_m.flows).share.at(geo::Region::EU28);
  EXPECT_GT(eu_m, eu_b - 0.02);  // mobile >= broadband (within noise)
}

TEST_F(StudyTest, JurisdictionViewsAreConsistent) {
  const auto eu_flows = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  const auto gdpr = analysis::jurisdiction_confinement(
      study_->geo(), geoloc::Tool::ActiveIpmap, analysis::gdpr_jurisdiction(), eu_flows);
  const auto eea = analysis::jurisdiction_confinement(
      study_->geo(), geoloc::Tool::ActiveIpmap, analysis::eea_plus_jurisdiction(),
      eu_flows);
  const auto germany = analysis::jurisdiction_confinement(
      study_->geo(), geoloc::Tool::ActiveIpmap, analysis::national_jurisdiction("DE"),
      eu_flows);
  // All EU28-origin flows originate inside the GDPR scope...
  EXPECT_EQ(gdpr.from_inside, gdpr.total);
  // ...and most terminate there; widening to EEA+ can only add coverage;
  // a single-country scope covers far less.
  EXPECT_GT(gdpr.inside_pct(), 70.0);
  EXPECT_GE(eea.inside, gdpr.inside);
  EXPECT_LT(germany.inside_pct(), gdpr.inside_pct());
  // GDPR coverage here equals the in-eu28 confinement metric.
  const auto confinement = study_->analyzer().confinement(eu_flows);
  EXPECT_NEAR(gdpr.covered_pct(), confinement.in_eu28, 0.5);
}

TEST_F(StudyTest, LegalEntityViewIsMoreUsThanPhysicalView) {
  const auto eu_flows = analysis::flows_from_region(study_->flows(), geo::Region::EU28);
  const auto legal = study_->analyzer(geoloc::Tool::LegalEntity)
                         .destination_regions(eu_flows);
  const auto physical = study_->analyzer(geoloc::Tool::GroundTruth)
                            .destination_regions(eu_flows);
  // Judged by legal home, even more tracking "goes to the US" than the
  // commercial DBs suggest; physically most of it stays in Europe.
  EXPECT_GT(legal.share.at(geo::Region::NorthAmerica),
            physical.share.at(geo::Region::NorthAmerica) + 0.3);
}

TEST_F(StudyTest, StudyIsDeterministic) {
  StudyConfig config;
  config.world.seed = 42;
  config.world.scale = 0.005;
  Study a(config);
  Study b(config);
  // Request stages out of order on purpose: results must not depend on
  // evaluation order.
  (void)b.geo();
  const auto& flows_a = a.flows();
  const auto& flows_b = b.flows();
  ASSERT_EQ(flows_a.size(), flows_b.size());
  for (std::size_t i = 0; i < flows_a.size(); i += 97) {
    EXPECT_EQ(flows_a[i].destination, flows_b[i].destination);
    EXPECT_EQ(flows_a[i].origin_country, flows_b[i].origin_country);
  }
  EXPECT_EQ(a.observed_tracker_ips(), b.observed_tracker_ips());
}

TEST(StudyRunReport, RecordsEveryStageAndStaysValidJson) {
  obs::Registry registry;
  StudyConfig config;
  config.world.seed = 20180901;
  config.world.scale = 0.01;
  config.netflow.scale = 2e-5;
  config.threads = 2;  // exercise the pool/channel metrics too
  config.registry = &registry;
  Study study(config);

  // Drive every instrumented stage once.
  (void)study.pdns_store();
  (void)study.outcomes();
  (void)study.completed_tracker_ips();
  const auto& flows = study.flows();
  (void)study.analyzer().confinement(flows);
  (void)study.run_isp_snapshot(netflow::default_isps()[0],
                               netflow::default_snapshots()[0]);

  const std::string report = study.run_report();
  EXPECT_TRUE(testing::JsonChecker::valid(report)) << report;
  for (const char* needle :
       {"\"name\":\"cbwt_core_run_report\"", "\"seed\"", "\"threads\":2", "\"obs\"",
        // One span per pipeline stage.
        "\"study/dataset\"", "\"study/pdns_replication\"", "\"study/classify\"",
        "\"classify/stage1_abp\"", "\"classify/stage2_referrer\"",
        "\"classify/stage3_keyword\"", "\"study/geoloc_panel\"",
        "\"study/border_analysis\"", "\"study/isp_snapshot\"",
        "\"netflow/generate\"", "\"netflow/collect\"",
        // Module counters from every instrumented subsystem.
        "cbwt_classify_requests_total", "cbwt_classify_rule_hits_total",
        "cbwt_geoloc_cache_misses_total", "cbwt_geoloc_measure_seconds",
        "cbwt_netflow_records_generated_total", "cbwt_netflow_matched_total",
        "cbwt_runtime_channel_pushed_total", "cbwt_runtime_pool_size"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << "missing " << needle;
  }

  // Child spans carry their parents.
  EXPECT_NE(report.find("\"name\":\"classify/stage1_abp\",\"parent\":\"study/classify\""),
            std::string::npos);

  // Attaching the registry must not change the classification: the
  // counter breakdown equals an uninstrumented recount.
  std::uint64_t rule_hits = 0;
  for (const auto& outcome : study.outcomes()) {
    rule_hits += outcome.method == classify::Method::AbpList ? 1 : 0;
  }
  EXPECT_EQ(registry.counter_value("cbwt_classify_rule_hits_total"), rule_hits);
  EXPECT_EQ(registry.counter_value("cbwt_classify_requests_total"),
            study.dataset().requests.size());
}

TEST(StudyRunReport, NoRegistryStillProducesValidEmptyReport) {
  StudyConfig config;
  config.world.seed = 7;
  config.world.scale = 0.005;
  Study study(config);
  (void)study.outcomes();
  const std::string report = study.run_report();
  EXPECT_TRUE(testing::JsonChecker::valid(report)) << report;
  EXPECT_NE(report.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(report.find("\"spans\":[]"), std::string::npos);
}

}  // namespace
}  // namespace cbwt::core
