# lint-fixture-path: tools/check_something.sh
# lint-fixture-expect: metric-naming
#
# Metric-name literals in scripts get the same charset check as C++.
grep -q "cbwt_Fault_injected_Total" report.json
