// lint-fixture-path: src/obs/report_hook.cpp
// lint-fixture-expect: layering
//
// obs may depend on report_json (the dependency-free JSON writer) but
// never on study/core code: instrumentation must not know about the
// experiment driving it.
#include "obs/metrics.h"

#include "core/study.h"

namespace cbwt::obs {}
