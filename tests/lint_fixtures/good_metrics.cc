// lint-fixture-path: src/classify/pipeline_metrics_ok.cpp
// lint-fixture-expect: none
//
// Conforming metric names, including a dynamically-composed one built
// from a well-formed cbwt_<module>_ prefix fragment.
#include <string>

#include "obs/metrics.h"

namespace cbwt::classify {

void resolve(obs::Registry& registry, const std::string& site) {
  (void)registry.counter("cbwt_classify_cache_hits_total");
  (void)registry.gauge("cbwt_classify_inflight");
  (void)registry.histogram("cbwt_classify_match_seconds", {});
  (void)registry.counter("cbwt_classify_" + site + "_skips_total");
}

}  // namespace cbwt::classify
