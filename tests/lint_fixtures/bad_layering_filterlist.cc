// lint-fixture-path: src/filterlist/engine.cpp
// lint-fixture-expect: layering
//
// filterlist sits below classify in the DAG; an upward include is a
// layer inversion the gate must reject.
#include "filterlist/engine.h"

#include "classify/match_cache.h"
#include "util/contract.h"

namespace cbwt::filterlist {}
