// lint-fixture-path: src/obs/http_inspector.cpp
// lint-fixture-expect: none
//
// The one sanctioned home of the socket API (and, as obs_http, a legal
// dependent of obs): the inspector file passes without escapes.
#include <sys/socket.h>

#include "obs/http_inspector.h"
#include "obs/metrics.h"

namespace cbwt::obs {

int inspector_socket() { return socket(AF_INET, SOCK_STREAM, 0); }

}  // namespace cbwt::obs
