# lint-fixture-path: tools/check_something.py
# lint-fixture-expect: none
#
# Conforming metric literals in tooling, plus a python-comment escape.
EXPECTED = [
    "cbwt_fault_upstream_injected_total",
    "cbwt_runtime_pool_tasks_submitted",
]
PREFIX = "cbwt_geoloc_"
