// lint-fixture-path: src/classify/pipeline_metrics.cpp
// lint-fixture-expect: metric-naming
//
// Every clause of the naming convention: counters end _total,
// histograms end _seconds, gauges never claim _total, names are
// lowercase snake_case with a real module token.
#include "obs/metrics.h"

namespace cbwt::classify {

void resolve(obs::Registry& registry) {
  (void)registry.counter("cbwt_classify_cache_hits");       // missing _total
  (void)registry.gauge("cbwt_classify_inflight_total");     // gauge claiming _total
  (void)registry.histogram("cbwt_classify_latency_ms", {}); // durations are seconds
  (void)registry.counter("cbwt_CamelCase_hits_total");      // not snake_case
  (void)registry.counter("cbwt_nosuchmodule_hits_total");   // unknown module
}

}  // namespace cbwt::classify
