// lint-fixture-path: src/netflow/exporter_uplink.cpp
// lint-fixture-expect: socket-api
//
// The socket API lives in obs::HttpInspector and nowhere else: a
// pipeline stage opening network connections would make results depend
// on the network, not the seed.
#include <sys/socket.h>

namespace cbwt::netflow {

int open_uplink() { return socket(AF_INET, SOCK_STREAM, 0); }

}  // namespace cbwt::netflow
