// lint-fixture-path: tests/test_shuffle.cpp
// lint-fixture-expect: unseeded-rng
//
// random_device / bare mt19937 give run-dependent streams; all
// randomness must come from util::Rng with an explicit seed, in tests
// included.
#include <random>

int roll() {
  std::random_device device;
  std::mt19937 rng(device());
  return static_cast<int>(rng());
}
