// lint-fixture-path: src/runtime/channel_extra.h
// lint-fixture-expect: none
//
// The per-line escape hatch: an otherwise-banned construct passes when
// the offending line carries cbwt-lint: allow(<rule>) with a reason.
#include <chrono>

namespace cbwt::runtime {

// Stall timing is observational-only; it never feeds results.
inline auto stall_clock() noexcept {
  return std::chrono::steady_clock::now();  // cbwt-lint: allow(steady-clock)
}

}  // namespace cbwt::runtime
