// lint-fixture-path: src/classify/pipeline.cpp
// lint-fixture-expect: steady-clock
//
// steady_clock is observational-only and confined to obs/ (plus the
// geoloc cache timing); classify code must route timing through spans.
#include <chrono>

namespace cbwt::classify {

long elapsed() {
  const auto begin = std::chrono::steady_clock::now();
  return begin.time_since_epoch().count();
}

}  // namespace cbwt::classify
