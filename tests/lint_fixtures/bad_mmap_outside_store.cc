// lint-fixture-path: src/netflow/collector.cpp
// lint-fixture-expect: mmap-syscall
//
// mmap-family syscalls are confined to store::MappedFile: one mapping
// owner means one place where growth, flushing, and resident-set policy
// live. A module mapping files itself would bypass all three.
#include <sys/mman.h>

namespace cbwt::netflow {

void* map_snapshot(int fd, unsigned long bytes) {
  return mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
}

}  // namespace cbwt::netflow
