// lint-fixture-path: src/telemetry/uplink.cpp
// lint-fixture-expect: layering
//
// A new src/ module must be declared in [layering.deps] with an
// explicit dependency list before the gate accepts it.
#include "util/contract.h"

namespace cbwt::telemetry {}
