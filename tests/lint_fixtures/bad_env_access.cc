// lint-fixture-path: src/world/config.cpp
// lint-fixture-expect: env-access
//
// Environment reads are confined to fault::FaultPlan::from_env;
// ambient configuration elsewhere makes runs irreproducible.
#include <cstdlib>

namespace cbwt::world {

const char* region() { return std::getenv("CBWT_REGION"); }

}  // namespace cbwt::world
