// lint-fixture-path: src/classify/uses_filterlist.cpp
// lint-fixture-expect: none
//
// Downward includes along declared DAG edges are fine: classify is
// allowed to depend on filterlist, obs, runtime, and util.
#include "classify/match_cache.h"

#include "filterlist/engine.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"
#include "util/contract.h"

namespace cbwt::classify {}
