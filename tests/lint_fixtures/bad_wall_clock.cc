// lint-fixture-path: src/dns/resolver.cpp
// lint-fixture-expect: wall-clock
//
// Wall-clock reads inside pipeline code break the bit-identical
// determinism contract: the lint must flag system_clock anywhere in
// src/ outside src/obs/.
#include <chrono>

namespace cbwt::dns {

long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace cbwt::dns
