// lint-fixture-path: src/analysis/graph.cpp
// lint-fixture-expect: raw-thread
//
// Spawning std::thread outside runtime::ThreadPool forks the
// threading model: worker count must stay the one knob.
#include <thread>
#include <vector>

namespace cbwt::analysis {

void fan_out() {
  std::vector<std::thread> workers;
  workers.emplace_back([] {});
  for (auto& w : workers) w.join();
}

}  // namespace cbwt::analysis
