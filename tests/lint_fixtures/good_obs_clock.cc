// lint-fixture-path: src/obs/trace_extra.cpp
// lint-fixture-expect: none
//
// obs owns timing: steady_clock (and the clock family generally) is
// legal here without any escape comment.
#include <chrono>

#include "obs/metrics.h"

namespace cbwt::obs {

long tick() { return std::chrono::steady_clock::now().time_since_epoch().count(); }

}  // namespace cbwt::obs
