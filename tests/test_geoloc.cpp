#include "geoloc/active.h"
#include "geoloc/commercial.h"
#include "geoloc/service.h"

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace cbwt::geoloc {
namespace {

class GeolocTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 9001;
    config.scale = 0.01;
    config.publishers = 300;
    world_ = new world::World(world::build_world(config));
    util::Rng mesh_rng(1);
    mesh_ = new ProbeMesh(MeshConfig{}, mesh_rng);
    util::Rng db_rng(2);
    auto maxmind = build_maxmind_like(*world_, CommercialDbOptions{}, db_rng);
    auto ipapi = build_ipapi_like(*world_, maxmind, 0.93, db_rng);
    service_ = new GeoService(*world_, std::move(maxmind), std::move(ipapi), *mesh_,
                              ActiveGeolocatorOptions{}, 1234);
  }
  static void TearDownTestSuite() {
    delete service_;
    delete mesh_;
    delete world_;
  }
  static world::World* world_;
  static ProbeMesh* mesh_;
  static GeoService* service_;
};

world::World* GeolocTest::world_ = nullptr;
ProbeMesh* GeolocTest::mesh_ = nullptr;
GeoService* GeolocTest::service_ = nullptr;

TEST_F(GeolocTest, MeshIsEuropeDense) {
  std::size_t europe = 0;
  for (const auto& probe : mesh_->probes()) {
    const auto* country = geo::find_country(probe.country);
    ASSERT_NE(country, nullptr);
    if (country->continent == geo::Continent::Europe) ++europe;
  }
  EXPECT_GT(static_cast<double>(europe) / mesh_->probes().size(), 0.45);
  EXPECT_GT(mesh_->count_in("DE"), mesh_->count_in("PA"));
}

TEST_F(GeolocTest, CommercialDbIsAccurateOnEyeballs) {
  const auto block = world_->addresses().eyeball_blocks().at("DE");
  const auto located = service_->locate(block.at(12345), Tool::MaxMindLike);
  EXPECT_EQ(located, "DE");
}

TEST_F(GeolocTest, CommercialDbFilesInfraAtLegalHome) {
  // Count how often the MaxMind-like tool reports the org's HQ rather
  // than the true server country, over servers deployed abroad.
  std::size_t abroad = 0;
  std::size_t reported_hq = 0;
  for (const auto& server : world_->servers()) {
    const auto& org = world_->org(server.org);
    const auto truth = world_->datacenter(server.datacenter).country;
    if (truth == org.hq_country) continue;
    ++abroad;
    if (service_->locate(server.ip, Tool::MaxMindLike) == org.hq_country) ++reported_hq;
  }
  ASSERT_GT(abroad, 100U);
  EXPECT_GT(static_cast<double>(reported_hq) / abroad, 0.6);
}

TEST_F(GeolocTest, ActiveGeolocationIsCountryAccurate) {
  util::Rng rng(3);
  const ActiveGeolocator locator(*world_, *mesh_);
  std::size_t checked = 0;
  std::size_t country_correct = 0;
  std::size_t continent_correct = 0;
  for (const auto& server : world_->servers()) {
    if (checked >= 250) break;
    const auto truth = world_->datacenter(server.datacenter).country;
    const auto* truth_info = geo::find_country(truth);
    // Focus on Europe/US where the mesh is dense (the paper's validation
    // scope is exactly EU + US cloud ranges).
    if (truth_info->continent != geo::Continent::Europe && truth != "US") continue;
    ++checked;
    const auto estimate = locator.locate(server.ip, rng);
    if (estimate.country == truth) ++country_correct;
    if (estimate.continent == truth_info->continent) ++continent_correct;
  }
  ASSERT_EQ(checked, 250U);
  EXPECT_GT(static_cast<double>(country_correct) / checked, 0.85);
  EXPECT_GT(static_cast<double>(continent_correct) / checked, 0.97);
}

TEST_F(GeolocTest, ActiveGeolocationUnknownIpIsEmpty) {
  util::Rng rng(4);
  const ActiveGeolocator locator(*world_, *mesh_);
  const auto estimate = locator.locate(net::IpAddress::v4(1), rng);
  EXPECT_TRUE(estimate.country.empty());
}

TEST_F(GeolocTest, ServiceCachesActiveMeasurements) {
  const auto& ip = world_->servers().front().ip;
  const auto first = service_->locate(ip, Tool::ActiveIpmap);
  const auto second = service_->locate(ip, Tool::ActiveIpmap);
  EXPECT_EQ(first, second);  // measured once, cached thereafter
}

TEST_F(GeolocTest, GroundTruthToolMatchesWorld) {
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& server = world_->servers()[i];
    EXPECT_EQ(service_->locate(server.ip, Tool::GroundTruth),
              world_->datacenter(server.datacenter).country);
  }
}

TEST_F(GeolocTest, PairwiseAgreementShape) {
  // Over tracker server IPs: the two commercial tools agree with each
  // other far more than either agrees with active measurement (Table 3).
  std::vector<net::IpAddress> ips;
  for (const auto& server : world_->servers()) {
    ips.push_back(server.ip);
    if (ips.size() >= 400) break;
  }
  const auto commercial = pairwise_agreement(*service_, ips, Tool::MaxMindLike,
                                             Tool::IpApiLike);
  const auto maxmind_vs_active =
      pairwise_agreement(*service_, ips, Tool::MaxMindLike, Tool::ActiveIpmap);
  EXPECT_GT(commercial.country, 0.85);
  EXPECT_LT(maxmind_vs_active.country, 0.75);
  EXPECT_GT(commercial.country, maxmind_vs_active.country + 0.15);
  // Continent agreement is always higher than country agreement.
  EXPECT_GE(commercial.continent, commercial.country - 1e-9);
}

TEST_F(GeolocTest, ActiveAgreesWithGroundTruth) {
  std::vector<net::IpAddress> ips;
  for (const auto& server : world_->servers()) {
    const auto truth = world_->datacenter(server.datacenter).country;
    const auto* info = geo::find_country(truth);
    if (info->continent == geo::Continent::Europe || truth == "US") {
      ips.push_back(server.ip);
    }
    if (ips.size() >= 300) break;
  }
  const auto agreement =
      pairwise_agreement(*service_, ips, Tool::ActiveIpmap, Tool::GroundTruth);
  EXPECT_GT(agreement.country, 0.85);
  EXPECT_GT(agreement.continent, 0.97);
}

TEST_F(GeolocTest, LegalEntityToolReportsHq) {
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& server = world_->servers()[i];
    EXPECT_EQ(service_->locate(server.ip, Tool::LegalEntity),
              world_->org(server.org).hq_country);
  }
  EXPECT_TRUE(service_->locate(net::IpAddress::v4(7), Tool::LegalEntity).empty());
}

TEST_F(GeolocTest, RegionAndContinentHelpers) {
  const auto& server = world_->servers().front();
  const auto region = service_->region(server.ip, Tool::GroundTruth);
  ASSERT_TRUE(region.has_value());
  const auto continent = service_->continent(server.ip, Tool::GroundTruth);
  ASSERT_TRUE(continent.has_value());
  EXPECT_FALSE(service_->region(net::IpAddress::v4(2), Tool::GroundTruth).has_value());
}

TEST_F(GeolocTest, MoreVotersNeverHurtMuch) {
  // Property sweep: accuracy with 20 voters is within noise of 10 voters
  // (majority voting is stable), and 1 voter is noticeably worse.
  const auto accuracy_with = [&](std::uint32_t voters) {
    ActiveGeolocatorOptions options;
    options.voters = voters;
    const ActiveGeolocator locator(*world_, *mesh_, options);
    util::Rng rng(7);
    std::size_t correct = 0;
    std::size_t total = 0;
    for (const auto& server : world_->servers()) {
      const auto truth = world_->datacenter(server.datacenter).country;
      if (geo::find_country(truth)->continent != geo::Continent::Europe) continue;
      if (++total > 200) break;
      if (locator.locate(server.ip, rng).country == truth) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  };
  const double one = accuracy_with(1);
  const double ten = accuracy_with(10);
  EXPECT_GT(ten, one - 0.02);
}

TEST_F(GeolocTest, QuorumEnforcedExactlyAtThreshold) {
  // Edge case: a surviving panel of exactly `quorum` probes still votes;
  // one more required probe and the engine refuses to locate.
  fault::FaultPlan plan;
  plan.seed = 0xFA017;
  plan.default_rates.timeout = 0.15;
  plan.default_rates.error = 0.15;
  const auto& ip = world_->servers().front().ip;
  ActiveGeolocatorOptions options;
  options.quorum = 1;  // relaxed first, to learn the surviving panel size
  const auto measure = [&](const ActiveGeolocatorOptions& opts) {
    const ActiveGeolocator locator(*world_, *mesh_, opts);
    util::Rng rng(util::mix64(1234 ^ ip.hash()));
    return locator.locate(ip, rng, &plan);
  };
  const auto baseline = measure(options);
  ASSERT_FALSE(baseline.country.empty());
  ASSERT_GT(baseline.lost_probes, 0u);
  const std::uint32_t survivors =
      options.probes_per_measurement - baseline.lost_probes;

  options.quorum = survivors;  // exactly at threshold: the verdict stands
  const auto at_quorum = measure(options);
  EXPECT_EQ(at_quorum.country, baseline.country);
  EXPECT_EQ(at_quorum.lost_probes, baseline.lost_probes);

  options.quorum = survivors + 1;  // one short: unlocated, losses reported
  const auto below_quorum = measure(options);
  EXPECT_TRUE(below_quorum.country.empty());
  EXPECT_EQ(below_quorum.lost_probes, baseline.lost_probes);
}

TEST_F(GeolocTest, AllProbesLostYieldsUnlocated) {
  fault::FaultPlan plan;
  plan.default_rates.error = 1.0;
  const ActiveGeolocator locator(*world_, *mesh_);
  const auto& ip = world_->servers().front().ip;
  util::Rng rng(5);
  const auto estimate = locator.locate(ip, rng, &plan);
  EXPECT_TRUE(estimate.country.empty());
  EXPECT_EQ(estimate.lost_probes, ActiveGeolocatorOptions{}.probes_per_measurement);
}

TEST_F(GeolocTest, PrefetchUnderFaultsCountsEachMissOnce) {
  // Regression: a measurement exhausted by injected faults is cached as
  // unlocated like any other verdict, so repeated prefetches and lookups
  // must never re-measure it or count a second cache miss.
  obs::Registry registry;
  fault::FaultPlan plan;
  plan.seed = 77;
  plan.site_rates["geoloc_measure"] = {.error = 0.8};
  util::Rng db_rng(2);
  auto maxmind = build_maxmind_like(*world_, CommercialDbOptions{}, db_rng);
  auto ipapi = build_ipapi_like(*world_, maxmind, 0.93, db_rng);
  const GeoService service(*world_, std::move(maxmind), std::move(ipapi), *mesh_,
                           ActiveGeolocatorOptions{}, 1234, nullptr, &registry, &plan);
  std::vector<net::IpAddress> ips;
  for (const auto& server : world_->servers()) {
    ips.push_back(server.ip);
    if (ips.size() >= 40) break;
  }
  service.prefetch(ips);
  // The plan exhausted some measurements and each one degraded to an
  // unlocated verdict — and only those did.
  const auto degraded =
      registry.counter_value("cbwt_fault_geoloc_measure_degraded_total");
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(registry.counter_value("cbwt_geoloc_unlocated_total"), degraded);

  const auto misses = registry.counter_value("cbwt_geoloc_cache_misses_total");
  const auto batches = registry.counter_value("cbwt_geoloc_probe_batches_total");
  service.prefetch(ips);
  for (const auto& ip : ips) (void)service.locate(ip, Tool::ActiveIpmap);
  EXPECT_EQ(registry.counter_value("cbwt_geoloc_cache_misses_total"), misses);
  EXPECT_EQ(registry.counter_value("cbwt_geoloc_probe_batches_total"), batches);
  EXPECT_EQ(registry.counter_value("cbwt_geoloc_unlocated_total"), degraded);
  EXPECT_EQ(registry.counter_value("cbwt_geoloc_cache_hits_total"), ips.size());
}

TEST(CommercialDb, EmptyLocatesNothing) {
  CommercialDb db;
  EXPECT_FALSE(db.locate(net::IpAddress::v4(1)).has_value());
  db.add_prefix(*net::IpPrefix::parse("10.0.0.0/8"), "DE");
  db.add_ip(*net::IpAddress::parse("10.1.2.3"), "FR");
  // Longest prefix wins: the host entry overrides the block.
  EXPECT_EQ(db.locate(*net::IpAddress::parse("10.1.2.3")).value(), "FR");
  EXPECT_EQ(db.locate(*net::IpAddress::parse("10.9.9.9")).value(), "DE");
}

TEST(GeoTool, ToStringCoversAll) {
  EXPECT_EQ(to_string(Tool::GroundTruth), "ground-truth");
  EXPECT_EQ(to_string(Tool::MaxMindLike), "maxmind-like");
  EXPECT_EQ(to_string(Tool::IpApiLike), "ip-api-like");
  EXPECT_EQ(to_string(Tool::ActiveIpmap), "ipmap-like");
  EXPECT_EQ(to_string(Tool::LegalEntity), "legal-entity");
}

}  // namespace
}  // namespace cbwt::geoloc
