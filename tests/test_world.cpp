#include "world/world.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "geo/country.h"
#include "net/domain.h"
#include "world/topics.h"

namespace cbwt::world {
namespace {

const World& small_world() {
  static const World world = [] {
    WorldConfig config;
    config.seed = 777;
    config.scale = 0.01;
    return build_world(config);
  }();
  return world;
}

TEST(WorldBuild, IsDeterministic) {
  WorldConfig config;
  config.seed = 123;
  config.publishers = 200;
  const World a = build_world(config);
  const World b = build_world(config);
  ASSERT_EQ(a.servers().size(), b.servers().size());
  for (std::size_t i = 0; i < a.servers().size(); ++i) {
    EXPECT_EQ(a.servers()[i].ip, b.servers()[i].ip);
  }
  ASSERT_EQ(a.domains().size(), b.domains().size());
  for (std::size_t i = 0; i < a.domains().size(); ++i) {
    EXPECT_EQ(a.domains()[i].fqdn, b.domains()[i].fqdn);
  }
  ASSERT_EQ(a.users().size(), b.users().size());
}

TEST(WorldBuild, DifferentSeedsDiffer) {
  WorldConfig config;
  config.publishers = 200;
  config.seed = 1;
  const World a = build_world(config);
  config.seed = 2;
  const World b = build_world(config);
  bool any_difference = a.servers().size() != b.servers().size();
  for (std::size_t i = 0; !any_difference && i < a.servers().size(); ++i) {
    any_difference = a.servers()[i].ip != b.servers()[i].ip;
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorldBuild, CountsMatchConfig) {
  const auto& world = small_world();
  const auto& config = world.config();
  EXPECT_EQ(world.users().size(), config.extension_users);
  EXPECT_EQ(world.publishers().size(), config.publishers);
  EXPECT_EQ(world.clouds().size(), config.cloud_providers);
  EXPECT_EQ(world.orgs().size(), config.ad_networks + config.dsps + config.sync_services +
                                     config.analytics_orgs + config.clean_orgs);
}

TEST(WorldBuild, EveryEu28CountryHasADatacenter) {
  const auto& world = small_world();
  std::set<std::string> dc_countries;
  for (const auto& dc : world.datacenters()) dc_countries.insert(dc.country);
  for (const auto& country : geo::all_countries()) {
    if (country.eu28) {
      EXPECT_TRUE(dc_countries.contains(std::string(country.code)))
          << "EU28 country without a datacenter: " << country.code;
    }
  }
}

TEST(WorldBuild, CloudPopsBelongToTheirCloud) {
  const auto& world = small_world();
  for (const auto& cloud : world.clouds()) {
    EXPECT_FALSE(cloud.pops.empty());
    for (const auto pop : cloud.pops) {
      EXPECT_EQ(world.datacenter(pop).cloud, cloud.id);
    }
  }
}

TEST(WorldBuild, NoCloudInCyprusOrMalta) {
  // Table 6 structure: the nine public clouds have no PoP in CY/MT.
  const auto& world = small_world();
  for (const auto& cloud : world.clouds()) {
    for (const auto pop : cloud.pops) {
      EXPECT_NE(world.datacenter(pop).country, "CY");
      EXPECT_NE(world.datacenter(pop).country, "MT");
    }
  }
}

TEST(WorldBuild, ServerIpsAreUniqueAndInsideTheirDatacenter) {
  const auto& world = small_world();
  std::unordered_set<net::IpAddress> ips;
  for (const auto& server : world.servers()) {
    EXPECT_TRUE(ips.insert(server.ip).second) << server.ip.to_string();
    if (server.ip.is_v4()) {
      EXPECT_TRUE(world.datacenter(server.datacenter).prefix.contains(server.ip));
    }
  }
}

TEST(WorldBuild, SomeServersAreV6ButMostAreV4) {
  const auto& world = small_world();
  std::size_t v6 = 0;
  for (const auto& server : world.servers()) {
    if (!server.ip.is_v4()) ++v6;
  }
  const double share = static_cast<double>(v6) / world.servers().size();
  EXPECT_GT(share, 0.0);
  EXPECT_LT(share, 0.10);  // paper: ~3% of tracker IPs are v6
}

TEST(WorldBuild, EveryOrgHasServersAndDomains) {
  const auto& world = small_world();
  for (const auto& org : world.orgs()) {
    EXPECT_FALSE(org.servers.empty()) << org.name;
    EXPECT_FALSE(org.domains.empty()) << org.name;
    for (const auto domain_id : org.domains) {
      EXPECT_EQ(world.domain(domain_id).org, org.id);
      EXPECT_FALSE(world.domain(domain_id).servers.empty());
    }
  }
}

TEST(WorldBuild, DomainFqdnsAreUniqueAndWellFormed) {
  const auto& world = small_world();
  std::set<std::string> fqdns;
  for (const auto& domain : world.domains()) {
    EXPECT_TRUE(fqdns.insert(domain.fqdn).second) << domain.fqdn;
    EXPECT_TRUE(net::is_subdomain_of(domain.fqdn, domain.registrable))
        << domain.fqdn << " vs " << domain.registrable;
    EXPECT_EQ(net::registrable_domain(domain.fqdn), domain.registrable);
  }
}

TEST(WorldBuild, FindDomainAndServerIndices) {
  const auto& world = small_world();
  const auto& domain = world.domains().front();
  EXPECT_EQ(world.find_domain(domain.fqdn), &world.domains().front());
  EXPECT_EQ(world.find_domain("no.such.host"), nullptr);

  const auto& server = world.servers().front();
  EXPECT_EQ(world.find_server(server.ip), &world.servers().front());
  EXPECT_EQ(world.find_server(net::IpAddress::v4(1)), nullptr);
  EXPECT_EQ(world.true_country_of(server.ip),
            world.datacenter(server.datacenter).country);
  EXPECT_TRUE(world.true_country_of(net::IpAddress::v4(1)).empty());
}

TEST(WorldBuild, CleanOrgsAreNeverListed) {
  const auto& world = small_world();
  for (const auto& domain : world.domains()) {
    if (world.org(domain.org).role == OrgRole::CleanService) {
      EXPECT_FALSE(domain.in_easylist);
      EXPECT_FALSE(domain.in_easyprivacy);
      EXPECT_FALSE(domain.keyword_urls);
    }
  }
}

TEST(WorldBuild, ListCoverageGapExists) {
  // Ad networks are well covered; DSP/sync are mostly uncovered — that is
  // the structural reason for the paper's stage-2 classifier.
  const auto& world = small_world();
  std::size_t ad_total = 0;
  std::size_t ad_listed = 0;
  std::size_t chain_total = 0;
  std::size_t chain_listed = 0;
  for (const auto& domain : world.domains()) {
    const auto role = world.org(domain.org).role;
    if (role == OrgRole::AdNetwork) {
      ++ad_total;
      ad_listed += domain.in_easylist ? 1 : 0;
    } else if (role == OrgRole::Dsp || role == OrgRole::SyncService) {
      ++chain_total;
      chain_listed += domain.in_easylist ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(ad_listed) / ad_total, 0.85);
  EXPECT_LT(static_cast<double>(chain_listed) / chain_total, 0.55);
}

TEST(WorldBuild, UserMixMatchesPaperShape) {
  const auto& world = small_world();
  std::map<geo::Region, std::size_t> by_region;
  std::size_t spain = 0;
  for (const auto& user : world.users()) {
    by_region[*geo::region_of_code(user.country)]++;
    if (user.country == "ES") ++spain;
  }
  EXPECT_EQ(world.users().size(), 350U);
  // EU28-heavy with a South American cluster (paper: 183 / 86).
  EXPECT_NEAR(static_cast<double>(by_region[geo::Region::EU28]), 183.0, 10.0);
  EXPECT_NEAR(static_cast<double>(by_region[geo::Region::SouthAmerica]), 86.0, 8.0);
  EXPECT_GT(spain, 40U);  // Spain is the largest single cohort
}

TEST(WorldBuild, SensitivePublishersExistInExpectedShare) {
  const auto& world = small_world();
  std::size_t sensitive = 0;
  for (const auto& publisher : world.publishers()) {
    for (const auto topic : publisher.topics) {
      if (topic_by_id(topic).sensitive) {
        ++sensitive;
        break;
      }
    }
  }
  const double share = static_cast<double>(sensitive) / world.publishers().size();
  EXPECT_NEAR(share, world.config().sensitive_publisher_fraction, 0.02);
}

TEST(WorldBuild, SensitivePublishersSitInThePopularityTail) {
  const auto& world = small_world();
  double sensitive_mass = 0.0;
  double total_mass = 0.0;
  for (const auto& publisher : world.publishers()) {
    total_mass += publisher.popularity;
    for (const auto topic : publisher.topics) {
      if (topic_by_id(topic).sensitive) {
        sensitive_mass += publisher.popularity;
        break;
      }
    }
  }
  // ~19% of domains but only a few % of visit mass (paper: ~3% of flows).
  EXPECT_LT(sensitive_mass / total_mass, 0.08);
}

TEST(WorldBuild, PublishersEmbedTags) {
  const auto& world = small_world();
  for (const auto& publisher : world.publishers()) {
    EXPECT_GE(publisher.embedded_tags.size(), 3U) << publisher.domain;
    for (const auto tag : publisher.embedded_tags) {
      const auto role = world.org(world.domain(tag).org).role;
      EXPECT_TRUE(role == OrgRole::AdNetwork || role == OrgRole::Analytics ||
                  role == OrgRole::CleanService);
    }
  }
}

TEST(WorldBuild, SharedExchangeServersServeManyDomains) {
  const auto& world = small_world();
  std::size_t exchanges = 0;
  for (const auto& server : world.servers()) {
    if (!server.shared_exchange) continue;
    ++exchanges;
    EXPECT_GE(world.domains_on_server(server.id).size(), 8U);
  }
  EXPECT_GT(exchanges, 0U);
}

TEST(WorldBuild, TrackingDomainIdsExcludeCleanServices) {
  const auto& world = small_world();
  const auto tracking = world.tracking_domain_ids();
  EXPECT_FALSE(tracking.empty());
  EXPECT_LT(tracking.size(), world.domains().size());
  for (const auto id : tracking) {
    EXPECT_NE(world.org(world.domain(id).org).role, OrgRole::CleanService);
  }
}

TEST(WorldBuild, ChainedPrimaryFqdnsDeployOnSubsets) {
  // DSP/sync primary FQDNs answer from ~70% of the org's servers (the
  // structural source of the FQDN-vs-TLD redirection gap), but always
  // keep a home-market server when the org has one.
  const auto& world = small_world();
  std::size_t orgs_checked = 0;
  std::size_t subsets = 0;
  for (const auto& org : world.orgs()) {
    if ((org.role != OrgRole::Dsp && org.role != OrgRole::SyncService) ||
        org.servers.size() < 4) {
      continue;
    }
    ++orgs_checked;
    const auto& primary = world.domain(org.domains.front());
    // Shared exchange hosts get appended to sync/DSP serving lists after
    // creation; count only the org's own servers here.
    std::size_t own = 0;
    for (const auto sid : primary.servers) {
      if (world.server(sid).org == org.id) ++own;
    }
    EXPECT_LE(own, org.servers.size());
    if (own < org.servers.size()) ++subsets;
    const auto at_home = [&](world::ServerId sid) {
      return world.datacenter(world.server(sid).datacenter).country == org.hq_country;
    };
    const bool org_has_home =
        std::any_of(org.servers.begin(), org.servers.end(), at_home);
    if (org_has_home) {
      EXPECT_TRUE(std::any_of(primary.servers.begin(), primary.servers.end(), at_home))
          << org.name;
    }
  }
  ASSERT_GT(orgs_checked, 20U);
  EXPECT_GT(subsets, orgs_checked / 2);
}

TEST(WorldBuild, EntryPrimaryFqdnsDeployEverywhere) {
  const auto& world = small_world();
  for (const auto& org : world.orgs()) {
    if (org.role != OrgRole::AdNetwork) continue;
    const auto& primary = world.domain(org.domains.front());
    EXPECT_EQ(primary.servers.size(), org.servers.size()) << org.name;
  }
}

TEST(Topics, TaxonomyInvariants) {
  EXPECT_EQ(sensitive_topic_count(), 12U);
  std::size_t sensitive = 0;
  for (const auto& topic : all_topics()) {
    if (topic.sensitive) {
      ++sensitive;
      EXPECT_FALSE(topic.umbrella.empty());
    }
    EXPECT_EQ(&topic_by_id(topic.id), &topic);
  }
  EXPECT_EQ(sensitive, 12U);
  ASSERT_NE(find_topic("health"), nullptr);
  EXPECT_TRUE(find_topic("health")->sensitive);
  ASSERT_NE(find_topic("news"), nullptr);
  EXPECT_FALSE(find_topic("news")->sensitive);
  EXPECT_EQ(find_topic("nonexistent"), nullptr);
}

TEST(AddressPlan, EyeballBlocksAreDisjointAndMemoized) {
  AddressPlan plan;
  const auto de = plan.eyeball_block("DE");
  const auto fr = plan.eyeball_block("FR");
  const auto de_again = plan.eyeball_block("DE");
  EXPECT_EQ(de, de_again);
  EXPECT_NE(de, fr);
  EXPECT_FALSE(de.contains(fr.base()));
  EXPECT_TRUE(plan.is_eyeball(de.at(42)));
  EXPECT_FALSE(plan.is_eyeball(net::IpAddress::v4(0x0B000001)));
}

TEST(AddressPlan, ServerAllocationsAreAlignedAndDisjoint) {
  AddressPlan plan;
  const auto a = plan.allocate_server_v4(22);
  const auto b = plan.allocate_server_v4(22);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b.base()));
  EXPECT_FALSE(b.contains(a.base()));
  EXPECT_THROW((void)plan.allocate_server_v4(0), std::invalid_argument);
  EXPECT_THROW((void)plan.allocate_server_v4(25), std::invalid_argument);
}

}  // namespace
}  // namespace cbwt::world
