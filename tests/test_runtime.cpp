#include "runtime/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <numeric>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/study.h"
#include "netflow/profile.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"
#include "runtime/channel.h"
#include "runtime/thread_pool.h"

namespace cbwt::runtime {
namespace {

// --- Channel ---------------------------------------------------------

TEST(Channel, FifoWithinCapacity) {
  Channel<int> channel(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(channel.push(i));
  EXPECT_EQ(channel.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(channel.pop(), i);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(Channel, TryPushReportsFullAndTryPopReportsEmpty) {
  Channel<int> channel(1);
  EXPECT_EQ(channel.try_pop(), std::nullopt);
  int value = 7;
  EXPECT_EQ(channel.try_push(value), TryPush::Ok);
  value = 8;
  EXPECT_EQ(channel.try_push(value), TryPush::Full);
  EXPECT_EQ(channel.try_pop(), 7);
  EXPECT_EQ(channel.try_pop(), std::nullopt);
}

TEST(Channel, CloseDrainsThenSignalsEnd) {
  Channel<int> channel(4);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  channel.close();
  EXPECT_TRUE(channel.closed());
  // Pushes after close fail, buffered items still drain in order.
  EXPECT_FALSE(channel.push(3));
  int value = 3;
  EXPECT_EQ(channel.try_push(value), TryPush::Closed);
  EXPECT_EQ(channel.pop(), 1);
  EXPECT_EQ(channel.pop(), 2);
  EXPECT_EQ(channel.pop(), std::nullopt);
  EXPECT_EQ(channel.try_pop(), std::nullopt);
  channel.close();  // idempotent
}

TEST(Channel, CloseWakesBlockedConsumer) {
  Channel<int> channel(2);
  std::thread consumer([&] { EXPECT_EQ(channel.pop(), std::nullopt); });
  channel.close();
  consumer.join();
}

TEST(Channel, BackpressureBlocksProducerUntilConsumed) {
  constexpr int kItems = 256;
  Channel<int> channel(2);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(channel.push(i));
    channel.close();
  });
  std::vector<int> received;
  while (auto value = channel.pop()) received.push_back(*value);
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  const auto stats = channel.stats();
  EXPECT_EQ(stats.pushed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.popped, static_cast<std::uint64_t>(kItems));
  EXPECT_LE(stats.high_water, 2u);
}

TEST(Channel, CloseWakesEveryStalledProducer) {
  // A stalled producer must not outlive the stream: close() has to wake
  // every push() blocked on a full buffer and fail it, or a pipeline
  // whose consumer aborts would hang its producer shards forever.
  Channel<int> channel(1);
  ASSERT_TRUE(channel.push(0));  // fill the buffer: further pushes stall
  constexpr std::uint64_t kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      if (!channel.push(static_cast<int>(p) + 1)) rejected.fetch_add(1);
    });
  }
  // Wait until all four are provably blocked inside push().
  while (channel.stats().producer_stalls < kProducers) std::this_thread::yield();
  channel.close();
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(rejected.load(), static_cast<int>(kProducers));
  // The pre-close item still drains; the rejected values were dropped.
  EXPECT_EQ(channel.pop(), 0);
  EXPECT_EQ(channel.pop(), std::nullopt);
  EXPECT_EQ(channel.stats().pushed, 1u);
}

TEST(Channel, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  Channel<int> channel(8);
  std::atomic<int> producers_left{kProducers};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.push(p * kPerProducer + i));
      }
      if (producers_left.fetch_sub(1) == 1) channel.close();
    });
  }
  std::mutex sink_mutex;
  std::vector<int> sink;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto value = channel.pop()) {
        std::scoped_lock lock(sink_mutex);
        sink.push_back(*value);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(sink.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(sink.begin(), sink.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(sink[static_cast<std::size_t>(i)], i);
  }
}

// --- ThreadPool ------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter, &pool] {
        counter.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  }
  EXPECT_EQ(counter.load(), 128);
}

TEST(ThreadPool, StressManySubmitters) {
  std::atomic<std::uint64_t> sum{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        for (std::uint64_t i = 1; i <= 2000; ++i) {
          pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  EXPECT_EQ(sum.load(), 4ull * 2000ull * 2001ull / 2ull);
}

// --- Shard planning and parallel primitives --------------------------

TEST(PlanShards, CoversRangeContiguously) {
  const auto plan = plan_shards(10000, {.min_shard_items = 128, .max_shards = 16});
  ASSERT_FALSE(plan.empty());
  EXPECT_LE(plan.size(), 16u);
  std::size_t expected_begin = 0;
  for (const auto& range : plan) {
    EXPECT_EQ(range.begin, expected_begin);
    EXPECT_GT(range.end, range.begin);
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, 10000u);
}

TEST(PlanShards, SmallInputsStaySerial) {
  EXPECT_TRUE(plan_shards(0, {}).empty());
  const auto plan = plan_shards(100, {.min_shard_items = 1024, .max_shards = 64});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[0].end, 100u);
}

TEST(PlanShards, IndependentOfAnyPool) {
  // The plan is a pure function of (n, options) — this is determinism
  // rule 1, so spell it out as a regression anchor.
  const auto a = plan_shards(54321, {});
  const auto b = plan_shards(54321, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(ShardRng, StatelessAndDistinctPerShard) {
  auto a = shard_rng(1, 2, 3);
  auto b = shard_rng(1, 2, 3);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  auto c = shard_rng(1, 2, 4);
  auto d = shard_rng(1, 3, 3);
  EXPECT_NE(shard_rng(1, 2, 3)(), c());
  EXPECT_NE(shard_rng(1, 2, 3)(), d());
}

TEST(ShardRng, StreamsNeverCollideOverManyDraws) {
  // Property: the streams of distinct (stage_label, shard) pairs share
  // no value anywhere in their first 10k draws. Sixteen streams x 10k
  // 64-bit draws would collide by birthday chance with probability
  // ~1e-9 — any overlap means correlated shard streams, the failure the
  // splitmix derivation exists to rule out.
  constexpr std::uint64_t kSeed = 20180901;
  constexpr std::size_t kDraws = 10000;
  const std::array<std::uint64_t, 4> stage_labels = {0xDA7A, 0x9D45, 0x3E0, 0x15B0};
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(stage_labels.size() * 4 * kDraws);
  for (const auto label : stage_labels) {
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
      auto rng = shard_rng(kSeed, label, shard);
      for (std::size_t draw = 0; draw < kDraws; ++draw) {
        EXPECT_TRUE(seen.insert(rng()).second)
            << "stream (" << label << ", " << shard << ") collided at draw " << draw;
      }
    }
  }
}

TEST(ParallelMap, MatchesSerialForEveryPoolSize) {
  constexpr std::size_t kN = 5000;
  const auto serial = parallel_map<std::uint64_t>(
      nullptr, kN, {.min_shard_items = 64}, [](std::size_t i) { return i * i; });
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel = parallel_map<std::uint64_t>(
        &pool, kN, {.min_shard_items = 64}, [](std::size_t i) { return i * i; });
    EXPECT_EQ(parallel, serial);
  }
}

TEST(ShardedReduce, MergesInShardOrderForEveryPoolSize) {
  constexpr std::size_t kN = 20000;
  const auto run = [](ThreadPool* pool) {
    return sharded_reduce<std::vector<std::uint64_t>>(
        pool, kN, {.min_shard_items = 256}, /*seed=*/99, /*stage_label=*/0xABCD,
        [](ShardRange range, std::size_t, util::Rng& rng) {
          std::vector<std::uint64_t> part;
          part.reserve(range.size());
          for (std::size_t i = range.begin; i < range.end; ++i) part.push_back(rng());
          return part;
        },
        [](std::vector<std::uint64_t>& acc, std::vector<std::uint64_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
  };
  const auto serial = run(nullptr);
  ASSERT_EQ(serial.size(), kN);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(run(&pool), serial);
  }
}

TEST(ShardedReduce, ChannelStatsSinkSeesEveryPart) {
  constexpr std::size_t kN = 20000;
  ThreadPool pool(4);
  ChannelStats stats;
  const auto plan = plan_shards(kN, {.min_shard_items = 256});
  ASSERT_GT(plan.size(), 1u);
  (void)sharded_reduce<std::uint64_t>(
      &pool, kN, {.min_shard_items = 256, .channel_stats = &stats},
      /*seed=*/7, /*stage_label=*/0x57A75,
      [](ShardRange range, std::size_t, util::Rng&) {
        return static_cast<std::uint64_t>(range.size());
      },
      [](std::uint64_t& acc, std::uint64_t&& part) { acc += part; });
  // One part per shard flows through the channel; the sink sees all of
  // them, and the bounded capacity keeps the high-water finite.
  EXPECT_EQ(stats.pushed, plan.size());
  EXPECT_EQ(stats.popped, plan.size());
  EXPECT_GE(stats.high_water, 1u);

  // The serial path uses no channel and leaves the sink untouched.
  ChannelStats serial_stats;
  (void)sharded_reduce<std::uint64_t>(
      nullptr, kN, {.min_shard_items = 256, .channel_stats = &serial_stats},
      /*seed=*/7, /*stage_label=*/0x57A75,
      [](ShardRange range, std::size_t, util::Rng&) {
        return static_cast<std::uint64_t>(range.size());
      },
      [](std::uint64_t& acc, std::uint64_t&& part) { acc += part; });
  EXPECT_EQ(serial_stats.pushed, 0u);
  EXPECT_EQ(serial_stats.popped, 0u);
}

TEST(OrderedStream, ConsumesInShardOrderWhileProducersRun) {
  constexpr std::size_t kN = 20000;
  const auto run = [](ThreadPool* pool) {
    std::vector<std::size_t> consumed_shards;
    std::vector<std::uint64_t> consumed_values;
    ordered_stream<std::vector<std::uint64_t>>(
        pool, kN, {.min_shard_items = 256}, /*seed=*/42, /*stage_label=*/0x02DE2,
        [](ShardRange range, std::size_t, util::Rng& rng) {
          std::vector<std::uint64_t> part;
          part.reserve(range.size());
          for (std::size_t i = range.begin; i < range.end; ++i) part.push_back(rng());
          return part;
        },
        [&](std::size_t shard, std::vector<std::uint64_t>&& part) {
          consumed_shards.push_back(shard);
          consumed_values.insert(consumed_values.end(), part.begin(), part.end());
        });
    return std::pair(consumed_shards, consumed_values);
  };
  const auto [serial_shards, serial_values] = run(nullptr);
  ASSERT_EQ(serial_values.size(), kN);
  ASSERT_GT(serial_shards.size(), 1u);
  for (std::size_t i = 0; i < serial_shards.size(); ++i) {
    EXPECT_EQ(serial_shards[i], i);  // strictly ascending, no gaps
  }
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const auto [shards, values] = run(&pool);
    // A consumer with side effects (the join's spill writers) sees the
    // serial order bit for bit, whatever order parts arrived in.
    EXPECT_EQ(shards, serial_shards);
    EXPECT_EQ(values, serial_values);
  }
}

TEST(OrderedStream, ThrowingConsumerDrainsAndRethrows) {
  ThreadPool pool(4);
  std::size_t consumed = 0;
  const auto boom = [&] {
    ordered_stream<int>(
        &pool, 10000, {.min_shard_items = 16}, 0, 0,
        [](ShardRange range, std::size_t, util::Rng&) {
          return static_cast<int>(range.size());
        },
        [&](std::size_t shard, int&&) {
          if (shard == 2) throw std::runtime_error("consumer failure");
          ++consumed;
        });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  EXPECT_EQ(consumed, 2u);  // shards 0 and 1 landed before the throw
  // The pool is healthy afterwards (no producer left blocked on the
  // channel) — a follow-up batch completes.
  std::uint64_t total = 0;
  ordered_stream<std::uint64_t>(
      &pool, 10000, {.min_shard_items = 16}, 0, 0,
      [](ShardRange range, std::size_t, util::Rng&) {
        return static_cast<std::uint64_t>(range.size());
      },
      [&](std::size_t, std::uint64_t&& part) { total += part; });
  EXPECT_EQ(total, 10000u);
}

TEST(ShardedReduce, PropagatesShardExceptions) {
  ThreadPool pool(4);
  const auto boom = [&] {
    (void)sharded_reduce<int>(
        &pool, 10000, {.min_shard_items = 16}, 0, 0,
        [](ShardRange range, std::size_t shard, util::Rng&) {
          if (shard == 3) throw std::runtime_error("shard failure");
          return static_cast<int>(range.size());
        },
        [](int& acc, int&& part) { acc += part; });
  };
  EXPECT_THROW(boom(), std::runtime_error);
}

TEST(ParallelFor, WritesDisjointSlots) {
  constexpr std::size_t kN = 4096;
  std::vector<std::uint32_t> out(kN, 0);
  ThreadPool pool(4);
  parallel_for(&pool, kN, {.min_shard_items = 64},
               [&](ShardRange range, std::size_t) {
                 for (std::size_t i = range.begin; i < range.end; ++i) {
                   out[i] = static_cast<std::uint32_t>(i + 1);
                 }
               });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i + 1);
}

// --- End-to-end determinism sweep ------------------------------------

core::StudyConfig sweep_config(unsigned threads) {
  core::StudyConfig config;
  config.world.seed = 20180901;
  // Small but end-to-end: each TEST_P process builds two full studies
  // (reference + candidate), and the sweep also runs under TSan's
  // ~15x slowdown in CI, so the scale stays modest. The NetFlow volume
  // in particular drops to ~20k records per ISP run — still a dozen
  // generation/collection shards, a tiny fraction of the default cost.
  config.world.scale = 0.01;
  config.netflow.scale = 2e-5;
  config.threads = threads;
  return config;
}

/// The tentpole guarantee: a Study's observable results are identical
/// for every thread count. threads=1 (pure serial, no pool) is the
/// reference; 2 and 8 must match it bit for bit.
class StudyDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(StudyDeterminism, MatchesSerialReference) {
  // Both studies run fully instrumented: attaching a registry — and the
  // flight recorder, whose worker-side emits ride every sharded stage —
  // must not perturb any result (instrumentation is observational only).
  obs::Registry ref_registry;
  obs::Registry got_registry;
  obs::TraceBuffer ref_trace;
  obs::TraceBuffer got_trace;
  auto ref_config = sweep_config(1);
  ref_config.registry = &ref_registry;
  ref_config.trace = &ref_trace;
  auto got_config = sweep_config(GetParam());
  got_config.registry = &got_registry;
  got_config.trace = &got_trace;
  core::Study reference(ref_config);
  core::Study candidate(got_config);

  // Classification outcomes, request by request.
  const auto& ref_outcomes = reference.outcomes();
  const auto& got_outcomes = candidate.outcomes();
  ASSERT_EQ(got_outcomes.size(), ref_outcomes.size());
  for (std::size_t i = 0; i < ref_outcomes.size(); ++i) {
    ASSERT_EQ(got_outcomes[i].method, ref_outcomes[i].method) << "request " << i;
    ASSERT_EQ(got_outcomes[i].list, ref_outcomes[i].list) << "request " << i;
  }

  // Tracker IP completion (sorted vectors -> plain equality).
  EXPECT_EQ(candidate.completed_tracker_ips(), reference.completed_tracker_ips());

  // Active geolocation verdicts over the completed tracker set (capped:
  // each verdict runs a full probe panel twice, and the whole set adds
  // nothing over a prefix). The candidate prefetches in parallel;
  // verdicts must not depend on it.
  const auto& ips = reference.completed_tracker_ips();
  const std::size_t sample = std::min<std::size_t>(ips.size(), 256);
  for (std::size_t i = 0; i < sample; ++i) {
    ASSERT_EQ(candidate.geo().locate(ips[i], geoloc::Tool::ActiveIpmap),
              reference.geo().locate(ips[i], geoloc::Tool::ActiveIpmap));
  }

  // One full ISP snapshot: sharded generation + sharded collection.
  const auto isp = netflow::default_isps()[0];
  const auto snapshot = netflow::default_snapshots()[0];
  const auto ref_run = reference.run_isp_snapshot(isp, snapshot);
  const auto got_run = candidate.run_isp_snapshot(isp, snapshot);
  EXPECT_EQ(got_run.exported_records, ref_run.exported_records);
  EXPECT_EQ(got_run.collection.records_seen, ref_run.collection.records_seen);
  EXPECT_EQ(got_run.collection.internal_records, ref_run.collection.internal_records);
  EXPECT_EQ(got_run.collection.matched_records, ref_run.collection.matched_records);
  EXPECT_EQ(got_run.collection.https_records, ref_run.collection.https_records);
  EXPECT_EQ(got_run.collection.udp_records, ref_run.collection.udp_records);
  EXPECT_EQ(got_run.collection.per_ip, ref_run.collection.per_ip);

  // Identical work on both sides -> identical logical counters, even
  // though the candidate computed them across threads.
  for (const char* name :
       {"cbwt_classify_requests_total", "cbwt_classify_rule_hits_total",
        "cbwt_netflow_records_generated_total", "cbwt_netflow_matched_total"}) {
    EXPECT_EQ(got_registry.counter_value(name), ref_registry.counter_value(name))
        << name;
  }
  if (GetParam() > 1) {
    // The sharded stages streamed their parts through bounded channels;
    // the registry must have seen that throughput.
    EXPECT_GT(got_registry.counter_value("cbwt_runtime_channel_pushed_total"), 0u);
    EXPECT_EQ(got_registry.counter_value("cbwt_runtime_channel_pushed_total"),
              got_registry.counter_value("cbwt_runtime_channel_popped_total"));
  } else {
    // Serial studies never touch a channel.
    EXPECT_EQ(got_registry.counter_value("cbwt_runtime_channel_pushed_total"), 0u);
  }

  // The armed recorder saw the run: spans emitted begin/end events, and
  // a threaded candidate traced from at least two distinct threads
  // (main + pool workers).
  std::size_t got_events = 0;
  for (const auto& thread : got_trace.snapshot()) got_events += thread.events.size();
  EXPECT_GT(got_events, 0u);
  if (GetParam() > 1) {
    EXPECT_GE(got_trace.thread_count(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, StudyDeterminism, ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cbwt::runtime
