#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <map>

#include "util/prng.h"

namespace cbwt::net {
namespace {

IpPrefix p(const char* text) {
  const auto prefix = IpPrefix::parse(text);
  EXPECT_TRUE(prefix.has_value()) << text;
  return *prefix;
}

IpAddress a(const char* text) {
  const auto ip = IpAddress::parse(text);
  EXPECT_TRUE(ip.has_value()) << text;
  return *ip;
}

TEST(PrefixTrie, EmptyLookupIsNull) {
  PrefixTrie<int> trie;
  EXPECT_EQ(trie.lookup(a("1.2.3.4")), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);
  trie.insert(p("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.lookup(a("10.1.2.3")), 24);
  EXPECT_EQ(*trie.lookup(a("10.1.9.9")), 16);
  EXPECT_EQ(*trie.lookup(a("10.9.9.9")), 8);
  EXPECT_EQ(trie.lookup(a("11.0.0.0")), nullptr);
}

TEST(PrefixTrie, InsertOverwritesSamePrefix) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1U);
  EXPECT_EQ(*trie.lookup(a("10.0.0.1")), 2);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(p("192.0.2.7/32"), 7);
  EXPECT_EQ(*trie.lookup(a("192.0.2.7")), 7);
  EXPECT_EQ(trie.lookup(a("192.0.2.8")), nullptr);
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(p("0.0.0.0/0"), 0);
  trie.insert(p("10.0.0.0/8"), 8);
  EXPECT_EQ(*trie.lookup(a("11.1.1.1")), 0);
  EXPECT_EQ(*trie.lookup(a("10.1.1.1")), 8);
}

TEST(PrefixTrie, FamiliesAreDisjoint) {
  PrefixTrie<int> trie;
  trie.insert(p("0.0.0.0/0"), 4);
  trie.insert(p("::/0"), 6);
  EXPECT_EQ(*trie.lookup(a("1.2.3.4")), 4);
  EXPECT_EQ(*trie.lookup(a("2a01::1")), 6);
}

TEST(PrefixTrie, V6LongestPrefix) {
  PrefixTrie<int> trie;
  trie.insert(p("2a01::/16"), 16);
  trie.insert(p("2a01:db8::/32"), 32);
  EXPECT_EQ(*trie.lookup(a("2a01:db8::1")), 32);
  EXPECT_EQ(*trie.lookup(a("2a01:1::1")), 16);
  EXPECT_EQ(trie.lookup(a("2a02::1")), nullptr);
}

TEST(PrefixTrie, ExactProbe) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  EXPECT_NE(trie.exact(p("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.exact(p("10.0.0.0/9")), nullptr);
  EXPECT_EQ(trie.exact(p("11.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.128.0.0/9"), 2);
  trie.insert(p("192.0.2.0/24"), 3);
  trie.insert(p("2a01::/16"), 4);
  std::vector<std::string> seen;
  trie.for_each([&](const IpPrefix& prefix, int) { seen.push_back(prefix.to_string()); });
  ASSERT_EQ(seen.size(), 4U);
  EXPECT_EQ(seen[0], "10.0.0.0/8");
  EXPECT_EQ(seen[1], "10.128.0.0/9");
  EXPECT_EQ(seen[2], "192.0.2.0/24");
  EXPECT_EQ(seen[3], "2a01::/16");
}

/// Property check against a brute-force reference over random prefixes.
TEST(PrefixTrie, MatchesBruteForceReference) {
  util::Rng rng(4242);
  PrefixTrie<int> trie;
  std::vector<std::pair<IpPrefix, int>> reference;
  for (int i = 0; i < 300; ++i) {
    const auto base = IpAddress::v4(static_cast<std::uint32_t>(rng()));
    const auto length = static_cast<unsigned>(rng.next_in(4, 30));
    const IpPrefix prefix(base, length);
    // Skip duplicate prefixes so the reference stays unambiguous.
    const bool duplicate =
        std::any_of(reference.begin(), reference.end(),
                    [&](const auto& entry) { return entry.first == prefix; });
    if (duplicate) continue;
    trie.insert(prefix, i);
    reference.emplace_back(prefix, i);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto probe = IpAddress::v4(static_cast<std::uint32_t>(rng()));
    const int* got = trie.lookup(probe);
    // Brute force: the matching prefix with the greatest length.
    const std::pair<IpPrefix, int>* best = nullptr;
    for (const auto& entry : reference) {
      if (entry.first.contains(probe) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }
}

}  // namespace
}  // namespace cbwt::net
