#include "obs/proc_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "json_check.h"
#include "obs/metrics.h"
#include "report/json.h"

namespace cbwt::obs {
namespace {

// --- pure parsers vs canned /proc fixtures ----------------------------

constexpr std::string_view kStatusFixture =
    "Name:\tstore_scale_run\n"
    "Umask:\t0022\n"
    "VmPeak:\t  123456 kB\n"
    "VmHWM:\t   98304 kB\n"
    "VmRSS:\t   65536 kB\n"
    "Threads:\t4\n";

constexpr std::string_view kIoFixture =
    "rchar: 999999\n"
    "wchar: 888888\n"
    "syscr: 100\n"
    "syscw: 50\n"
    "read_bytes: 4096000\n"
    "write_bytes: 8192000\n"
    "cancelled_write_bytes: 0\n";

TEST(ProcParsers, StatusYieldsRssAndHwmInBytes) {
  ProcSample sample;
  parse_proc_status(kStatusFixture, sample);
  EXPECT_EQ(sample.rss_bytes, 65536u * 1024);
  EXPECT_EQ(sample.vm_hwm_bytes, 98304u * 1024);
}

TEST(ProcParsers, IoYieldsStorageLayerBytes) {
  ProcSample sample;
  parse_proc_io(kIoFixture, sample);
  EXPECT_EQ(sample.read_bytes, 4096000u);
  EXPECT_EQ(sample.write_bytes, 8192000u);
}

TEST(ProcParsers, MissingLinesLeaveFieldsZero) {
  ProcSample sample;
  parse_proc_status("Name:\tx\n", sample);
  parse_proc_io("rchar: 1\n", sample);
  EXPECT_EQ(sample.rss_bytes, 0u);
  EXPECT_EQ(sample.vm_hwm_bytes, 0u);
  EXPECT_EQ(sample.read_bytes, 0u);
  EXPECT_EQ(sample.write_bytes, 0u);
}

TEST(ProcParsers, StatHandlesParensInComm) {
  // comm is "(a) b" — the parser must anchor at the LAST ')'. Tail
  // fields 3..15: state ppid pgrp session tty tpgid flags minflt
  // cminflt majflt cmajflt utime stime.
  const std::string stat =
      "42 ((a) b) R 1 2 3 4 5 6 7 8 9 10 150 50 0 0 20 0 4 0 300\n";
  ProcSample sample;
  parse_proc_stat(stat, /*ticks_per_second=*/100, sample);
  EXPECT_EQ(sample.major_faults, 9u);
  EXPECT_DOUBLE_EQ(sample.user_cpu_seconds, 1.5);
  EXPECT_DOUBLE_EQ(sample.system_cpu_seconds, 0.5);
}

TEST(ProcParsers, StatToleratesTruncatedInput) {
  ProcSample sample;
  parse_proc_stat("42 (short) R 1 2", 100, sample);  // too few fields
  parse_proc_stat("no parens at all", 100, sample);
  parse_proc_stat("", 100, sample);
  EXPECT_EQ(sample.major_faults, 0u);
  EXPECT_DOUBLE_EQ(sample.user_cpu_seconds, 0.0);
}

// --- live /proc (Linux) -----------------------------------------------

TEST(ProcSample, LiveProcessHasResidentMemory) {
  const ProcSample sample = sample_process();
  EXPECT_GT(sample.rss_bytes, 0u);
  EXPECT_GE(sample.vm_hwm_bytes, sample.rss_bytes);
  EXPECT_GT(vm_hwm_kb(), 0u);
}

// --- background sampler -----------------------------------------------

TEST(ProcSampler, StopRecordsAtLeastOneSampleAndSetsGauges) {
  Registry registry;
  ProcSampler sampler(&registry, std::chrono::milliseconds(5));
  sampler.stop();  // even an immediate stop takes the final sample
  sampler.stop();  // idempotent

  EXPECT_GE(registry.counter_value("cbwt_obs_proc_samples_total"), 1u);
  EXPECT_GT(registry.gauge("cbwt_obs_proc_rss_bytes").value(), 0.0);
  EXPECT_GT(registry.gauge("cbwt_obs_proc_vm_hwm_bytes").value(), 0.0);
  const auto timeline = sampler.timeline();
  ASSERT_FALSE(timeline.empty());
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].ts_ns, timeline[i].ts_ns);
  }
}

TEST(ProcSampler, TimelineStaysBoundedUnderThinning) {
  Registry registry;
  constexpr std::size_t kCapacity = 4;
  ProcSampler sampler(&registry, std::chrono::milliseconds(1), kCapacity);
  // Wait for enough samples that an unbounded timeline would overflow
  // the capacity several times over.
  while (registry.counter_value("cbwt_obs_proc_samples_total") < 20) {
    std::this_thread::yield();
  }
  sampler.stop();
  const auto timeline = sampler.timeline();
  ASSERT_FALSE(timeline.empty());
  EXPECT_LE(timeline.size(), kCapacity + 1);  // +1: the final stop() sample
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].ts_ns, timeline[i].ts_ns);
  }
}

TEST(ProcSampler, NullRegistryStillKeepsTimeline) {
  ProcSampler sampler(nullptr, std::chrono::milliseconds(5));
  sampler.stop();
  EXPECT_FALSE(sampler.timeline().empty());
}

// --- timeline export --------------------------------------------------

TEST(ProcTimeline, WritesValidJsonArray) {
  ProcSample sample;
  sample.ts_ns = 1500000000;
  sample.rss_bytes = 1024;
  sample.vm_hwm_bytes = 2048;
  sample.user_cpu_seconds = 0.25;
  report::JsonWriter json;
  write_proc_timeline({sample}, json);
  const std::string text = json.str();
  EXPECT_TRUE(testing::JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"ts_seconds\":1.5"), std::string::npos);
  EXPECT_NE(text.find("\"rss_bytes\":1024"), std::string::npos);
  EXPECT_NE(text.find("\"user_cpu_seconds\":0.25"), std::string::npos);
}

}  // namespace
}  // namespace cbwt::obs
