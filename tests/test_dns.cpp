#include "dns/resolver.h"

#include <gtest/gtest.h>

#include <map>

namespace cbwt::dns {
namespace {

using world::DnsPolicy;
using world::World;
using world::WorldConfig;

const World& test_world() {
  static const World world = [] {
    WorldConfig config;
    config.seed = 555;
    config.scale = 0.01;
    config.publishers = 300;
    return world::build_world(config);
  }();
  return world;
}

TEST(Resolver, OriginForIspResolverIsHomeCountry) {
  const Resolver resolver(test_world());
  const auto origin = resolver.origin_for("DE", false);
  EXPECT_EQ(origin.client_country, "DE");
  EXPECT_FALSE(origin.via_third_party);
  const auto* de = geo::find_country("DE");
  EXPECT_NEAR(origin.effective_location.lat, de->centroid.lat, 1e-9);
}

TEST(Resolver, OriginForThirdPartyResolverMovesToAnycast) {
  const Resolver resolver(test_world());
  const auto origin = resolver.origin_for("DE", true);
  EXPECT_TRUE(origin.via_third_party);
  // German clients land on the Amsterdam anycast site.
  EXPECT_NEAR(origin.effective_location.lat, 52.4, 1e-9);
  EXPECT_NEAR(origin.effective_location.lon, 4.9, 1e-9);
}

TEST(Resolver, OriginRejectsUnknownCountry) {
  const Resolver resolver(test_world());
  EXPECT_THROW((void)resolver.origin_for("ZZ", false), std::invalid_argument);
}

TEST(Resolver, ResolveReturnsServerOfTheDomain) {
  const auto& world = test_world();
  const Resolver resolver(world);
  util::Rng rng(1);
  for (const auto& domain : world.domains()) {
    const auto answer = resolver.resolve_from(domain.id, "DE", false, rng);
    const bool known = std::find(domain.servers.begin(), domain.servers.end(),
                                 answer.server) != domain.servers.end();
    EXPECT_TRUE(known) << domain.fqdn;
    EXPECT_EQ(world.server(answer.server).ip, answer.ip);
    if (world.domains().size() > 50 && domain.id > 50) break;  // keep the test fast
  }
}

TEST(Resolver, HqOnlyPolicyStaysAtHeadquarters) {
  const auto& world = test_world();
  const Resolver resolver(world);
  util::Rng rng(2);
  for (const auto& org : world.orgs()) {
    if (org.dns_policy != DnsPolicy::HqOnly) continue;
    // Skip orgs that genuinely have no HQ deployment (fallback case).
    bool has_home = false;
    for (const auto sid : org.servers) {
      if (world.datacenter(world.server(sid).datacenter).country == org.hq_country) {
        has_home = true;
        break;
      }
    }
    if (!has_home) continue;
    const auto domain_id = org.domains.front();
    // Only domains that actually deploy at home can satisfy the policy.
    bool domain_has_home = false;
    for (const auto sid : world.domain(domain_id).servers) {
      if (world.datacenter(world.server(sid).datacenter).country == org.hq_country) {
        domain_has_home = true;
        break;
      }
    }
    if (!domain_has_home) continue;
    for (int i = 0; i < 10; ++i) {
      const auto answer = resolver.resolve_from(domain_id, "JP", false, rng);
      EXPECT_EQ(world.datacenter(world.server(answer.server).datacenter).country,
                org.hq_country);
    }
  }
}

TEST(Resolver, NearestPopPrefersCloseSites) {
  const auto& world = test_world();
  const Resolver resolver(world);
  util::Rng rng(3);
  // Aggregate over popular multi-pop orgs: German users should terminate
  // in/near Germany far more often than in North America.
  std::uint64_t near = 0;
  std::uint64_t far = 0;
  for (const auto& org : world.orgs()) {
    if (org.dns_policy != DnsPolicy::NearestPop || org.servers.size() < 5) continue;
    for (int i = 0; i < 30; ++i) {
      const auto answer = resolver.resolve_from(org.domains.front(), "DE", false, rng);
      const auto country =
          world.datacenter(world.server(answer.server).datacenter).country;
      const auto* info = geo::find_country(country);
      ASSERT_NE(info, nullptr);
      if (info->continent == geo::Continent::Europe) ++near;
      else ++far;
    }
  }
  ASSERT_GT(near + far, 100U);
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(near + far), 0.80);
}

TEST(Resolver, ServingRadiusNeverHandsOutDistantReplicas) {
  // With radius k, the answer must be one of the k nearest distinct sites.
  const auto& world = test_world();
  ResolverOptions options;
  options.serving_radius = 2;
  const Resolver resolver(world, options);
  util::Rng rng(4);
  const auto origin = resolver.origin_for("FR", false);
  for (const auto& org : world.orgs()) {
    if (org.dns_policy != DnsPolicy::NearestPop || org.servers.size() < 4) continue;
    const auto domain_id = org.domains.front();
    const auto& domain = world.domain(domain_id);
    // Compute the distinct-site delays for this domain from France.
    std::map<world::DatacenterId, double> site_delay;
    for (const auto sid : domain.servers) {
      const auto& dc = world.datacenter(world.server(sid).datacenter);
      site_delay.emplace(dc.id,
                         geo::propagation_delay_ms(origin.effective_location, dc.location));
    }
    std::vector<double> delays;
    delays.reserve(site_delay.size());
    for (const auto& [dc, delay] : site_delay) delays.push_back(delay);
    std::sort(delays.begin(), delays.end());
    const double cutoff = delays[std::min<std::size_t>(1, delays.size() - 1)];
    for (int i = 0; i < 20; ++i) {
      const auto answer = resolver.resolve(domain_id, origin, rng);
      const auto dc = world.server(answer.server).datacenter;
      EXPECT_LE(site_delay.at(dc), cutoff + 1e-9) << org.name;
    }
    break;  // one qualifying org suffices
  }
}

TEST(Resolver, DeterministicGivenRngState) {
  const auto& world = test_world();
  const Resolver resolver(world);
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  for (int i = 0; i < 50; ++i) {
    const auto domain_id = world.domains()[static_cast<std::size_t>(i) %
                                           world.domains().size()].id;
    const auto a = resolver.resolve_from(domain_id, "ES", false, rng_a);
    const auto b = resolver.resolve_from(domain_id, "ES", false, rng_b);
    EXPECT_EQ(a.server, b.server);
  }
}

TEST(Resolver, FullEcsRestoresClientLocation) {
  ResolverOptions with_ecs;
  with_ecs.ecs_adoption = 1.0;
  const Resolver resolver(test_world(), with_ecs);
  const auto origin = resolver.origin_for("DE", true);
  const auto* de = geo::find_country("DE");
  EXPECT_NEAR(origin.effective_location.lat, de->centroid.lat, 1e-9);
  EXPECT_NEAR(origin.effective_location.lon, de->centroid.lon, 1e-9);
}

TEST(Resolver, PartialEcsImprovesLocalityForPublicResolverUsers) {
  // Compare in-country termination for a Spanish public-resolver user
  // with and without ECS over popular multi-pop orgs.
  const auto& world = test_world();
  const auto count_local = [&](double adoption) {
    ResolverOptions options;
    options.ecs_adoption = adoption;
    const Resolver resolver(world, options);
    util::Rng rng(77);
    std::uint64_t local = 0;
    std::uint64_t total = 0;
    for (const auto& org : world.orgs()) {
      if (org.dns_policy != world::DnsPolicy::NearestPop || org.servers.size() < 6) {
        continue;
      }
      for (int i = 0; i < 20; ++i) {
        const auto answer = resolver.resolve_from(org.domains.front(), "ES", true, rng);
        ++total;
        if (world.datacenter(world.server(answer.server).datacenter).country == "ES") {
          ++local;
        }
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(local) / static_cast<double>(total);
  };
  EXPECT_GT(count_local(1.0), count_local(0.0));
}

TEST(Resolver, TtlFollowsPopularity) {
  world::Organization big;
  big.popularity = 0.1;
  world::Organization mid;
  mid.popularity = 0.01;
  world::Organization tail;
  tail.popularity = 0.0001;
  EXPECT_EQ(ttl_for(big), 300U);
  EXPECT_EQ(ttl_for(mid), 3600U);
  EXPECT_EQ(ttl_for(tail), 7200U);
}

/// Property sweep over origin countries: resolution invariants must hold
/// from everywhere, with either resolver type.
class ResolverPerCountry
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {};

TEST_P(ResolverPerCountry, AnswersAreAlwaysValidServersOfTheDomain) {
  const auto& [country, third_party] = GetParam();
  const auto& world = test_world();
  const Resolver resolver(world);
  util::Rng rng(util::mix64(static_cast<std::uint64_t>(country[0]) + third_party));
  const auto tracking = world.tracking_domain_ids();
  for (int i = 0; i < 40; ++i) {
    const auto domain_id = tracking[static_cast<std::size_t>(
        rng.next_below(tracking.size()))];
    const auto answer = resolver.resolve_from(domain_id, country, third_party, rng);
    const auto& domain = world.domain(domain_id);
    EXPECT_NE(std::find(domain.servers.begin(), domain.servers.end(), answer.server),
              domain.servers.end());
    EXPECT_EQ(world.server(answer.server).ip, answer.ip);
    EXPECT_GE(answer.ttl_s, 300U);
    EXPECT_LE(answer.ttl_s, 7200U);
  }
}

TEST_P(ResolverPerCountry, OriginIsWellFormed) {
  const auto& [country, third_party] = GetParam();
  const Resolver resolver(test_world());
  const auto origin = resolver.origin_for(country, third_party);
  EXPECT_EQ(origin.client_country, country);
  EXPECT_EQ(origin.via_third_party, third_party);
  EXPECT_GE(origin.effective_location.lat, -60.0);
  EXPECT_LE(origin.effective_location.lat, 72.0);
}

INSTANTIATE_TEST_SUITE_P(
    CountriesAndResolvers, ResolverPerCountry,
    ::testing::Combine(::testing::Values("DE", "ES", "GB", "GR", "CY", "PL", "BR",
                                         "US", "JP", "ZA", "RU", "AU"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<const char*, bool>>& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_public_dns" : "_isp_dns");
    });

}  // namespace
}  // namespace cbwt::dns
