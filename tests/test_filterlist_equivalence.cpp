// Property suite pinning the token-indexed Engine to ReferenceEngine —
// the pre-optimization naive matcher kept as the executable spec. A
// seeded generator produces adversarial rule corpora (anchors, wildcard
// literals, '^' separators, end anchors, $third-party, $domain=,
// exceptions, underscore hosts) and request corpora biased to collide
// with them; both engines must agree on every verdict, including which
// rule wins and from which list.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "filterlist/engine.h"
#include "filterlist/reference.h"
#include "util/prng.h"

namespace cbwt::filterlist {
namespace {

// Sanitizer builds run each rule_matches ~10x slower; shrink the corpus
// so the suite stays inside its timeout while keeping the shape.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr std::size_t kRuleCount = 1500;
constexpr std::size_t kRequestCount = 1500;
#else
constexpr std::size_t kRuleCount = 10000;
constexpr std::size_t kRequestCount = 10000;
#endif

const std::vector<std::string>& tokens() {
  static const std::vector<std::string> kTokens = {
      "ads",   "track", "pixel", "sync", "banner", "img",  "js",
      "beacon", "rtb",   "cm",    "uid",  "match",  "stat", "x1"};
  return kTokens;
}

const std::vector<std::string>& hosts() {
  static const std::vector<std::string> kHosts = {
      "ads.example.com",       "track.example.com", "cdn.example.net",
      "pixel.tracker.io",      "sync.tracker.io",   "static.site.org",
      "ad_server.example.com", "a.b.c.example.com", "example.com",
      "tracker.io",            "site.org",          "beacon.stats.net"};
  return kHosts;
}

std::string pick(util::Rng& rng, const std::vector<std::string>& pool) {
  return pool[rng.next_below(pool.size())];
}

/// One random filter line. Weighted toward anchored forms like real
/// lists (and so the reference scan bucket stays test-speed friendly).
/// Exceptions get narrow shapes — a bare @@||host^ over this small host
/// pool would suppress every verdict and make the property vacuous.
std::string random_rule(util::Rng& rng) {
  std::string rule;
  if (rng.chance(0.06)) {
    rule += "@@";
    const auto shape = rng.next_below(4);
    if (shape == 0) {
      rule += "||" + pick(rng, hosts()) + "^*" + pick(rng, tokens()) + "=" +
              pick(rng, tokens());
    } else if (shape == 1) {
      rule += "/" + pick(rng, tokens()) + "/" + pick(rng, tokens());
    } else if (shape == 2) {
      rule += "&" + pick(rng, tokens()) + "=" + pick(rng, tokens()) + "|";
    } else {
      rule += "|https://" + pick(rng, hosts()) + "/" + pick(rng, tokens());
    }
    if (rng.chance(0.3)) rule += "$third-party";
    return rule;
  }

  const auto shape = rng.next_below(10);
  if (shape < 6) {
    // Domain-anchored: ||host^ with optional tail literal.
    rule += "||" + pick(rng, hosts());
    if (rng.chance(0.8)) rule += '^';
    if (rng.chance(0.3)) rule += "*" + pick(rng, tokens());
  } else if (shape == 6) {
    rule += "|https://" + pick(rng, hosts()) + "/";
  } else if (shape == 7) {
    rule += "/" + pick(rng, tokens()) + "/";
    if (rng.chance(0.3)) rule += "*" + pick(rng, tokens()) + "^";
  } else if (shape == 8) {
    rule += "&" + pick(rng, tokens()) + "=";
    if (rng.chance(0.4)) rule += pick(rng, tokens()) + "|";
  } else {
    // Free substring, sometimes with no boundary-safe token at all so
    // the fallback buckets get exercised too.
    rule += pick(rng, tokens());
    if (rng.chance(0.5)) rule += "-" + pick(rng, tokens());
  }

  std::string options;
  if (rng.chance(0.25)) options += "third-party";
  if (rng.chance(0.15)) {
    if (!options.empty()) options += ",";
    options += "domain=" + pick(rng, hosts());
    if (rng.chance(0.5)) options += "|~" + pick(rng, hosts());
  }
  if (!options.empty()) rule += "$" + options;
  return rule;
}

RequestContext make_context(const std::string& url, const std::string& host,
                            const std::string& page_host, bool third_party) {
  RequestContext context;
  context.url = url;
  context.host = host;
  context.page_host = page_host;
  context.third_party = third_party;
  return context;
}

struct RequestStorage {
  std::string url;
  std::string host;
  std::string page_host;
  bool third_party;
};

RequestStorage random_request(util::Rng& rng) {
  RequestStorage request;
  request.host = pick(rng, hosts());
  request.url = "https://" + request.host;
  const auto segments = rng.next_below(3);
  for (std::uint64_t s = 0; s < segments; ++s) {
    request.url += "/" + pick(rng, tokens());
  }
  if (rng.chance(0.5)) {
    request.url += "?" + pick(rng, tokens()) + "=" + pick(rng, tokens());
    if (rng.chance(0.4)) request.url += "&" + pick(rng, tokens()) + "=1";
  }
  request.page_host = pick(rng, hosts());
  request.third_party = rng.chance(0.7);
  return request;
}

/// Both engines, loaded with identical lists.
struct EnginePair {
  Engine indexed;
  ReferenceEngine reference;

  void add(const std::string& name, const std::vector<std::string>& lines) {
    indexed.add_list(FilterList(name, lines));
    reference.add_list(FilterList(name, lines));
  }

  /// Asserts both verdicts are identical (match bit, winning rule text,
  /// winning list) for one request.
  void expect_agree(const RequestContext& context) const {
    const MatchResult got = indexed.match(context);
    const MatchResult want = reference.match(context);
    ASSERT_EQ(got.matched, want.matched)
        << "url=" << context.url << " page=" << context.page_host
        << " 3p=" << context.third_party
        << (want.matched ? " reference rule: " + want.rule->text
                         : " reference: no match, indexed rule: " + got.rule->text);
    if (want.matched) {
      ASSERT_EQ(got.rule->text, want.rule->text) << "url=" << context.url;
      ASSERT_EQ(got.list, want.list) << "url=" << context.url;
    }
  }
};

TEST(EngineEquivalence, RandomCorpusAgreesWithReference) {
  util::Rng rng(0xF117E121ULL);

  std::vector<std::string> easylist;
  std::vector<std::string> easyprivacy;
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    (i % 2 == 0 ? easylist : easyprivacy).push_back(random_rule(rng));
  }

  EnginePair engines;
  engines.add("easylist", easylist);
  engines.add("easyprivacy", easyprivacy);
  ASSERT_EQ(engines.indexed.total_rules(), engines.reference.total_rules());

  std::size_t matched = 0;
  for (std::size_t i = 0; i < kRequestCount; ++i) {
    const RequestStorage request = random_request(rng);
    const RequestContext context = make_context(request.url, request.host,
                                                request.page_host, request.third_party);
    engines.expect_agree(context);
    if (engines.indexed.match(context).matched) ++matched;
  }
  // The corpus must actually exercise both verdicts; an all-miss (or
  // all-hit) run would vacuously pass.
  EXPECT_GT(matched, kRequestCount / 20);
  EXPECT_LT(matched, kRequestCount);
}

TEST(EngineEquivalence, HandPickedEdgeCases) {
  EnginePair engines;
  engines.add("edge", {
                          "||ads.example.com^",
                          "||ad_server.example.com^",
                          "||example.com^*track",
                          "|https://pixel.tracker.io/",
                          "/beacon/*img^",
                          "&uid=",
                          "track-pixel",
                          "sync|",
                          "||tracker.io^$third-party",
                          "||site.org^$domain=example.com|~a.b.c.example.com",
                          "@@||ads.example.com/allowed/$third-party",
                          "@@&uid=optout",
                      });

  const std::vector<RequestStorage> requests = {
      {"https://ads.example.com/x", "ads.example.com", "news.org", true},
      {"https://ads.example.com/allowed/x", "ads.example.com", "news.org", true},
      {"https://ad_server.example.com/b", "ad_server.example.com", "news.org", true},
      {"https://sub.example.com/p?track=1", "sub.example.com", "news.org", true},
      {"https://pixel.tracker.io/", "pixel.tracker.io", "news.org", true},
      {"https://x.net/beacon/big/img/", "x.net", "news.org", true},
      {"https://x.net/a?uid=7", "x.net", "news.org", true},
      {"https://x.net/a?uid=optout", "x.net", "news.org", true},
      {"https://y.net/track-pixel.gif", "y.net", "news.org", true},
      {"https://y.net/cookiesync", "y.net", "news.org", true},
      {"https://tracker.io/x", "tracker.io", "news.org", false},
      {"https://tracker.io/x", "tracker.io", "news.org", true},
      {"https://site.org/w", "site.org", "example.com", true},
      {"https://site.org/w", "site.org", "a.b.c.example.com", true},
      {"https://site.org/w", "site.org", "other.net", true},
  };
  for (const auto& request : requests) {
    engines.expect_agree(make_context(request.url, request.host, request.page_host,
                                      request.third_party));
  }
}

/// Streaming-overflow path: URLs with more tokens than MatchScratch's
/// stack buffer must still probe every token bucket.
TEST(EngineEquivalence, LongUrlsOverflowTokenBuffer) {
  EnginePair engines;
  // The needle token is rare, so it indexes the rule; it appears beyond
  // the 128-token buffer in the request URL.
  engines.add("long", {"/needletoken/", "@@/needletoken/?consent"});

  std::string url = "https://long.example.com/p";
  for (int i = 0; i < 200; ++i) url += "/seg" + std::to_string(i);
  const std::string hit_url = url + "/needletoken/x";
  const std::string allow_url = url + "/needletoken/?consent=1";

  for (const std::string& candidate : {url, hit_url, allow_url}) {
    engines.expect_agree(
        make_context(candidate, "long.example.com", "news.org", true));
  }
}

}  // namespace
}  // namespace cbwt::filterlist
