#include "classify/classifier.h"

#include <gtest/gtest.h>

#include "classify/match_cache.h"
#include "filterlist/generate.h"

namespace cbwt::classify {
namespace {

/// Builds a tiny hand-made dataset exercising each classification stage.
browser::ExtensionDataset hand_dataset() {
  browser::ExtensionDataset dataset;
  const auto add = [&](std::string url, std::string referrer) {
    browser::ThirdPartyRequest request;
    request.url = std::move(url);
    request.referrer = std::move(referrer);
    dataset.requests.push_back(std::move(request));
  };
  // 0: listed ad request (stage 1)
  add("https://ads.known.com/tag.js?v=1", "https://pub.com/");
  // 1: chained bid with args, referrer = request 0 (stage 2)
  add("https://x.dsp.com/bid?auction=1&price=2", "https://ads.known.com/tag.js?v=1");
  // 2: second-level sync, referrer = request 1 (stage 2, second pass)
  add("https://sync.cs.com/pixel?uid=9", "https://x.dsp.com/bid?auction=1&price=2");
  // 3: keyword URL with unknown referrer (stage 3)
  add("https://cm.other.com/pixel?usermatch=1&uid=3", "https://nowhere.com/");
  // 4: clean request (no stage)
  add("https://widget.chat.com/embed?site=pub.com", "https://pub.com/");
  // 5: chained but without arguments -> not promoted by stage 2
  add("https://x.dsp.com/creative", "https://ads.known.com/tag.js?v=1");
  return dataset;
}

Classifier hand_classifier(ClassifierConfig config = {}) {
  filterlist::Engine engine;
  engine.add_list(filterlist::FilterList("easylist", {"||ads.known.com^"}));
  return Classifier(std::move(engine), std::move(config));
}

TEST(Classifier, StageAttribution) {
  const auto dataset = hand_dataset();
  const auto outcomes = hand_classifier().run(dataset);
  ASSERT_EQ(outcomes.size(), 6U);
  EXPECT_EQ(outcomes[0].method, Method::AbpList);
  EXPECT_EQ(outcomes[0].list, "easylist");
  EXPECT_EQ(outcomes[1].method, Method::Referrer);
  EXPECT_EQ(outcomes[2].method, Method::Referrer);  // needs the fixpoint pass
  EXPECT_EQ(outcomes[3].method, Method::Keyword);
  EXPECT_EQ(outcomes[4].method, Method::None);
  EXPECT_EQ(outcomes[5].method, Method::None);
}

TEST(Classifier, ReferrerStageCanBeDisabled) {
  ClassifierConfig config;
  config.enable_referrer_stage = false;
  const auto outcomes = hand_classifier(std::move(config)).run(hand_dataset());
  EXPECT_EQ(outcomes[1].method, Method::None);
  // Request 2 now relies on keywords only; "uid" is not a keyword.
  EXPECT_EQ(outcomes[2].method, Method::None);
  EXPECT_EQ(outcomes[3].method, Method::Keyword);
}

TEST(Classifier, KeywordStageCanBeDisabled) {
  ClassifierConfig config;
  config.enable_keyword_stage = false;
  const auto outcomes = hand_classifier(std::move(config)).run(hand_dataset());
  EXPECT_EQ(outcomes[3].method, Method::None);
}

TEST(Classifier, KeywordMatchesArgumentKeysExactly) {
  browser::ExtensionDataset dataset;
  browser::ThirdPartyRequest request;
  // "cm" must match as a key, not as a substring of "cmx" or of a value.
  request.url = "https://a.com/p?cmx=1&v=cm";
  request.referrer = "https://nowhere.com/";
  dataset.requests.push_back(request);
  request.url = "https://a.com/p?cm=1";
  dataset.requests.push_back(request);
  const auto outcomes = hand_classifier().run(dataset);
  EXPECT_EQ(outcomes[0].method, Method::None);
  EXPECT_EQ(outcomes[1].method, Method::Keyword);
}

TEST(Classifier, ChainDepthBeyondTwoIsReached) {
  browser::ExtensionDataset dataset;
  const auto add = [&](std::string url, std::string referrer) {
    browser::ThirdPartyRequest request;
    request.url = std::move(url);
    request.referrer = std::move(referrer);
    dataset.requests.push_back(std::move(request));
  };
  add("https://ads.known.com/t.js?v=1", "https://pub.com/");
  add("https://a.com/x?d=1", "https://ads.known.com/t.js?v=1");
  add("https://b.com/x?d=2", "https://a.com/x?d=1");
  add("https://c.com/x?d=3", "https://b.com/x?d=2");
  add("https://d.com/x?d=4", "https://c.com/x?d=3");
  const auto outcomes = hand_classifier().run(dataset);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(outcomes[i].method, Method::Referrer) << i;
  }
}

TEST(Classifier, ToStringCoversAllMethods) {
  EXPECT_EQ(to_string(Method::None), "none");
  EXPECT_EQ(to_string(Method::AbpList), "abp-list");
  EXPECT_EQ(to_string(Method::Referrer), "semi-referrer");
  EXPECT_EQ(to_string(Method::Keyword), "semi-keyword");
  EXPECT_FALSE(is_tracking(Method::None));
  EXPECT_TRUE(is_tracking(Method::Keyword));
}

TEST(Summarize, CountsDistinctEntities) {
  const auto dataset = hand_dataset();
  const auto outcomes = hand_classifier().run(dataset);
  const auto summary = summarize(dataset, outcomes);
  EXPECT_EQ(summary.abp.total_requests, 1U);
  EXPECT_EQ(summary.semi.total_requests, 3U);
  EXPECT_EQ(summary.total.total_requests, 4U);
  EXPECT_EQ(summary.untracked_requests, 2U);
  EXPECT_EQ(summary.abp.fqdns, 1U);
  EXPECT_EQ(summary.semi.fqdns, 3U);
  EXPECT_EQ(summary.total.fqdns, 4U);
  EXPECT_GE(summary.total.registrables, 4U);
  EXPECT_EQ(summary.total.unique_urls, 4U);
}

TEST(Score, PrecisionRecallMath) {
  Score score;
  score.true_positives = 8;
  score.false_positives = 2;
  score.false_negatives = 8;
  EXPECT_DOUBLE_EQ(score.precision(), 0.8);
  EXPECT_DOUBLE_EQ(score.recall(), 0.5);
  const Score empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
}

// ---------------------------------------------------------------- pipeline

class PipelineClassification : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 4711;
    config.scale = 0.01;
    world_ = new world::World(world::build_world(config));
    resolver_ = new dns::Resolver(*world_);
    util::Rng collect_rng(1);
    browser::CollectorConfig collector;
    dataset_ = new browser::ExtensionDataset(browser::collect_extension_dataset(
        *world_, *resolver_, collector, collect_rng));
    util::Rng list_rng(2);
    const auto lists = filterlist::generate_lists(*world_, list_rng);
    filterlist::Engine engine;
    engine.add_list(filterlist::FilterList("easylist", lists.easylist));
    engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    classifier_ = new Classifier(std::move(engine));
    outcomes_ = new std::vector<Outcome>(classifier_->run(*dataset_));
  }
  static void TearDownTestSuite() {
    delete outcomes_;
    delete classifier_;
    delete dataset_;
    delete resolver_;
    delete world_;
  }
  static world::World* world_;
  static dns::Resolver* resolver_;
  static browser::ExtensionDataset* dataset_;
  static Classifier* classifier_;
  static std::vector<Outcome>* outcomes_;
};

world::World* PipelineClassification::world_ = nullptr;
dns::Resolver* PipelineClassification::resolver_ = nullptr;
browser::ExtensionDataset* PipelineClassification::dataset_ = nullptr;
Classifier* PipelineClassification::classifier_ = nullptr;
std::vector<Outcome>* PipelineClassification::outcomes_ = nullptr;

TEST_F(PipelineClassification, SemiStageRoughlyDoublesDetection) {
  const auto summary = summarize(*dataset_, *outcomes_);
  ASSERT_GT(summary.abp.total_requests, 0U);
  const double ratio = static_cast<double>(summary.semi.total_requests) /
                       static_cast<double>(summary.abp.total_requests);
  // Paper Table 2: semi adds ~80% on top of the ABP lists (2.45M vs 1.96M).
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 1.6);
}

TEST_F(PipelineClassification, HighPrecisionGoodRecallAgainstTruth) {
  const auto score = score_against_truth(*world_, *dataset_, *outcomes_);
  EXPECT_GT(score.precision(), 0.98);  // clean services almost never flagged
  EXPECT_GT(score.recall(), 0.90);     // most tracking flows caught
}

// ------------------------------------------------------------- match cache

TEST(MatchCache, LruEvictsOldestWithinShard) {
  MatchCache cache(/*capacity=*/2, /*shards=*/1);
  filterlist::MatchResult miss;
  filterlist::MatchResult hit;
  hit.matched = true;
  hit.list = "easylist";

  cache.insert(1, hit);
  cache.insert(2, miss);
  ASSERT_TRUE(cache.lookup(1).has_value());  // refresh: 2 is now LRU
  cache.insert(3, miss);                     // evicts 2
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());

  const auto cached = cache.lookup(1);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->matched);
  EXPECT_EQ(cached->list, "easylist");
  EXPECT_EQ(cache.hits(), 4U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST(MatchCache, InsertRefreshesExistingKey) {
  MatchCache cache(/*capacity=*/8, /*shards=*/4);
  filterlist::MatchResult first;
  first.matched = false;
  filterlist::MatchResult second;
  second.matched = true;
  cache.insert(42, first);
  cache.insert(42, second);
  const auto cached = cache.lookup(42);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->matched);
}

TEST_F(PipelineClassification, MatchCacheDoesNotChangeOutcomes) {
  ClassifierConfig config;
  config.match_cache_capacity = 4096;
  util::Rng list_rng(2);
  const auto lists = filterlist::generate_lists(*world_, list_rng);
  filterlist::Engine engine;
  engine.add_list(filterlist::FilterList("easylist", lists.easylist));
  engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
  const Classifier cached(std::move(engine), config);

  obs::Registry registry;
  const auto serial = cached.run(*dataset_, nullptr, &registry);
  ASSERT_EQ(serial.size(), outcomes_->size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].method, (*outcomes_)[i].method) << "request " << i;
    EXPECT_EQ(serial[i].list, (*outcomes_)[i].list) << "request " << i;
  }
  // Every stage-1 probe is either a hit or a miss, and the dataset's URL
  // repetition must produce actual hits for the cache to be worth it.
  const auto hits = registry.counter("cbwt_classify_cache_hits_total").value();
  const auto misses = registry.counter("cbwt_classify_cache_misses_total").value();
  EXPECT_EQ(hits + misses, dataset_->requests.size());
  EXPECT_GT(hits, 0U);

  runtime::ThreadPool pool(4);
  const auto threaded = cached.run(*dataset_, &pool);
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    ASSERT_EQ(threaded[i].method, (*outcomes_)[i].method) << "request " << i;
  }
}

TEST_F(PipelineClassification, ListOnlyRecallIsMuchLower) {
  ClassifierConfig config;
  config.enable_referrer_stage = false;
  config.enable_keyword_stage = false;
  util::Rng list_rng(2);
  const auto lists = filterlist::generate_lists(*world_, list_rng);
  filterlist::Engine engine;
  engine.add_list(filterlist::FilterList("easylist", lists.easylist));
  engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
  const Classifier list_only(std::move(engine), config);
  const auto outcomes = list_only.run(*dataset_);
  const auto full_score = score_against_truth(*world_, *dataset_, *outcomes_);
  const auto list_score = score_against_truth(*world_, *dataset_, outcomes);
  EXPECT_LT(list_score.recall(), full_score.recall() - 0.2);
}

}  // namespace
}  // namespace cbwt::classify
