#include "fault/fault.h"
#include "fault/retry.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fault_check.h"
#include "geoloc/active.h"
#include "obs/metrics.h"
#include "world/world.h"

namespace cbwt::fault {
namespace {

// --- FaultPlan -------------------------------------------------------

TEST(FaultPlan, UniformSplitsRateAcrossKinds) {
  const auto plan = FaultPlan::uniform(7, 0.2);
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.default_rates.total(), 0.2);
  EXPECT_DOUBLE_EQ(plan.default_rates.timeout, 0.05);
  // Rate zero is the disabled plan, not a plan that faults nothing by luck.
  EXPECT_FALSE(FaultPlan::uniform(7, 0.0).enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());
}

TEST(FaultPlan, SiteOverridesShadowDefaults) {
  FaultPlan plan;
  plan.site_rates["dns"] = {.timeout = 0.5};
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.rates_for(sites::kDns).timeout, 0.5);
  // Unlisted sites fall back to the (zero) defaults.
  EXPECT_FALSE(plan.rates_for(sites::kPdns).any());
  EXPECT_FALSE(plan.site(sites::kGeoProbe).rates.any());
  // Site hashes are stable and distinct per label.
  EXPECT_EQ(plan.site(sites::kDns).hash, site_hash("dns"));
  EXPECT_NE(site_hash("dns"), site_hash("pdns"));
}

TEST(FaultPlan, FromEnvParsesRateAndSeed) {
  ASSERT_EQ(::setenv("CBWT_FAULT_RATE", "0.3", 1), 0);
  ASSERT_EQ(::setenv("CBWT_FAULT_SEED", "42", 1), 0);
  const auto plan = FaultPlan::from_env();
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.default_rates.total(), 0.3);

  ASSERT_EQ(::setenv("CBWT_FAULT_RATE", "0", 1), 0);
  EXPECT_FALSE(FaultPlan::from_env().enabled());
  ASSERT_EQ(::unsetenv("CBWT_FAULT_RATE"), 0);
  ASSERT_EQ(::unsetenv("CBWT_FAULT_SEED"), 0);
  EXPECT_FALSE(FaultPlan::from_env().enabled());
}

// --- decide: the stateless core --------------------------------------

TEST(Decide, DeterministicPureFunction) {
  const auto plan = FaultPlan::uniform(0xFA, 0.25);
  const Site site = plan.site(sites::kDns);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(decide(plan.seed, site, key, 0), decide(plan.seed, site, key, 0));
    // Attempts index independent streams: the retry of a faulted attempt
    // is a fresh draw, not a replay.
    (void)decide(plan.seed, site, key, 1);
  }
  // Different sites and seeds decorrelate.
  const Site other = plan.site(sites::kPdns);
  std::size_t differing = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (decide(plan.seed, site, key, 0) != decide(plan.seed, other, key, 0)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(Decide, FaultSetsNestAcrossRates) {
  // A call faulted at rate r stays faulted at every rate >= r: the
  // decision uniform is rate-independent and the faulted interval only
  // widens. This is the root of monotone degradation.
  const std::array<std::uint64_t, 3> seeds = {1, 0xFA017, 20180901};
  const std::array<double, 3> rates = {0.05, 0.2, 0.6};
  for (const auto seed : seeds) {
    for (std::size_t lo = 0; lo < rates.size(); ++lo) {
      for (std::size_t hi = lo + 1; hi < rates.size(); ++hi) {
        const auto low = FaultPlan::uniform(seed, rates[lo]).site(sites::kGeoProbe);
        const auto high = FaultPlan::uniform(seed, rates[hi]).site(sites::kGeoProbe);
        for (std::uint64_t key = 0; key < 2000; ++key) {
          if (decide(seed, low, key, 0) != FaultKind::None) {
            EXPECT_NE(decide(seed, high, key, 0), FaultKind::None)
                << "seed " << seed << " key " << key;
          }
        }
      }
    }
  }
}

TEST(Decide, EmpiricalRateMatchesPlan) {
  const double rate = 0.3;
  const auto plan = FaultPlan::uniform(99, rate);
  const Site site = plan.site(sites::kNetflowExport);
  std::size_t faulted = 0;
  constexpr std::size_t kKeys = 20000;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    if (decide(plan.seed, site, key, 0) != FaultKind::None) ++faulted;
  }
  const double observed = static_cast<double>(faulted) / kKeys;
  EXPECT_NEAR(observed, rate, 0.02);
}

// --- fate_of ---------------------------------------------------------

TEST(FateOf, ZeroRatesShortCircuitToFreeSuccess) {
  const FaultPlan plan;
  const auto fate = fate_of(plan, plan.site(sites::kDns), 1, RetryPolicy{});
  EXPECT_TRUE(fate.ok());
  EXPECT_EQ(fate.attempts, 1u);
  EXPECT_EQ(fate.injected, 0u);
  EXPECT_DOUBLE_EQ(fate.latency_ms, 0.0);
}

TEST(FateOf, CertainErrorExhaustsEveryAttempt) {
  FaultPlan plan;
  plan.default_rates.error = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  const auto fate = fate_of(plan, plan.site(sites::kDns), 5, policy);
  EXPECT_FALSE(fate.ok());
  EXPECT_EQ(fate.failure, FaultKind::Error);
  EXPECT_EQ(fate.attempts, 4u);
  EXPECT_EQ(fate.injected, 4u);
  // 4 error attempts + 3 jittered backoffs: latency exceeds the attempts
  // alone and is reproducible.
  EXPECT_GT(fate.latency_ms, 4.0 * policy.base_latency_ms);
  const auto again = fate_of(plan, plan.site(sites::kDns), 5, policy);
  EXPECT_DOUBLE_EQ(again.latency_ms, fate.latency_ms);
}

TEST(FateOf, StaleDataSucceedsButFlags) {
  FaultPlan plan;
  plan.default_rates.stale = 1.0;
  const auto fate = fate_of(plan, plan.site(sites::kPdns), 3, RetryPolicy{});
  EXPECT_TRUE(fate.ok());
  EXPECT_TRUE(fate.stale);
  EXPECT_EQ(fate.attempts, 1u);
  EXPECT_EQ(fate.injected, 1u);
}

TEST(FateOf, SlowResponseCanBlowTheDeadline) {
  FaultPlan plan;
  plan.default_rates.slow = 1.0;
  RetryPolicy relaxed;
  const auto late_but_ok = fate_of(plan, plan.site(sites::kDns), 9, relaxed);
  EXPECT_TRUE(late_but_ok.ok());
  EXPECT_GE(late_but_ok.latency_ms, relaxed.slow_penalty_ms);

  RetryPolicy strict = relaxed;
  strict.deadline_ms = relaxed.slow_penalty_ms / 2.0;
  const auto blown = fate_of(plan, plan.site(sites::kDns), 9, strict);
  EXPECT_FALSE(blown.ok());
  EXPECT_EQ(blown.failure, FaultKind::Timeout);
}

TEST(FateOf, DeadlineBoundsRetries) {
  FaultPlan plan;
  plan.default_rates.timeout = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.deadline_ms = policy.attempt_timeout_ms * 2.5;
  const auto fate = fate_of(plan, plan.site(sites::kDns), 11, policy);
  EXPECT_FALSE(fate.ok());
  EXPECT_EQ(fate.failure, FaultKind::Timeout);
  EXPECT_LT(fate.attempts, 10u);  // the budget ran out first
}

// --- CircuitBreaker --------------------------------------------------

TEST(CircuitBreaker, ClosedToOpenToHalfOpenToClosed) {
  CircuitBreaker breaker(BreakerPolicy{.failure_threshold = 3, .open_calls = 2});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.on_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  // Two rejections serve the cooldown; the second arms the probe.
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  // The half-open probe is allowed through; success closes the breaker.
  EXPECT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
}

TEST(CircuitBreaker, FailedProbeReopens) {
  CircuitBreaker breaker(BreakerPolicy{.failure_threshold = 1, .open_calls = 1});
  EXPECT_TRUE(breaker.allow());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());  // cooldown served, probe armed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.on_failure();  // probe failed: straight back to open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(to_string(breaker.state()), "open");
}

// --- Retrier ---------------------------------------------------------

TEST(Retrier, DisabledIsAFreeSuccessPath) {
  Retrier retrier;  // no plan at all
  const auto fate = retrier.call(1, 2);
  EXPECT_TRUE(fate.ok());
  EXPECT_EQ(retrier.stats().calls, 0u);

  // A zero-rate plan with a registry attached must not register any
  // cbwt_fault_* metric names: byte-identical-registry contract.
  obs::Registry registry;
  const auto disabled_plan = FaultPlan::uniform(1, 0.0);
  Retrier zero(&disabled_plan, sites::kDns, {}, {}, &registry);
  EXPECT_FALSE(zero.enabled());
  (void)zero.call(1, 2);
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.histograms().empty());
}

TEST(Retrier, BreakerOpensUnderPersistentFailureAndCounts) {
  FaultPlan plan;
  plan.default_rates.error = 1.0;
  obs::Registry registry;
  const BreakerPolicy breaker{.failure_threshold = 2, .open_calls = 3};
  Retrier retrier(&plan, sites::kDns, RetryPolicy{.max_attempts = 2}, breaker,
                  &registry);
  ASSERT_TRUE(retrier.enabled());

  // Two exhausted calls open the endpoint's breaker...
  EXPECT_FALSE(retrier.call(/*endpoint=*/7, /*key=*/0).ok());
  EXPECT_FALSE(retrier.call(7, 1).ok());
  EXPECT_EQ(retrier.breaker(7).state(), CircuitBreaker::State::Open);
  // ...the next three calls are rejected without consuming attempts...
  for (std::uint64_t key = 2; key < 5; ++key) {
    const auto fate = retrier.call(7, key);
    EXPECT_TRUE(fate.breaker_rejected);
    EXPECT_EQ(fate.attempts, 0u);
  }
  // ...while an unrelated endpoint still gets full service.
  EXPECT_EQ(retrier.call(8, 0).attempts, 2u);

  const auto& stats = retrier.stats();
  EXPECT_EQ(stats.calls, 6u);
  EXPECT_EQ(stats.exhausted, 3u);
  EXPECT_EQ(stats.breaker_rejected, 3u);
  EXPECT_EQ(stats.retried, 3u);   // one retry per non-rejected call
  EXPECT_EQ(stats.injected, 6u);  // two faulted attempts per non-rejected call
  EXPECT_EQ(registry.counter_value("cbwt_fault_dns_exhausted_total"), 3u);
  EXPECT_EQ(registry.counter_value("cbwt_fault_dns_breaker_rejected_total"), 3u);
  retrier.count_degraded(3);
  EXPECT_EQ(registry.counter_value("cbwt_fault_dns_degraded_total"), 3u);
}

// --- Probe-loss properties (geolocation) ------------------------------

class FaultWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 9001;
    config.scale = 0.01;
    config.publishers = 300;
    world_ = new world::World(world::build_world(config));
    util::Rng mesh_rng(1);
    mesh_ = new geoloc::ProbeMesh(geoloc::MeshConfig{}, mesh_rng);
  }
  static void TearDownTestSuite() {
    delete mesh_;
    delete world_;
  }
  static world::World* world_;
  static geoloc::ProbeMesh* mesh_;
};

world::World* FaultWorldTest::world_ = nullptr;
geoloc::ProbeMesh* FaultWorldTest::mesh_ = nullptr;

TEST_F(FaultWorldTest, LocatedCountMonotoneInProbeLossRate) {
  constexpr std::uint64_t kMeasureSeed = 1234;
  constexpr std::size_t kIps = 120;
  const std::array<double, 5> rates = {0.0, 0.05, 0.15, 0.35, 0.6};
  std::vector<std::size_t> counts;
  for (const double rate : rates) {
    counts.push_back(fault_check::located_count(
        *world_, *mesh_, fault_check::loss_plan(0xFA017, rate), kIps, kMeasureSeed));
  }
  // Rate 0 locates everything this mesh can locate; total loss locates
  // nothing below quorum.
  EXPECT_EQ(counts.front(),
            fault_check::located_count(*world_, *mesh_, FaultPlan{}, kIps, kMeasureSeed));
  fault_check::expect_monotone_non_increasing<std::size_t>(counts, rates);
  EXPECT_EQ(fault_check::located_count(*world_, *mesh_, fault_check::loss_plan(0xFA017, 1.0),
                                       kIps, kMeasureSeed),
            0u);
}

TEST_F(FaultWorldTest, LossIsAppliedAfterMeasurementSoVerdictsDegradeGracefully) {
  // At a moderate loss rate, every still-located verdict must be backed
  // by a surviving panel >= quorum, and lost_probes must be reported.
  const auto plan = fault_check::loss_plan(7, 0.3);
  geoloc::ActiveGeolocatorOptions options;
  const geoloc::ActiveGeolocator locator(*world_, *mesh_, options);
  std::size_t with_losses = 0;
  std::size_t checked = 0;
  for (const auto& server : world_->servers()) {
    if (checked++ >= 50) break;
    util::Rng rng(util::mix64(1234 ^ server.ip.hash()));
    const auto estimate = locator.locate(server.ip, rng, &plan);
    if (estimate.lost_probes > 0) ++with_losses;
    const std::uint32_t survivors =
        options.probes_per_measurement - estimate.lost_probes;
    if (!estimate.country.empty()) {
      EXPECT_GE(survivors, options.quorum);
    }
  }
  EXPECT_GT(with_losses, 0u);
}

TEST_F(FaultWorldTest, SurvivingProbeSetsNestAcrossRates) {
  // Scenario sweep: at any (seed, pair of rates), a panel slot that
  // survives the higher loss rate also survives the lower one.
  const std::array<std::uint64_t, 2> seeds = {3, 0xFA017};
  const std::array<double, 3> rates = {0.1, 0.3, 0.7};
  const std::uint64_t key = world_->servers().front().ip.hash();
  for (const auto seed : seeds) {
    for (std::size_t lo = 0; lo < rates.size(); ++lo) {
      for (std::size_t hi = lo + 1; hi < rates.size(); ++hi) {
        const auto low = fault_check::loss_plan(seed, rates[lo]).site(sites::kGeoProbe);
        const auto high = fault_check::loss_plan(seed, rates[hi]).site(sites::kGeoProbe);
        for (std::uint32_t slot = 0; slot < 100; ++slot) {
          const bool lost_low = decide(seed, low, key, slot) != FaultKind::None;
          const bool lost_high = decide(seed, high, key, slot) != FaultKind::None;
          if (lost_low) {
            EXPECT_TRUE(lost_high);
          }
        }
      }
    }
  }
}

// --- End-to-end chaos studies ----------------------------------------

/// Determinism under fault: a fixed (study seed, plan) yields the same
/// outcome — study outputs AND fault counters — at threads 1/2/8.
class ChaosThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChaosThreadSweep, MatchesSerialReferenceUnderFaults) {
  const auto plan = FaultPlan::uniform(0xFA017, 0.2);
  const auto reference = fault_check::run_chaos_study(20180901, 1, plan);
  const auto candidate = fault_check::run_chaos_study(20180901, GetParam(), plan);
  fault_check::expect_same_outcome(candidate, reference, "threads vs serial");
  // The plan is live: the run must actually have injected something.
  EXPECT_FALSE(reference.fault_counters.empty());
  std::uint64_t injected = 0;
  for (const auto& [name, value] : reference.fault_counters) {
    if (name.ends_with("_injected_total")) injected += value;
  }
  EXPECT_GT(injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ChaosThreadSweep, ::testing::Values(2u, 8u),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(ChaosStudy, RateZeroIsByteIdenticalToNoPlan) {
  // Zero-cost default: a rate-0 plan takes exactly the fault-free code
  // path. Outputs match and no cbwt_fault_* metric name is ever created.
  const auto without = fault_check::run_chaos_study(20180901, 1, FaultPlan{}, 64);
  const auto zero =
      fault_check::run_chaos_study(20180901, 1, FaultPlan::uniform(0xDEAD, 0.0), 64);
  fault_check::expect_same_outcome(zero, without, "rate-0 vs no plan");
  EXPECT_TRUE(without.fault_counters.empty());
  EXPECT_TRUE(zero.fault_counters.empty());
  // The reports themselves embed wall-clock span timings, so compare the
  // structural claim only: both runs report the fault layer as disabled.
  EXPECT_NE(zero.run_report.find("\"fault\":{\"enabled\":false}"), std::string::npos);
  EXPECT_NE(without.run_report.find("\"fault\":{\"enabled\":false}"), std::string::npos);
}

TEST(ChaosStudy, GracefulDegradationEndToEnd) {
  // The CI chaos-smoke entry point: rate and seed come from the
  // environment (CBWT_FAULT_RATE / CBWT_FAULT_SEED) when set, and the
  // run report can be published as an artifact via CBWT_FAULT_REPORT.
  auto plan = FaultPlan::from_env();
  if (!plan.enabled()) plan = FaultPlan::uniform(0xC0FFEE, 0.2);
  const auto outcome = fault_check::run_chaos_study(20180901, 2, plan);

  // The pipeline survived and stayed internally consistent.
  EXPECT_GT(outcome.exported_records, 0u);
  EXPECT_EQ(outcome.records_seen + outcome.dropped_records, outcome.exported_records);
  EXPECT_LE(outcome.matched_records, outcome.internal_records);
  EXPECT_LE(outcome.internal_records, outcome.records_seen);
  EXPECT_GT(outcome.dropped_records, 0u);  // export loss actually happened
  EXPECT_FALSE(outcome.completed_tracker_ips.empty());
  EXPECT_LE(outcome.located, outcome.geo_verdicts.size());

  // Degradation is visible in the fault counters and the run report.
  std::uint64_t degraded = 0;
  for (const auto& [name, value] : outcome.fault_counters) {
    if (name.ends_with("_degraded_total")) degraded += value;
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_NE(outcome.run_report.find("\"fault\""), std::string::npos);
  EXPECT_NE(outcome.run_report.find("cbwt_fault_"), std::string::npos);

  if (const char* path = std::getenv("CBWT_FAULT_REPORT")) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << outcome.run_report;
  }
}

}  // namespace
}  // namespace cbwt::fault
