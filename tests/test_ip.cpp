#include "net/ip.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace cbwt::net {
namespace {

TEST(IpAddress, ParseV4) {
  const auto ip = IpAddress::parse("192.0.2.1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->is_v4());
  EXPECT_EQ(ip->v4_value(), 0xC0000201U);
  EXPECT_EQ(ip->to_string(), "192.0.2.1");
}

TEST(IpAddress, ParseV4Invalid) {
  EXPECT_FALSE(IpAddress::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1..2.3").has_value());
}

TEST(IpAddress, ParseV6Full) {
  const auto ip = IpAddress::parse("2a01:db8:0:1:2:3:4:5");
  ASSERT_TRUE(ip.has_value());
  EXPECT_FALSE(ip->is_v4());
  EXPECT_EQ(ip->hi(), 0x2A010DB800000001ULL);
  EXPECT_EQ(ip->lo(), 0x0002000300040005ULL);
}

TEST(IpAddress, ParseV6Compressed) {
  const auto ip = IpAddress::parse("2a01::5");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->hi(), 0x2A01000000000000ULL);
  EXPECT_EQ(ip->lo(), 5ULL);
}

TEST(IpAddress, ParseV6Invalid) {
  EXPECT_FALSE(IpAddress::parse("1:2:3").has_value());
  EXPECT_FALSE(IpAddress::parse("::1::2").has_value());
  EXPECT_FALSE(IpAddress::parse("12345::").has_value());
  EXPECT_FALSE(IpAddress::parse("g::1").has_value());
}

TEST(IpAddress, V6RoundTrip) {
  for (const char* text : {"2a01::5", "::", "::1", "1:2:3:4:5:6:7:8", "ff00::"}) {
    const auto ip = IpAddress::parse(text);
    ASSERT_TRUE(ip.has_value()) << text;
    const auto again = IpAddress::parse(ip->to_string());
    ASSERT_TRUE(again.has_value()) << ip->to_string();
    EXPECT_EQ(*ip, *again) << text << " -> " << ip->to_string();
  }
}

TEST(IpAddress, OrderingSeparatesFamilies) {
  const auto v4 = IpAddress::v4(0xFFFFFFFFU);
  const auto v6 = IpAddress::v6(0, 0);
  EXPECT_LT(v4, v6);  // all v4 sort before all v6
}

TEST(IpAddress, BitIndexing) {
  const auto ip = IpAddress::v4(0x80000001U);
  EXPECT_TRUE(ip.bit(0));
  EXPECT_FALSE(ip.bit(1));
  EXPECT_TRUE(ip.bit(31));
  const auto v6 = IpAddress::v6(1ULL << 63, 1);
  EXPECT_TRUE(v6.bit(0));
  EXPECT_TRUE(v6.bit(127));
  EXPECT_FALSE(v6.bit(64));
}

TEST(IpAddress, HashDistinguishes) {
  std::unordered_set<IpAddress> set;
  for (std::uint32_t i = 0; i < 1000; ++i) set.insert(IpAddress::v4(i));
  EXPECT_EQ(set.size(), 1000U);
  // v4 value 5 and v6 (0,5) must hash/compare differently.
  set.insert(IpAddress::v6(0, 5));
  EXPECT_TRUE(set.contains(IpAddress::v6(0, 5)));
  EXPECT_EQ(set.size(), 1001U);
}

TEST(IpPrefix, ZeroesHostBits) {
  const IpPrefix prefix(IpAddress::v4(0xC0A80A0FU), 24);  // 192.168.10.15/24
  EXPECT_EQ(prefix.base().to_string(), "192.168.10.0");
  EXPECT_EQ(prefix.to_string(), "192.168.10.0/24");
}

TEST(IpPrefix, ContainsBoundaries) {
  const auto prefix = IpPrefix::parse("10.0.0.0/8");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(*IpAddress::parse("10.0.0.0")));
  EXPECT_TRUE(prefix->contains(*IpAddress::parse("10.255.255.255")));
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("11.0.0.0")));
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("9.255.255.255")));
}

TEST(IpPrefix, ZeroLengthContainsEverythingInFamily) {
  const IpPrefix any(IpAddress::v4(0), 0);
  EXPECT_TRUE(any.contains(IpAddress::v4(0xDEADBEEFU)));
  EXPECT_FALSE(any.contains(IpAddress::v6(1, 2)));  // family mismatch
}

TEST(IpPrefix, ParseRejectsBadInput) {
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/x").has_value());
  EXPECT_FALSE(IpPrefix::parse("/8").has_value());
}

TEST(IpPrefix, V6ContainsAndLength) {
  const auto prefix = IpPrefix::parse("2a01::/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(*IpAddress::parse("2a01:1::1")));
  EXPECT_FALSE(prefix->contains(*IpAddress::parse("2a02::1")));
}

TEST(IpPrefix, SizeAndAt) {
  const auto prefix = IpPrefix::parse("192.0.2.0/30");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->v4_size(), 4U);
  EXPECT_EQ(prefix->at(0).to_string(), "192.0.2.0");
  EXPECT_EQ(prefix->at(3).to_string(), "192.0.2.3");
  EXPECT_EQ(prefix->at(4).to_string(), "192.0.2.0");  // wraps mod size
}

TEST(IpPrefix, AtStaysInsidePrefix) {
  const auto prefix = IpPrefix::parse("11.4.0.0/22");
  ASSERT_TRUE(prefix.has_value());
  for (std::uint64_t offset : {0ULL, 1ULL, 1023ULL, 5000ULL}) {
    EXPECT_TRUE(prefix->contains(prefix->at(offset))) << offset;
  }
}

}  // namespace
}  // namespace cbwt::net
