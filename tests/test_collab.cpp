#include "collab/graph.h"

#include <gtest/gtest.h>

#include "core/study.h"

namespace cbwt::collab {
namespace {

class CollabTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::StudyConfig config;
    config.world.seed = 777;
    config.world.scale = 0.02;
    study_ = new core::Study(config);
    graph_ = new CollabGraph(CollabGraph::from_dataset(
        study_->world(), study_->dataset(), study_->outcomes()));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete study_;
  }
  static core::Study* study_;
  static CollabGraph* graph_;
};

core::Study* CollabTest::study_ = nullptr;
CollabGraph* CollabTest::graph_ = nullptr;

TEST_F(CollabTest, GraphIsNonTrivial) {
  EXPECT_GT(graph_->node_count(), 50U);
  EXPECT_GT(graph_->edge_count(), 100U);
}

TEST_F(CollabTest, EdgesAreNormalizedAndCrossOrg) {
  for (const auto& edge : graph_->edges()) {
    EXPECT_LT(edge.a, edge.b);  // canonical order, no self-loops
    EXPECT_GT(edge.weight, 0U);
    EXPECT_GT(edge.users, 0U);
    EXPECT_LE(edge.users, study_->world().users().size());
  }
}

TEST_F(CollabTest, EdgesConnectChainRoles) {
  // Collaboration edges live between ad networks, DSPs and sync services,
  // never involving clean services.
  for (const auto& edge : graph_->top_edges(100)) {
    for (const auto org_id : {edge.a, edge.b}) {
      EXPECT_NE(study_->world().org(org_id).role, world::OrgRole::CleanService);
    }
  }
}

TEST_F(CollabTest, DegreeAndPartnersAgree) {
  const auto heaviest = graph_->top_edges(1).front();
  EXPECT_GE(graph_->degree(heaviest.a), 1U);
  const auto partners = graph_->partners_of(heaviest.a);
  EXPECT_EQ(partners.size(), graph_->degree(heaviest.a));
  // Partner list is weight-sorted.
  for (std::size_t i = 1; i < partners.size(); ++i) {
    EXPECT_GE(partners[i - 1].weight, partners[i].weight);
  }
  EXPECT_EQ(graph_->degree(999999), 0U);
  EXPECT_TRUE(graph_->partners_of(999999).empty());
}

TEST_F(CollabTest, SyncHubsHaveHighDegree) {
  // Popular sync services should be among the best-connected nodes.
  std::size_t best_sync_degree = 0;
  std::size_t best_clean_degree = 0;
  for (const auto& org : study_->world().orgs()) {
    if (org.role == world::OrgRole::SyncService) {
      best_sync_degree = std::max(best_sync_degree, graph_->degree(org.id));
    }
    if (org.role == world::OrgRole::CleanService) {
      best_clean_degree = std::max(best_clean_degree, graph_->degree(org.id));
    }
  }
  EXPECT_GT(best_sync_degree, 10U);
  EXPECT_EQ(best_clean_degree, 0U);
}

TEST_F(CollabTest, CommunitiesPartitionTheGraph) {
  util::Rng rng(5);
  const auto labels = graph_->communities(10, rng);
  EXPECT_EQ(labels.size(), graph_->node_count());
  std::set<std::uint32_t> distinct;
  for (const auto& [org, label] : labels) distinct.insert(label);
  // Converged: far fewer communities than nodes. A hub-dominated graph
  // may legitimately collapse to a single giant community.
  EXPECT_GE(distinct.size(), 1U);
  EXPECT_LE(distinct.size(), graph_->node_count() / 2);
}

TEST_F(CollabTest, CrossBorderShareIsAProperFraction) {
  const double share = graph_->cross_border_weight_share(
      study_->geo(), geoloc::Tool::GroundTruth, study_->world());
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 1.0);
  // With a mixed EU/US ecosystem some collaboration must cross the border.
  EXPECT_GT(share, 0.05);
}

TEST(CollabUnit, EmptyDatasetYieldsEmptyGraph) {
  world::WorldConfig config;
  config.seed = 3;
  config.scale = 0.01;
  config.publishers = 50;
  const auto world = world::build_world(config);
  browser::ExtensionDataset empty;
  const std::vector<classify::Outcome> outcomes;
  const auto graph = CollabGraph::from_dataset(world, empty, outcomes);
  EXPECT_EQ(graph.node_count(), 0U);
  EXPECT_EQ(graph.edge_count(), 0U);
  util::Rng rng(1);
  EXPECT_TRUE(graph.communities(5, rng).empty());
}

}  // namespace
}  // namespace cbwt::collab
