#include "util/prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace cbwt::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0U);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Both endpoints reachable.
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 2000 && !(lo && hi); ++i) {
    const auto v = rng.next_in(0, 3);
    lo = lo || v == 0;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(Rng, ParetoBounded) {
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_pareto(1.2, 50.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(37);
  for (const double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.next_poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.05) << "mean " << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.next_poisson(0.0), 0U);
  EXPECT_EQ(rng.next_poisson(-1.0), 0U);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto copy = values;
  rng.shuffle(std::span<int>(copy));
  EXPECT_NE(copy, values);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(SampleDiscrete, RespectsWeights) {
  Rng rng(47);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[sample_discrete(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(SampleDiscrete, AllZeroWeightsReturnsZero) {
  Rng rng(53);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(sample_discrete(rng, weights), 0U);
}

TEST(SampleDiscrete, NegativeWeightsTreatedAsZero) {
  Rng rng(59);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_discrete(rng, weights), 1U);
}

TEST(ZipfSampler, MassSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, MassIsMonotoneDecreasing) {
  const ZipfSampler zipf(50, 1.1);
  for (std::size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_LE(zipf.mass(i), zipf.mass(i - 1) + 1e-12);
  }
}

TEST(ZipfSampler, SamplingMatchesMass) {
  Rng rng(61);
  const ZipfSampler zipf(10, 1.0);
  std::array<int, 10> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.mass(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  Rng rng(67);
  const ZipfSampler zipf(4, 0.0);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(zipf.mass(r), 0.25, 1e-9);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

}  // namespace
}  // namespace cbwt::util
