#!/usr/bin/env python3
"""Unit tests for tools/report_diff.py (run under ctest as `report_diff_unittests`).

Exercises the deterministic/timing/environment split on canned
run_report documents: counters must match exactly, span structure must
match exactly, timings may drift (unless --timing-rtol), and the
environment list (threads, pool gauges, /proc telemetry) may differ or
be absent entirely.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import report_diff  # noqa: E402


def base_report():
    return {
        "name": "cbwt_core_run_report",
        "seed": 20180901,
        "scale": 0.02,
        "threads": 1,
        "fault": {"enabled": False},
        "obs": {
            "counters": {
                "cbwt_classify_requests_total": 1000,
                "cbwt_netflow_matched_total": 42,
                "cbwt_obs_proc_samples_total": 17,
            },
            "gauges": {
                "cbwt_runtime_pool_size": 4.0,
                "cbwt_obs_proc_rss_bytes": 1e8,
                "cbwt_runtime_channel_producer_stall_seconds": 0.25,
            },
            "histograms": {
                "cbwt_geoloc_measure_seconds": {
                    "buckets": [{"le": 0.1, "count": 3}, {"le": "+Inf", "count": 1}],
                    "count": 4,
                    "sum": 0.9,
                }
            },
            "spans": [
                {
                    "name": "study/classify",
                    "parent": "",
                    "depth": 0,
                    "wall_seconds": 1.5,
                    "process_cpu_seconds": 2.5,
                    "thread_cpu_seconds": 1.4,
                    "items": 1000,
                }
            ],
        },
    }


def diff(a, b, rtol=None, ignore=()):
    import re

    return report_diff.diff_reports(a, b, rtol, [re.compile(p) for p in ignore])


class DeterministicQuantities(unittest.TestCase):
    def test_identical_reports_agree(self):
        self.assertEqual(diff(base_report(), base_report()), [])

    def test_counter_value_mismatch_is_reported(self):
        b = base_report()
        b["obs"]["counters"]["cbwt_netflow_matched_total"] = 43
        failures = diff(base_report(), b)
        self.assertEqual(len(failures), 1)
        self.assertIn("cbwt_netflow_matched_total", failures[0])

    def test_missing_deterministic_counter_is_reported(self):
        b = base_report()
        del b["obs"]["counters"]["cbwt_classify_requests_total"]
        failures = diff(base_report(), b)
        self.assertTrue(any("cbwt_classify_requests_total" in f for f in failures))

    def test_seed_mismatch_is_reported(self):
        b = base_report()
        b["seed"] = 1
        self.assertTrue(any(f.startswith("seed") for f in diff(base_report(), b)))

    def test_fault_object_is_exact(self):
        b = base_report()
        b["fault"] = {"enabled": True, "seed": 7, "degraded": {"dns": 3}}
        self.assertTrue(any(f.startswith("fault") for f in diff(base_report(), b)))

    def test_span_items_and_order_are_exact(self):
        b = base_report()
        b["obs"]["spans"][0]["items"] = 999
        self.assertTrue(any("items" in f for f in diff(base_report(), b)))
        c = base_report()
        c["obs"]["spans"].append(dict(c["obs"]["spans"][0], name="study/extra"))
        self.assertTrue(any("spans/length" in f for f in diff(base_report(), c)))


class EnvironmentQuantities(unittest.TestCase):
    def test_threads_pool_and_proc_may_differ(self):
        b = base_report()
        b["threads"] = 8
        b["obs"]["gauges"]["cbwt_runtime_pool_size"] = 8.0
        b["obs"]["gauges"]["cbwt_obs_proc_rss_bytes"] = 2e8
        b["obs"]["counters"]["cbwt_obs_proc_samples_total"] = 99
        self.assertEqual(diff(base_report(), b), [])

    def test_env_keys_may_be_absent_entirely(self):
        b = base_report()
        del b["obs"]["gauges"]["cbwt_runtime_pool_size"]
        del b["obs"]["counters"]["cbwt_obs_proc_samples_total"]
        self.assertEqual(diff(base_report(), b), [])

    def test_extra_ignore_pattern_downgrades_a_key(self):
        b = base_report()
        b["obs"]["counters"]["cbwt_netflow_matched_total"] = 43
        self.assertEqual(diff(base_report(), b, ignore=[r"cbwt_netflow_matched"]), [])


class TimingQuantities(unittest.TestCase):
    def test_span_timings_may_drift_by_default(self):
        b = base_report()
        b["obs"]["spans"][0]["wall_seconds"] = 9.0
        b["obs"]["spans"][0]["thread_cpu_seconds"] = 0.1
        self.assertEqual(diff(base_report(), b), [])

    def test_negative_or_nonfinite_timing_is_flagged(self):
        b = base_report()
        b["obs"]["spans"][0]["wall_seconds"] = -1.0
        self.assertTrue(any("wall_seconds" in f for f in diff(base_report(), b)))

    def test_rtol_enforces_timing_closeness(self):
        b = base_report()
        b["obs"]["spans"][0]["wall_seconds"] = 3.0  # 2x drift
        self.assertEqual(diff(base_report(), b, rtol=2.0), [])
        self.assertTrue(any("wall_seconds" in f for f in diff(base_report(), b, rtol=0.1)))

    def test_timing_histogram_count_exact_distribution_free(self):
        b = base_report()
        b["obs"]["histograms"]["cbwt_geoloc_measure_seconds"]["sum"] = 5.0
        b["obs"]["histograms"]["cbwt_geoloc_measure_seconds"]["buckets"] = []
        self.assertEqual(diff(base_report(), b), [])
        c = base_report()
        c["obs"]["histograms"]["cbwt_geoloc_measure_seconds"]["count"] = 5
        self.assertTrue(any("count" in f for f in diff(base_report(), c)))


class CommandLine(unittest.TestCase):
    def run_main(self, a, b, *argv):
        with tempfile.TemporaryDirectory() as tmp:
            path_a = os.path.join(tmp, "a.json")
            path_b = os.path.join(tmp, "b.json")
            with open(path_a, "w", encoding="utf-8") as f:
                json.dump(a, f)
            with open(path_b, "w", encoding="utf-8") as f:
                json.dump(b, f)
            return report_diff.main([path_a, path_b, *argv])

    def test_exit_zero_on_agreement(self):
        b = copy.deepcopy(base_report())
        b["threads"] = 4
        self.assertEqual(self.run_main(base_report(), b), 0)

    def test_exit_one_on_mismatch(self):
        b = base_report()
        b["obs"]["counters"]["cbwt_netflow_matched_total"] = 0
        self.assertEqual(self.run_main(base_report(), b), 1)

    def test_exit_two_on_unreadable_input(self):
        self.assertEqual(report_diff.main(["/nonexistent/a.json", "/nonexistent/b.json"]), 2)


if __name__ == "__main__":
    unittest.main()
