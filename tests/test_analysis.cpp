#include "analysis/flows.h"
#include "analysis/jurisdiction.h"

#include <gtest/gtest.h>

namespace cbwt::analysis {
namespace {

/// Fixture with a tiny world and a GeoService whose ground-truth tool we
/// use to make flow destinations fully controllable.
class AnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 1212;
    config.scale = 0.01;
    config.publishers = 200;
    world_ = new world::World(world::build_world(config));
    util::Rng mesh_rng(1);
    mesh_ = new geoloc::ProbeMesh(geoloc::MeshConfig{}, mesh_rng);
    util::Rng db_rng(2);
    auto maxmind = geoloc::build_maxmind_like(*world_, {}, db_rng);
    auto ipapi = geoloc::build_ipapi_like(*world_, maxmind, 0.93, db_rng);
    service_ = new geoloc::GeoService(*world_, std::move(maxmind), std::move(ipapi),
                                      *mesh_, {}, 99);
  }
  static void TearDownTestSuite() {
    delete service_;
    delete mesh_;
    delete world_;
  }

  /// First server IP found in the given country; asserts existence.
  static net::IpAddress server_in(const std::string& country) {
    for (const auto& server : world_->servers()) {
      if (world_->datacenter(server.datacenter).country == country) return server.ip;
    }
    ADD_FAILURE() << "no server in " << country;
    return {};
  }

  static world::World* world_;
  static geoloc::ProbeMesh* mesh_;
  static geoloc::GeoService* service_;
};

world::World* AnalysisTest::world_ = nullptr;
geoloc::ProbeMesh* AnalysisTest::mesh_ = nullptr;
geoloc::GeoService* AnalysisTest::service_ = nullptr;

TEST_F(AnalysisTest, ConfinementMath) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("DE"), 2});   // in-country, EU, continent
  flows.push_back({"DE", server_in("NL"), 1});   // EU, continent
  flows.push_back({"DE", server_in("US"), 1});   // neither
  const auto result = analyzer.confinement(flows);
  EXPECT_EQ(result.total, 4U);
  EXPECT_DOUBLE_EQ(result.in_country, 50.0);
  EXPECT_DOUBLE_EQ(result.in_eu28, 75.0);
  EXPECT_DOUBLE_EQ(result.in_continent, 75.0);
}

TEST_F(AnalysisTest, ContinentConfinementCountsNonEuEurope) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("CH"), 1});  // Europe but not EU28
  const auto result = analyzer.confinement(flows);
  EXPECT_DOUBLE_EQ(result.in_eu28, 0.0);
  EXPECT_DOUBLE_EQ(result.in_continent, 100.0);
}

TEST_F(AnalysisTest, EmptyFlowsAreSafe) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  const std::vector<Flow> none;
  const auto result = analyzer.confinement(none);
  EXPECT_EQ(result.total, 0U);
  EXPECT_DOUBLE_EQ(result.in_country, 0.0);
  EXPECT_TRUE(analyzer.destination_regions(none).share.empty());
}

TEST_F(AnalysisTest, DestinationRegionsSumToOne) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("DE"), 3});
  flows.push_back({"DE", server_in("US"), 2});
  flows.push_back({"DE", server_in("JP"), 1});
  const auto breakdown = analyzer.destination_regions(flows);
  EXPECT_EQ(breakdown.located, 6U);
  EXPECT_EQ(breakdown.unknown, 0U);
  double total = 0.0;
  for (const auto& [region, share] : breakdown.share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(breakdown.share.at(geo::Region::EU28), 0.5, 1e-9);
  EXPECT_NEAR(breakdown.share.at(geo::Region::NorthAmerica), 1.0 / 3.0, 1e-9);
}

TEST_F(AnalysisTest, UnknownDestinationsAreTracked) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"DE", net::IpAddress::v4(123), 5});  // not a server
  const auto breakdown = analyzer.destination_regions(flows);
  EXPECT_EQ(breakdown.unknown, 5U);
  EXPECT_EQ(breakdown.located, 0U);
}

TEST_F(AnalysisTest, CountryMatrixAggregatesWeights) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"ES", server_in("US"), 2});
  flows.push_back({"ES", server_in("US"), 3});
  flows.push_back({"FR", server_in("DE"), 1});
  const auto matrix = analyzer.country_matrix(flows);
  EXPECT_EQ(matrix.at("ES").at("US"), 5U);
  EXPECT_EQ(matrix.at("FR").at("DE"), 1U);
}

TEST_F(AnalysisTest, RegionMatrixUsesRegionNames) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"BR", server_in("US"), 7});
  const auto matrix = analyzer.region_matrix(flows);
  EXPECT_EQ(matrix.at("S. America").at("N. America"), 7U);
}

TEST_F(AnalysisTest, PerOriginConfinement) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("DE"), 1});
  flows.push_back({"FR", server_in("DE"), 1});
  const auto by_origin = analyzer.per_origin_confinement(flows);
  EXPECT_DOUBLE_EQ(by_origin.at("DE").in_country, 100.0);
  EXPECT_DOUBLE_EQ(by_origin.at("FR").in_country, 0.0);
  EXPECT_DOUBLE_EQ(by_origin.at("FR").in_eu28, 100.0);
}

TEST_F(AnalysisTest, DestinationCountrySharesSumToOne) {
  const FlowAnalyzer analyzer(*service_, geoloc::Tool::GroundTruth);
  std::vector<Flow> flows;
  flows.push_back({"PL", server_in("NL"), 4});
  flows.push_back({"PL", server_in("US"), 4});
  const auto shares = analyzer.destination_countries(flows);
  EXPECT_DOUBLE_EQ(shares.at("NL"), 0.5);
  EXPECT_DOUBLE_EQ(shares.at("US"), 0.5);
}

TEST_F(AnalysisTest, RegionAndCountryFilters) {
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("US"), 1});
  flows.push_back({"BR", server_in("US"), 1});
  flows.push_back({"CH", server_in("US"), 1});
  const auto eu = flows_from_region(flows, geo::Region::EU28);
  ASSERT_EQ(eu.size(), 1U);
  EXPECT_EQ(eu[0].origin_country, "DE");
  const auto rest = flows_from_region(flows, geo::Region::RestOfEurope);
  ASSERT_EQ(rest.size(), 1U);
  EXPECT_EQ(rest[0].origin_country, "CH");
  const auto br = flows_from_country(flows, "BR");
  ASSERT_EQ(br.size(), 1U);
}

TEST_F(AnalysisTest, ToolChoiceChangesTheAnswer) {
  // The same flow set under MaxMind-like vs ground truth can disagree —
  // that is the paper's Fig. 7 in miniature. Use a US-HQ org's EU server.
  const world::Server* eu_server_of_us_org = nullptr;
  for (const auto& server : world_->servers()) {
    const auto& org = world_->org(server.org);
    const auto truth = world_->datacenter(server.datacenter).country;
    if (org.hq_country == "US" && truth == "DE" &&
        service_->locate(server.ip, geoloc::Tool::MaxMindLike) == "US") {
      eu_server_of_us_org = &server;
      break;
    }
  }
  ASSERT_NE(eu_server_of_us_org, nullptr);
  std::vector<Flow> flows;
  flows.push_back({"DE", eu_server_of_us_org->ip, 1});
  const FlowAnalyzer truth_analyzer(*service_, geoloc::Tool::GroundTruth);
  const FlowAnalyzer maxmind_analyzer(*service_, geoloc::Tool::MaxMindLike);
  EXPECT_DOUBLE_EQ(truth_analyzer.confinement(flows).in_eu28, 100.0);
  EXPECT_DOUBLE_EQ(maxmind_analyzer.confinement(flows).in_eu28, 0.0);
}

TEST_F(AnalysisTest, JurisdictionBuilders) {
  const auto gdpr = gdpr_jurisdiction();
  EXPECT_EQ(gdpr.members.size(), 28U);
  EXPECT_TRUE(gdpr.contains("DE"));
  EXPECT_TRUE(gdpr.contains("GB"));  // 2018 scope includes the UK
  EXPECT_FALSE(gdpr.contains("CH"));
  const auto eea = eea_plus_jurisdiction();
  EXPECT_EQ(eea.members.size(), 30U);
  EXPECT_TRUE(eea.contains("CH"));
  const auto national = national_jurisdiction("FR");
  EXPECT_TRUE(national.contains("FR"));
  EXPECT_FALSE(national.contains("DE"));
  EXPECT_TRUE(us_jurisdiction().contains("US"));
}

TEST_F(AnalysisTest, JurisdictionConfinementMath) {
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("NL"), 2});  // inside GDPR, covered
  flows.push_back({"DE", server_in("US"), 1});  // from inside, leaks
  flows.push_back({"US", server_in("DE"), 1});  // into GDPR from outside
  const auto report = jurisdiction_confinement(*service_, geoloc::Tool::GroundTruth,
                                               gdpr_jurisdiction(), flows);
  EXPECT_EQ(report.total, 4U);
  EXPECT_EQ(report.inside, 3U);        // NL x2 + DE
  EXPECT_EQ(report.from_inside, 3U);   // the DE-origin flows
  EXPECT_EQ(report.covered, 2U);       // DE->NL only
  EXPECT_DOUBLE_EQ(report.inside_pct(), 75.0);
  EXPECT_NEAR(report.covered_pct(), 100.0 * 2.0 / 3.0, 1e-9);
}

TEST_F(AnalysisTest, WiderJurisdictionNeverCoversLess) {
  std::vector<Flow> flows;
  flows.push_back({"DE", server_in("CH"), 3});
  flows.push_back({"DE", server_in("NL"), 3});
  flows.push_back({"DE", server_in("US"), 1});
  const auto gdpr = jurisdiction_confinement(*service_, geoloc::Tool::GroundTruth,
                                             gdpr_jurisdiction(), flows);
  const auto eea = jurisdiction_confinement(*service_, geoloc::Tool::GroundTruth,
                                            eea_plus_jurisdiction(), flows);
  EXPECT_GE(eea.covered, gdpr.covered);
  EXPECT_GE(eea.inside, gdpr.inside);
}

}  // namespace
}  // namespace cbwt::analysis
