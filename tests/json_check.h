// Minimal recursive-descent JSON validator for tests: checks that a
// string is one complete, well-formed JSON value (RFC 8259 grammar; no
// object/array materialization). Shared by the report/obs/core suites to
// assert exported documents stay machine-parseable.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace cbwt::testing {

class JsonChecker {
 public:
  /// True iff `text` is exactly one valid JSON value (plus whitespace).
  [[nodiscard]] static bool valid(std::string_view text) {
    JsonChecker checker(text);
    checker.skip_ws();
    if (!checker.value()) return false;
    checker.skip_ws();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos_;
    return true;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool value() {
    if (at_end()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  [[nodiscard]] bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  [[nodiscard]] bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  [[nodiscard]] bool string() {
    if (!consume('"')) return false;
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (at_end()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (at_end() || std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    (void)consume('-');
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    if (!consume('0')) {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (consume('.')) {
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!consume('+')) (void)consume('-');
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace cbwt::testing
