#include "rtb/auction.h"
#include "rtb/cookies.h"
#include "rtb/openrtb.h"

#include <gtest/gtest.h>

namespace cbwt::rtb {
namespace {

TEST(CookieJar, IdsAreMintedOnceAndStable) {
  CookieJar jar;
  util::Rng rng(1);
  EXPECT_FALSE(jar.has_id(5));
  EXPECT_FALSE(jar.id_of(5).has_value());
  const auto id = jar.ensure_id(5, rng);
  EXPECT_TRUE(jar.has_id(5));
  EXPECT_EQ(jar.ensure_id(5, rng), id);
  EXPECT_EQ(jar.id_of(5).value(), id);
  EXPECT_EQ(jar.known_orgs(), 1U);
}

TEST(CookieJar, SyncIsSymmetricAndIdempotent) {
  CookieJar jar;
  EXPECT_FALSE(jar.synced(1, 2));
  jar.record_sync(2, 1);
  EXPECT_TRUE(jar.synced(1, 2));
  EXPECT_TRUE(jar.synced(2, 1));
  jar.record_sync(1, 2);
  EXPECT_EQ(jar.sync_edges(), 1U);
  jar.record_sync(3, 3);  // self-sync is a no-op
  EXPECT_EQ(jar.sync_edges(), 1U);
}

class AuctionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 2468;
    config.scale = 0.01;
    config.publishers = 200;
    world_ = new world::World(world::build_world(config));
    resolver_ = new dns::Resolver(*world_);
  }
  static void TearDownTestSuite() {
    delete resolver_;
    delete world_;
  }

  static BidRequest request_for(const char* country) {
    BidRequest request;
    request.id = "42";
    request.imp.id = "1";
    request.imp.bidfloor = 0.05;
    request.site_domain = "news.example.com";
    request.user_country = country;
    return request;
  }

  static std::vector<world::OrgId> some_dsps(std::size_t count) {
    std::vector<world::OrgId> out;
    for (const auto& org : world_->orgs()) {
      if (org.role == world::OrgRole::Dsp) out.push_back(org.id);
      if (out.size() >= count) break;
    }
    return out;
  }

  static world::World* world_;
  static dns::Resolver* resolver_;
};

world::World* AuctionTest::world_ = nullptr;
dns::Resolver* AuctionTest::resolver_ = nullptr;

TEST_F(AuctionTest, RunProducesAWinnerAmongParticipants) {
  const AuctionEngine engine(*world_, *resolver_);
  CookieJar jar;
  util::Rng rng(1);
  const auto bidders = some_dsps(6);
  bool saw_winner = false;
  for (int round = 0; round < 20; ++round) {
    const auto outcome = engine.run(request_for("DE"), bidders, jar, rng);
    EXPECT_EQ(outcome.participants.size(), bidders.size());
    if (outcome.winner) {
      saw_winner = true;
      const bool known = std::find(bidders.begin(), bidders.end(),
                                   outcome.winner->dsp) != bidders.end();
      EXPECT_TRUE(known);
      EXPECT_GE(outcome.winner->price_cpm, 0.05);
      EXPECT_GT(outcome.clearing_price_cpm, 0.0);
      EXPECT_LE(outcome.clearing_price_cpm, outcome.winner->price_cpm + 0.011);
      EXPECT_NE(outcome.winner->creative_url.find("https://"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_winner);
}

TEST_F(AuctionTest, SecondPriceNeverExceedsFirstPrice) {
  AuctionConfig second;
  second.price_rule = PriceRule::SecondPrice;
  AuctionConfig first;
  first.price_rule = PriceRule::FirstPrice;
  const AuctionEngine engine_second(*world_, *resolver_, second);
  const AuctionEngine engine_first(*world_, *resolver_, first);
  CookieJar jar;
  const auto bidders = some_dsps(8);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  for (int round = 0; round < 30; ++round) {
    const auto outcome_second = engine_second.run(request_for("FR"), bidders, jar, rng_a);
    const auto outcome_first = engine_first.run(request_for("FR"), bidders, jar, rng_b);
    if (outcome_second.winner && outcome_first.winner) {
      // Same RNG stream -> identical bids; only the clearing rule differs.
      EXPECT_LE(outcome_second.clearing_price_cpm,
                outcome_first.clearing_price_cpm + 1e-9);
    }
  }
}

TEST_F(AuctionTest, TightTimeoutDropsBidders) {
  AuctionConfig strict;
  strict.timeout_ms = 15.0;  // below the compute floor: everybody misses
  strict.compute_ms_min = 20.0;
  strict.compute_ms_max = 30.0;
  const AuctionEngine engine(*world_, *resolver_, strict);
  CookieJar jar;
  util::Rng rng(3);
  const auto outcome = engine.run(request_for("DE"), some_dsps(5), jar, rng);
  EXPECT_FALSE(outcome.winner.has_value());
  EXPECT_EQ(outcome.timed_out.size(), 5U);
}

TEST_F(AuctionTest, SyncedProfilesRaiseBids) {
  // With everything else equal, a jar full of synced ids should produce
  // higher average winning valuations.
  const AuctionEngine engine(*world_, *resolver_);
  const auto bidders = some_dsps(6);
  CookieJar cold;
  CookieJar warm;
  {
    util::Rng seed_rng(11);
    for (const auto dsp : bidders) (void)warm.ensure_id(dsp, seed_rng);
  }
  double cold_total = 0.0;
  double warm_total = 0.0;
  int cold_wins = 0;
  int warm_wins = 0;
  util::Rng rng_a(13);
  util::Rng rng_b(13);
  for (int round = 0; round < 200; ++round) {
    const auto outcome_cold = engine.run(request_for("ES"), bidders, cold, rng_a);
    const auto outcome_warm = engine.run(request_for("ES"), bidders, warm, rng_b);
    if (outcome_cold.winner) {
      cold_total += outcome_cold.winner->price_cpm;
      ++cold_wins;
    }
    if (outcome_warm.winner) {
      warm_total += outcome_warm.winner->price_cpm;
      ++warm_wins;
    }
  }
  ASSERT_GT(cold_wins, 20);
  ASSERT_GT(warm_wins, 20);
  EXPECT_GT(warm_total / warm_wins, cold_total / cold_wins);
}

TEST_F(AuctionTest, WinnersWithProfilesDoNotAskToSync) {
  const AuctionEngine engine(*world_, *resolver_);
  const auto bidders = some_dsps(4);
  CookieJar warm;
  util::Rng seed_rng(17);
  for (const auto dsp : bidders) (void)warm.ensure_id(dsp, seed_rng);
  util::Rng rng(19);
  for (int round = 0; round < 50; ++round) {
    const auto outcome = engine.run(request_for("IT"), bidders, warm, rng);
    if (outcome.winner) {
      EXPECT_FALSE(outcome.winner->wants_sync);
    }
  }
}

TEST_F(AuctionTest, CoppaSuppressesMostBidding) {
  const AuctionEngine engine(*world_, *resolver_);
  const auto bidders = some_dsps(6);
  CookieJar jar;
  util::Rng rng_a(23);
  util::Rng rng_b(23);
  int regular_bids = 0;
  int coppa_bids = 0;
  for (int round = 0; round < 100; ++round) {
    auto regular = request_for("DE");
    auto coppa = request_for("DE");
    coppa.coppa = true;
    const auto outcome_a = engine.run(regular, bidders, jar, rng_a);
    const auto outcome_b = engine.run(coppa, bidders, jar, rng_b);
    regular_bids += static_cast<int>(bidders.size() - outcome_a.no_bids.size() -
                                     outcome_a.timed_out.size());
    coppa_bids += static_cast<int>(bidders.size() - outcome_b.no_bids.size() -
                                   outcome_b.timed_out.size());
  }
  EXPECT_LT(coppa_bids, regular_bids / 2);
}

TEST_F(AuctionTest, FarBiddersTimeOutMoreThanNearOnes) {
  // From a European user, US-only bidders face ~80+ ms RTT and miss the
  // budget far more often than EU-hosted ones — the paper's RTB-latency
  // argument for locality.
  AuctionConfig config;
  config.timeout_ms = 100.0;
  const AuctionEngine engine(*world_, *resolver_, config);
  CookieJar jar;
  util::Rng rng(29);

  world::OrgId us_only = 0;
  world::OrgId eu_hosted = 0;
  for (const auto& org : world_->orgs()) {
    if (org.role != world::OrgRole::Dsp || org.domains.empty()) continue;
    // The bid endpoint is the org's first domain; its serving list may
    // include shared exchange hosts, so judge locality on that list.
    bool all_us = true;
    bool any_eu = false;
    for (const auto sid : world_->domain(org.domains.front()).servers) {
      const auto& country = world_->datacenter(world_->server(sid).datacenter).country;
      if (country != "US") all_us = false;
      const auto* info = geo::find_country(country);
      if (info != nullptr && info->eu28) any_eu = true;
    }
    if (all_us && us_only == 0) us_only = org.id;
    if (any_eu && eu_hosted == 0) eu_hosted = org.id;
  }
  ASSERT_NE(us_only, 0U);
  ASSERT_NE(eu_hosted, 0U);

  int us_timeouts = 0;
  int eu_timeouts = 0;
  const std::vector<world::OrgId> pair = {us_only, eu_hosted};
  for (int round = 0; round < 200; ++round) {
    const auto outcome = engine.run(request_for("DE"), pair, jar, rng);
    for (const auto dropped : outcome.timed_out) {
      if (dropped == us_only) ++us_timeouts;
      if (dropped == eu_hosted) ++eu_timeouts;
    }
  }
  EXPECT_GT(us_timeouts, eu_timeouts + 20);
}

}  // namespace
}  // namespace cbwt::rtb
