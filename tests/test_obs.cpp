#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "json_check.h"
#include "report/json.h"
#include "runtime/channel.h"

namespace cbwt::obs {
namespace {

// --- counters / gauges ----------------------------------------------

TEST(Counter, AccumulatesAndDefaultsToOne) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.max_of(1.0);  // lower: no change
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.max_of(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(Registry, FindOrCreateReturnsStableHandles) {
  Registry registry;
  Counter& a = registry.counter("cbwt_obs_test_total");
  Counter& b = registry.counter("cbwt_obs_test_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter_value("cbwt_obs_test_total"), 3u);
  EXPECT_EQ(registry.counter_value("never_created"), 0u);

  // Later insertions must not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("cbwt_obs_filler_" + std::to_string(i) + "_total");
  }
  a.add(1);
  EXPECT_EQ(registry.counter_value("cbwt_obs_test_total"), 4u);
}

TEST(Registry, ConcurrentUpdatesAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Registry registry;
  const std::array<double, 3> bounds = {1.0, 2.0, 3.0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &bounds] {
      // Half the threads race the find-or-create path too.
      Counter& counter = registry.counter("cbwt_obs_test_hits_total");
      Gauge& gauge = registry.gauge("cbwt_obs_test_level");
      Histogram& histogram = registry.histogram("cbwt_obs_test_seconds", bounds);
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        gauge.add(1.0);
        histogram.observe(1.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("cbwt_obs_test_hits_total"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(registry.gauge("cbwt_obs_test_level").value(),
                   static_cast<double>(kThreads) * kPerThread);
  const Histogram& histogram = registry.histogram("cbwt_obs_test_seconds", bounds);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.5 * kThreads * kPerThread);
}

// --- histogram bucket edges ------------------------------------------

TEST(Histogram, InclusiveUpperBoundsAndOverflow) {
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram histogram{std::span<const double>(bounds)};
  histogram.observe(0.5);    // <= 1.0
  histogram.observe(1.0);    // == bound: inclusive (Prometheus `le`)
  histogram.observe(1.0001); // next bucket
  histogram.observe(10.0);
  histogram.observe(99.0);
  histogram.observe(100.0);
  histogram.observe(1e9);    // overflow
  const auto counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 7u);
}

TEST(Registry, HistogramBoundsConsultedOnFirstCreationOnly) {
  Registry registry;
  const std::array<double, 2> first = {1.0, 2.0};
  const std::array<double, 3> second = {5.0, 6.0, 7.0};
  Histogram& a = registry.histogram("cbwt_obs_test_seconds", first);
  Histogram& b = registry.histogram("cbwt_obs_test_seconds", second);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds(), (std::vector<double>{1.0, 2.0}));
}

// --- spans ------------------------------------------------------------

TEST(ScopedSpan, RecordsNestingParentAndItems) {
  Registry registry;
  {
    ScopedSpan outer(&registry, "study/outer");
    outer.set_items(10);
    {
      ScopedSpan inner(&registry, "study/inner");
      inner.set_items(3);
      inner.add_items(4);
    }
  }
  const auto spans = registry.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans record on close, so the inner one lands first.
  EXPECT_EQ(spans[0].name, "study/inner");
  EXPECT_EQ(spans[0].parent, "study/outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[0].items, 7u);
  EXPECT_EQ(spans[1].name, "study/outer");
  EXPECT_EQ(spans[1].parent, "");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].items, 10u);
  for (const auto& span : spans) {
    EXPECT_GE(span.wall_seconds, 0.0);
    EXPECT_GE(span.process_cpu_seconds, 0.0);
    EXPECT_GE(span.thread_cpu_seconds, 0.0);
  }
}

TEST(ScopedSpan, NullRegistryIsANoOp) {
  ScopedSpan span(nullptr, "study/nothing");
  span.set_items(99);  // must not crash or record anywhere
}

// --- runtime bridges --------------------------------------------------

TEST(RuntimeMetrics, ChannelStatsRecordedAndZeroStatsSkipped) {
  Registry registry;
  runtime::ChannelStats zero;
  record_channel_stats(&registry, zero);  // serial path: nothing recorded
  EXPECT_TRUE(registry.counters().empty());

  runtime::ChannelStats stats;
  stats.pushed = 12;
  stats.popped = 12;
  stats.high_water = 3;
  stats.producer_stalls = 2;
  stats.producer_stall_ns = 1500000000;  // 1.5 s
  record_channel_stats(&registry, stats);
  record_channel_stats(nullptr, stats);  // null registry: no-op
  EXPECT_EQ(registry.counter_value("cbwt_runtime_channel_pushed_total"), 12u);
  EXPECT_EQ(registry.counter_value("cbwt_runtime_channel_popped_total"), 12u);
  EXPECT_EQ(registry.counter_value("cbwt_runtime_channel_producer_stalls_total"), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("cbwt_runtime_channel_high_water").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("cbwt_runtime_channel_producer_stall_seconds").value(),
                   1.5);

  // A second stage with a lower high-water must not lower the mark.
  runtime::ChannelStats lower;
  lower.pushed = 1;
  lower.popped = 1;
  lower.high_water = 1;
  record_channel_stats(&registry, lower);
  EXPECT_DOUBLE_EQ(registry.gauge("cbwt_runtime_channel_high_water").value(), 3.0);
}

TEST(ChannelStats, AccumulateSumsAndKeepsHighWater) {
  runtime::ChannelStats acc;
  runtime::ChannelStats part;
  part.pushed = 5;
  part.popped = 4;
  part.high_water = 2;
  part.consumer_stalls = 1;
  part.consumer_stall_ns = 10;
  acc.accumulate(part);
  part.high_water = 1;
  acc.accumulate(part);
  EXPECT_EQ(acc.pushed, 10u);
  EXPECT_EQ(acc.popped, 8u);
  EXPECT_EQ(acc.high_water, 2u);
  EXPECT_EQ(acc.consumer_stalls, 2u);
  EXPECT_EQ(acc.consumer_stall_ns, 20u);
}

// --- exporters --------------------------------------------------------

Registry& populated_registry() {
  static Registry registry;
  static bool done = false;
  if (!done) {
    done = true;
    registry.counter("cbwt_classify_requests_total").add(100);
    registry.gauge("cbwt_runtime_pool_size").set(4.0);
    const std::array<double, 2> bounds = {0.1, 1.0};
    Histogram& histogram = registry.histogram("cbwt_geoloc_measure_seconds", bounds);
    histogram.observe(0.05);
    histogram.observe(0.5);
    histogram.observe(5.0);
    {
      ScopedSpan span(&registry, "study/classify");
      span.set_items(100);
    }
  }
  return registry;
}

TEST(Export, JsonIsValidAndCarriesEverySection) {
  report::JsonWriter json;
  write_json(populated_registry(), json);
  const std::string text = json.str();
  EXPECT_TRUE(testing::JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"cbwt_classify_requests_total\":100"), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("\"spans\""), std::string::npos);
  EXPECT_NE(text.find("\"study/classify\""), std::string::npos);
}

TEST(Export, EmptyRegistryStillValidJson) {
  const Registry empty;
  report::JsonWriter json;
  write_json(empty, json);
  EXPECT_TRUE(testing::JsonChecker::valid(json.str())) << json.str();
}

TEST(Export, PrometheusDumpHasTypesAndCumulativeBuckets) {
  const std::string text = to_prometheus(populated_registry());
  EXPECT_NE(text.find("# TYPE cbwt_classify_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("cbwt_classify_requests_total 100"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cbwt_runtime_pool_size gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cbwt_geoloc_measure_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" holds both finite observations, +Inf all.
  EXPECT_NE(text.find("cbwt_geoloc_measure_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cbwt_geoloc_measure_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("cbwt_obs_span_wall_seconds"), std::string::npos);
  EXPECT_NE(text.find("cbwt_obs_span_process_cpu_seconds"), std::string::npos);
  EXPECT_NE(text.find("cbwt_obs_span_thread_cpu_seconds"), std::string::npos);
  EXPECT_NE(text.find("name=\"study/classify\""), std::string::npos);
}

}  // namespace
}  // namespace cbwt::obs
