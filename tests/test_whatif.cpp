#include "whatif/localization.h"

#include <gtest/gtest.h>

#include "core/study.h"

namespace cbwt::whatif {
namespace {

/// One shared small Study for all localization tests (expensive to set up).
class WhatIfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::StudyConfig config;
    config.world.seed = 321;
    config.world.scale = 0.02;
    study_ = new core::Study(config);
    (void)study_->localization();
  }
  static void TearDownTestSuite() { delete study_; }
  static core::Study* study_;
};

core::Study* WhatIfTest::study_ = nullptr;

TEST_F(WhatIfTest, LoadsOnlyEu28Flows) {
  const auto& localization = study_->localization();
  EXPECT_GT(localization.flow_count(), 1000U);
  // Fewer than the full tracking flow set (non-EU users are excluded).
  std::size_t tracking_total = 0;
  for (const auto& outcome : study_->outcomes()) {
    tracking_total += classify::is_tracking(outcome.method) ? 1 : 0;
  }
  EXPECT_LT(localization.flow_count(), tracking_total);
}

TEST_F(WhatIfTest, ScenarioMonotonicity) {
  // Table 5's structure is an ordering: every redirection scenario only
  // adds alternatives, so confinement can only grow.
  const auto& localization = study_->localization();
  const auto base = localization.evaluate(Scenario::Default);
  const auto fqdn = localization.evaluate(Scenario::RedirectFqdn);
  const auto tld = localization.evaluate(Scenario::RedirectTld);
  const auto combined = localization.evaluate(Scenario::RedirectTldPlusMirroring);

  EXPECT_LE(base.in_country_pct, fqdn.in_country_pct + 1e-9);
  EXPECT_LE(fqdn.in_country_pct, tld.in_country_pct + 1e-9);
  EXPECT_LE(tld.in_country_pct, combined.in_country_pct + 1e-9);
  EXPECT_LE(base.in_continent_pct, fqdn.in_continent_pct + 1e-9);
  EXPECT_LE(fqdn.in_continent_pct, tld.in_continent_pct + 1e-9);
  EXPECT_LE(tld.in_continent_pct, combined.in_continent_pct + 1e-9);
}

TEST_F(WhatIfTest, RedirectionAddsRealImprovement) {
  // The paper's headline (Table 5): TLD-level redirection adds tens of
  // percentage points at national level over the default.
  const auto& localization = study_->localization();
  const auto base = localization.evaluate(Scenario::Default);
  const auto tld = localization.evaluate(Scenario::RedirectTld);
  EXPECT_GT(tld.in_country_pct - base.in_country_pct, 10.0);
  EXPECT_GT(tld.in_continent_pct - base.in_continent_pct, 1.0);
}

TEST_F(WhatIfTest, MirroringHelpsContinentMoreThanCountry) {
  const auto& localization = study_->localization();
  const auto base = localization.evaluate(Scenario::Default);
  const auto mirrored = localization.evaluate(Scenario::PopMirroring);
  const double country_gain = mirrored.in_country_pct - base.in_country_pct;
  const double continent_gain = mirrored.in_continent_pct - base.in_continent_pct;
  EXPECT_GE(country_gain, 0.0);
  EXPECT_GE(continent_gain, 0.0);
  // Mirroring alone never beats mirroring stacked on TLD redirection.
  const auto combined = localization.evaluate(Scenario::RedirectTldPlusMirroring);
  EXPECT_LE(mirrored.in_country_pct, combined.in_country_pct + 1e-9);
  EXPECT_LE(mirrored.in_continent_pct, combined.in_continent_pct + 1e-9);
}

TEST_F(WhatIfTest, CyprusGainsNothingFromCloudMigration) {
  // None of the nine clouds has a Cypriot PoP (Table 6's zero row).
  const auto& localization = study_->localization();
  const auto improvements = localization.improvement_per_country(
      Scenario::Default, Scenario::CloudMigration);
  const auto it = improvements.find("CY");
  if (it != improvements.end()) {
    EXPECT_NEAR(it->second, 0.0, 1e-9);
  }
}

TEST_F(WhatIfTest, SmallCountriesGainMostFromCloudMigration) {
  // Denmark/Greece/Romania start low and have cloud PoPs -> huge gains;
  // Germany/UK start high -> modest gains (Table 6's ordering).
  const auto& localization = study_->localization();
  const auto improvements = localization.improvement_per_country(
      Scenario::Default, Scenario::CloudMigration);
  const auto gain = [&](const char* country) {
    const auto it = improvements.find(country);
    return it == improvements.end() ? 0.0 : it->second;
  };
  EXPECT_GT(gain("DK"), gain("DE"));
  EXPECT_GT(gain("GR"), gain("GB"));
  EXPECT_GT(gain("DK"), 40.0);
}

TEST_F(WhatIfTest, PerCountryEvaluationIsConsistentWithAggregate) {
  const auto& localization = study_->localization();
  const auto aggregate = localization.evaluate(Scenario::Default);
  const auto per_country = localization.evaluate_per_country(Scenario::Default);
  std::uint64_t total = 0;
  double confined_weighted = 0.0;
  for (const auto& [country, result] : per_country) {
    total += result.total;
    confined_weighted += result.in_country_pct * static_cast<double>(result.total);
  }
  EXPECT_EQ(total, aggregate.total);
  EXPECT_NEAR(confined_weighted / static_cast<double>(total), aggregate.in_country_pct,
              1e-6);
}

TEST(WhatIfNames, ScenarioToString) {
  EXPECT_EQ(to_string(Scenario::Default), "Default");
  EXPECT_EQ(to_string(Scenario::RedirectFqdn), "Redirections (FQDN)");
  EXPECT_EQ(to_string(Scenario::RedirectTld), "Redirections (TLD)");
  EXPECT_EQ(to_string(Scenario::PopMirroring), "POP Mirroring (Cloud)");
  EXPECT_EQ(to_string(Scenario::CloudMigration), "Migration to Cloud");
}

}  // namespace
}  // namespace cbwt::whatif
