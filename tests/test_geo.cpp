#include "geo/country.h"
#include "geo/location.h"

#include <gtest/gtest.h>

#include <set>

namespace cbwt::geo {
namespace {

TEST(Location, ZeroDistanceToSelf) {
  const LatLon berlin{52.5, 13.4};
  EXPECT_NEAR(distance_km(berlin, berlin), 0.0, 1e-9);
}

TEST(Location, KnownDistances) {
  const LatLon berlin{52.52, 13.40};
  const LatLon madrid{40.42, -3.70};
  const LatLon new_york{40.71, -74.01};
  // Great-circle references: Berlin-Madrid ~1870 km, Berlin-NYC ~6390 km.
  EXPECT_NEAR(distance_km(berlin, madrid), 1870.0, 40.0);
  EXPECT_NEAR(distance_km(berlin, new_york), 6390.0, 80.0);
}

TEST(Location, Symmetry) {
  const LatLon a{10.0, 20.0};
  const LatLon b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
}

TEST(Location, AntipodalIsHalfCircumference) {
  const LatLon a{0.0, 0.0};
  const LatLon b{0.0, 180.0};
  EXPECT_NEAR(distance_km(a, b), 20015.0, 30.0);
}

TEST(Location, PropagationDelayScalesWithDistance) {
  const LatLon a{50.0, 8.0};
  const LatLon b{52.0, 5.0};
  const LatLon c{40.0, -74.0};
  EXPECT_LT(propagation_delay_ms(a, b), propagation_delay_ms(a, c));
  // 1000 km at 2/3 c with stretch 1.6 is ~8 ms one way.
  const LatLon x{0.0, 0.0};
  const LatLon y{0.0, 8.9932};  // ~1000 km on the equator
  EXPECT_NEAR(propagation_delay_ms(x, y), 8.0, 0.5);
}

TEST(Countries, RegistryIsUsable) {
  EXPECT_GE(country_count(), 55U);
  EXPECT_EQ(all_countries().size(), country_count());
}

TEST(Countries, LookupKnownCodes) {
  const Country* de = find_country("DE");
  ASSERT_NE(de, nullptr);
  EXPECT_EQ(de->name, "Germany");
  EXPECT_TRUE(de->eu28);
  EXPECT_EQ(de->continent, Continent::Europe);
  EXPECT_EQ(find_country("XX"), nullptr);
  EXPECT_EQ(find_country(""), nullptr);
}

TEST(Countries, EU28HasTwentyEightMembers) {
  std::size_t members = 0;
  for (const auto& country : all_countries()) {
    if (country.eu28) ++members;
  }
  // The registry carries the 2018 EU28 (including the UK).
  EXPECT_EQ(members, 28U);
  EXPECT_TRUE(find_country("GB")->eu28);
  EXPECT_FALSE(find_country("CH")->eu28);
  EXPECT_FALSE(find_country("NO")->eu28);
  EXPECT_FALSE(find_country("RU")->eu28);
}

TEST(Countries, RegionPartition) {
  EXPECT_EQ(*region_of_code("DE"), Region::EU28);
  EXPECT_EQ(*region_of_code("CH"), Region::RestOfEurope);
  EXPECT_EQ(*region_of_code("US"), Region::NorthAmerica);
  EXPECT_EQ(*region_of_code("BR"), Region::SouthAmerica);
  EXPECT_EQ(*region_of_code("JP"), Region::Asia);
  EXPECT_EQ(*region_of_code("ZA"), Region::Africa);
  EXPECT_EQ(*region_of_code("AU"), Region::Oceania);
  EXPECT_FALSE(region_of_code("??").has_value());
}

TEST(Countries, ToStringNames) {
  EXPECT_EQ(to_string(Region::EU28), "EU 28");
  EXPECT_EQ(to_string(Region::RestOfEurope), "Rest of Europe");
  EXPECT_EQ(to_string(Continent::NorthAmerica), "N. America");
}

/// Registry-wide invariants, parameterized over every country.
class CountryInvariants : public ::testing::TestWithParam<Country> {};

TEST_P(CountryInvariants, FieldsAreSane) {
  const Country& country = GetParam();
  EXPECT_EQ(country.code.size(), 2U);
  EXPECT_FALSE(country.name.empty());
  EXPECT_GE(country.centroid.lat, -60.0);
  EXPECT_LE(country.centroid.lat, 72.0);
  EXPECT_GE(country.centroid.lon, -180.0);
  EXPECT_LE(country.centroid.lon, 180.0);
  EXPECT_GT(country.population_m, 0.0);
  EXPECT_GE(country.infra_density, 0.0);
  EXPECT_LE(country.infra_density, 100.0);
  EXPECT_GE(country.probe_share, 0.0);
}

TEST_P(CountryInvariants, EU28ImpliesEurope) {
  const Country& country = GetParam();
  if (country.eu28) {
    EXPECT_EQ(country.continent, Continent::Europe);
  }
}

TEST_P(CountryInvariants, RegionAgreesWithContinent) {
  const Country& country = GetParam();
  const Region region = region_of(country);
  if (country.continent != Continent::Europe) {
    EXPECT_NE(region, Region::EU28);
    EXPECT_NE(region, Region::RestOfEurope);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCountries, CountryInvariants,
                         ::testing::ValuesIn(all_countries().begin(),
                                             all_countries().end()),
                         [](const ::testing::TestParamInfo<Country>& info) {
                           return std::string(info.param.code);
                         });

TEST(Countries, CodesAreUnique) {
  std::set<std::string_view> codes;
  for (const auto& country : all_countries()) codes.insert(country.code);
  EXPECT_EQ(codes.size(), country_count());
}

TEST(Countries, ProbeShareIsEuropeHeavy) {
  double europe = 0.0;
  double total = 0.0;
  for (const auto& country : all_countries()) {
    total += country.probe_share;
    if (country.continent == Continent::Europe) europe += country.probe_share;
  }
  // RIPE Atlas reality: more than 45% of probes are European.
  EXPECT_GT(europe / total, 0.45);
}

}  // namespace
}  // namespace cbwt::geo
