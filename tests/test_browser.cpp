#include "browser/extension.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/url.h"

namespace cbwt::browser {
namespace {

class BrowserTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 31337;
    config.scale = 0.01;
    world_ = new world::World(world::build_world(config));
    resolver_ = new dns::Resolver(*world_);
    util::Rng rng(7);
    CollectorConfig collector;
    store_ = new pdns::Store();
    dataset_ = new ExtensionDataset(
        collect_extension_dataset(*world_, *resolver_, collector, rng, store_));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete store_;
    delete resolver_;
    delete world_;
  }
  static world::World* world_;
  static dns::Resolver* resolver_;
  static pdns::Store* store_;
  static ExtensionDataset* dataset_;
};

world::World* BrowserTest::world_ = nullptr;
dns::Resolver* BrowserTest::resolver_ = nullptr;
pdns::Store* BrowserTest::store_ = nullptr;
ExtensionDataset* BrowserTest::dataset_ = nullptr;

TEST_F(BrowserTest, ProducesTraffic) {
  EXPECT_GT(dataset_->first_party_visits, 100U);
  EXPECT_GT(dataset_->requests.size(), dataset_->first_party_visits * 10);
  EXPECT_GT(dataset_->distinct_publishers, 50U);
}

TEST_F(BrowserTest, EveryUrlParsesAndMatchesItsDomain) {
  for (const auto& request : dataset_->requests) {
    const auto url = net::Url::parse(request.url);
    ASSERT_TRUE(url.has_value()) << request.url;
    EXPECT_EQ(url->host(), world_->domain(request.domain).fqdn);
  }
}

TEST_F(BrowserTest, ServerIpBelongsToTheRequestedDomain) {
  for (const auto& request : dataset_->requests) {
    const auto& domain = world_->domain(request.domain);
    const world::Server* server = world_->find_server(request.server_ip);
    ASSERT_NE(server, nullptr);
    const bool listed = std::find(domain.servers.begin(), domain.servers.end(),
                                  server->id) != domain.servers.end();
    EXPECT_TRUE(listed) << domain.fqdn;
  }
}

TEST_F(BrowserTest, EntryRequestsCarryFirstPartyReferrer) {
  for (const auto& request : dataset_->requests) {
    if (request.chain_depth != 0) continue;
    const auto& publisher = world_->publisher(request.publisher);
    EXPECT_EQ(request.referrer, "https://" + publisher.domain + "/");
  }
}

TEST_F(BrowserTest, ChainedRequestsReferenceARealParentUrl) {
  // Build the set of all URLs; every chained referrer must be in it.
  std::unordered_set<std::string_view> urls;
  for (const auto& request : dataset_->requests) urls.insert(request.url);
  std::size_t chained = 0;
  for (const auto& request : dataset_->requests) {
    if (request.chain_depth == 0) continue;
    ++chained;
    EXPECT_TRUE(urls.contains(request.referrer)) << request.referrer;
  }
  EXPECT_GT(chained, dataset_->requests.size() / 5);
}

TEST_F(BrowserTest, ChainDepthsFormTheRtbCascade) {
  bool depth1 = false;
  bool depth2 = false;
  bool depth3 = false;
  for (const auto& request : dataset_->requests) {
    depth1 = depth1 || request.chain_depth == 1;
    depth2 = depth2 || request.chain_depth == 2;
    depth3 = depth3 || request.chain_depth >= 3;
  }
  EXPECT_TRUE(depth1);  // bid requests
  EXPECT_TRUE(depth2);  // cookie syncs
  EXPECT_TRUE(depth3);  // recursive sync cascades
}

TEST_F(BrowserTest, HttpsShareNearConfigured) {
  std::size_t https = 0;
  for (const auto& request : dataset_->requests) https += request.https ? 1 : 0;
  const double share = static_cast<double>(https) / dataset_->requests.size();
  EXPECT_NEAR(share, 0.8314, 0.02);  // paper: 83.14%
}

TEST_F(BrowserTest, RolesEmitTheirUrlShapes) {
  bool saw_ad_path = false;
  bool saw_sync_keyword = false;
  bool saw_bid = false;
  for (const auto& request : dataset_->requests) {
    const auto role = world_->org(world_->domain(request.domain).org).role;
    if (role == world::OrgRole::AdNetwork && request.url.find("/ads/") != std::string::npos) {
      saw_ad_path = true;
    }
    if (role == world::OrgRole::SyncService) {
      saw_sync_keyword = saw_sync_keyword ||
                         request.url.find("usermatch") != std::string::npos ||
                         request.url.find("cookiesync") != std::string::npos ||
                         request.url.find("uid_sync") != std::string::npos ||
                         request.url.find("idsync") != std::string::npos ||
                         request.url.find("cm=") != std::string::npos;
    }
    if (role == world::OrgRole::Dsp && request.url.find("/bid?") != std::string::npos) {
      saw_bid = true;
    }
  }
  EXPECT_TRUE(saw_ad_path);
  EXPECT_TRUE(saw_sync_keyword);
  EXPECT_TRUE(saw_bid);
}

TEST_F(BrowserTest, FeedsPdnsWithItsResolutions) {
  EXPECT_GT(store_->record_count(), 100U);
  // Spot-check: a random request's (fqdn, ip, day) is valid in the store.
  const auto& request = dataset_->requests.front();
  const auto& domain = world_->domain(request.domain);
  EXPECT_TRUE(store_->valid_at(domain.fqdn, request.server_ip, request.day));
}

TEST_F(BrowserTest, DaysStayInsideTheWindow) {
  for (const auto& request : dataset_->requests) {
    EXPECT_GE(request.day, 0);
    EXPECT_LE(request.day, 135);
  }
}

TEST(BrowserAblation, CrawlerSeesFewerRequestsThanRealUsers) {
  world::WorldConfig config;
  config.seed = 2024;
  config.scale = 0.01;
  const auto world = world::build_world(config);
  const dns::Resolver resolver(world);

  CollectorConfig real_users;
  real_users.user_interaction = true;
  CollectorConfig crawler;
  crawler.user_interaction = false;

  util::Rng rng_a(5);
  const auto with_interaction =
      collect_extension_dataset(world, resolver, real_users, rng_a);
  util::Rng rng_b(5);
  const auto without_interaction =
      collect_extension_dataset(world, resolver, crawler, rng_b);

  // Interaction-gated requests (ads rendered on visibility) disappear for
  // the crawler — the paper's argument for recruiting real users (§3.1).
  EXPECT_LT(without_interaction.requests.size(), with_interaction.requests.size());
  for (const auto& request : without_interaction.requests) {
    EXPECT_FALSE(request.interaction_triggered);
  }
}

TEST(BrowserUnit, VisitsFillTheCookieJar) {
  world::WorldConfig config;
  config.seed = 21;
  config.scale = 0.01;
  config.publishers = 50;
  const auto world = world::build_world(config);
  const dns::Resolver resolver(world);
  util::Rng rng(9);
  std::vector<ThirdPartyRequest> out;
  CollectorConfig collector;
  rtb::CookieJar jar;
  // A few visits accumulate org ids and sync edges in the jar.
  for (int v = 0; v < 5; ++v) {
    render_visit(world, resolver, world.users().front(), world.publishers()[v], 3,
                 collector, rng, out, nullptr, &jar);
  }
  EXPECT_GT(jar.known_orgs(), 5U);
  EXPECT_GT(jar.sync_edges(), 0U);
  // Every synced pair involves orgs the jar has ids for... the initiator
  // at least was contacted during the cascade.
  for (const auto& [a, b] : jar.sync_pairs()) {
    EXPECT_NE(a, b);
    EXPECT_NE(world.org(a).role, world::OrgRole::CleanService);
    EXPECT_NE(world.org(b).role, world::OrgRole::CleanService);
  }
}

TEST(BrowserUnit, RenderVisitAppendsForOnePage) {
  world::WorldConfig config;
  config.seed = 11;
  config.scale = 0.01;
  config.publishers = 50;
  const auto world = world::build_world(config);
  const dns::Resolver resolver(world);
  util::Rng rng(3);
  std::vector<ThirdPartyRequest> out;
  CollectorConfig collector;
  render_visit(world, resolver, world.users().front(), world.publishers().front(), 7,
               collector, rng, out);
  EXPECT_FALSE(out.empty());
  for (const auto& request : out) {
    EXPECT_EQ(request.user, world.users().front().id);
    EXPECT_EQ(request.publisher, world.publishers().front().id);
    EXPECT_EQ(request.day, 7);
  }
}

}  // namespace
}  // namespace cbwt::browser
