// cbwt::store: mapped columnar files, superblock validation, blob
// interning, checkpoint manifests — and the subsystem guarantee that
// store-backed datasets and checkpoint/resume reproduce the in-memory
// pipeline bit for bit at any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "browser/dataset_store.h"
#include "core/study.h"
#include "netflow/profile.h"
#include "netflow/snapshot_store.h"
#include "netflow/wire.h"
#include "obs/metrics.h"
#include "pdns/checkpoint.h"
#include "store/blob_file.h"
#include "store/bytes.h"
#include "store/checkpoint.h"
#include "store/dataset.h"
#include "store/mapped_file.h"
#include "store/record_file.h"
#include "store/superblock.h"

namespace cbwt {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/cbwt_store_" + name;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- bytes ------------------------------------------------------------

TEST(StoreBytes, RoundTripsBigEndian) {
  std::uint8_t buf[8] = {};
  store::put_u16(buf, 0xBEEF);
  EXPECT_EQ(buf[0], 0xBE);
  EXPECT_EQ(store::get_u16(buf), 0xBEEF);
  store::put_u32(buf, 0xDEADBEEF);
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(store::get_u32(buf), 0xDEADBEEFu);
  store::put_u64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(store::get_u64(buf), 0x0123456789ABCDEFULL);
}

TEST(StoreBytes, FnvIsIncremental) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7};
  const auto whole = store::fnv1a({data.data(), data.size()});
  const auto head = store::fnv1a({data.data(), 3});
  const auto both = store::fnv1a({data.data() + 3, 4}, head);
  EXPECT_EQ(both, whole);
  EXPECT_NE(whole, store::fnv1a({data.data(), 6}));
}

// --- superblock -------------------------------------------------------

store::Superblock sample_superblock() {
  store::Superblock block;
  block.kind = store::RecordKind::NetflowWire;
  block.record_size = 57;
  block.record_count = 10;
  block.payload_bytes = 570;
  block.checksum = 0xABCD;
  return block;
}

TEST(StoreSuperblock, EncodeParseFixpoint) {
  std::uint8_t buf[store::kSuperblockSize];
  store::encode_superblock(sample_superblock(), {buf, sizeof buf});
  const auto parsed = store::parse_superblock({buf, sizeof buf});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, store::RecordKind::NetflowWire);
  EXPECT_EQ(parsed->record_size, 57u);
  EXPECT_EQ(parsed->record_count, 10u);
  EXPECT_EQ(parsed->payload_bytes, 570u);
  EXPECT_EQ(parsed->checksum, 0xABCDu);
  std::uint8_t again[store::kSuperblockSize];
  store::encode_superblock(*parsed, {again, sizeof again});
  EXPECT_EQ(std::vector<std::uint8_t>(buf, buf + sizeof buf),
            std::vector<std::uint8_t>(again, again + sizeof again));
}

TEST(StoreSuperblock, RejectsCorruption) {
  std::uint8_t buf[store::kSuperblockSize];
  store::encode_superblock(sample_superblock(), {buf, sizeof buf});
  EXPECT_TRUE(store::parse_superblock({buf, sizeof buf}).has_value());

  auto corrupt = [&](std::size_t at, std::uint8_t value) {
    std::uint8_t copy[store::kSuperblockSize];
    std::copy(buf, buf + sizeof buf, copy);
    copy[at] = value;
    return store::parse_superblock({copy, sizeof copy});
  };
  EXPECT_FALSE(corrupt(0, 'X').has_value());                       // magic
  EXPECT_FALSE(corrupt(8, 0xFF).has_value());                      // version
  EXPECT_FALSE(corrupt(11, 99).has_value());                       // kind
  EXPECT_FALSE(corrupt(63, 1).has_value());                        // reserved
  EXPECT_FALSE(corrupt(23, 1).has_value());                        // count vs payload
  EXPECT_FALSE(store::parse_superblock({buf, 32}).has_value());    // short
}

// --- mapped file ------------------------------------------------------

TEST(StoreMappedFile, CreateGrowTruncateReopen) {
  const std::string path = temp_path("mapped.bin");
  {
    auto file = store::MappedFile::create(path, 128);
    ASSERT_TRUE(file.is_open());
    EXPECT_GE(file.size(), 128u);
    file.data()[0] = 0xAB;
    file.grow_to(2 * 1024 * 1024);
    EXPECT_GE(file.size(), 2u * 1024 * 1024);
    EXPECT_EQ(file.data()[0], 0xAB);  // contents survive remap
    file.data()[file.size() - 1] = 0xCD;
    file.sync();
    file.truncate_to(4096);
  }
  auto reader = store::MappedFile::open_readonly(path);
  ASSERT_TRUE(reader.is_open());
  EXPECT_EQ(reader.size(), 4096u);
  EXPECT_EQ(reader.data()[0], 0xAB);
  EXPECT_THROW((void)store::MappedFile::open_readonly(temp_path("missing.bin")),
               store::StoreError);
}

// --- record file (netflow wire codec) ---------------------------------

netflow::RawRecord sample_record(std::uint32_t i) {
  netflow::RawRecord record;
  record.timestamp_s = i;
  record.router = static_cast<std::uint16_t>(i % 48);
  record.interface = static_cast<std::uint16_t>(i % 8);
  record.internal_interface = (i % 3) != 0;
  record.protocol = (i % 2) != 0 ? 6 : 17;
  record.src = net::IpAddress::v4(0x0A000000u + i);
  record.dst = (i % 2) != 0 ? net::IpAddress::v6(0x20010DB8u, i)
                            : net::IpAddress::v4(0xC0A80000u + i);
  record.src_port = static_cast<std::uint16_t>(32768 + i);
  record.dst_port = (i % 2) != 0 ? 443 : 80;
  record.packets = 1 + i;
  record.bytes = 60 * (1 + i);
  record.tos = static_cast<std::uint8_t>(i);
  return record;
}

TEST(StoreRecordFile, RoundTripsAcrossGrowth) {
  const std::string path = temp_path("records.rec");
  constexpr std::uint32_t kCount = 100'000;  // forces several grow_to remaps
  {
    store::RecordFileWriter<netflow::WireCodec> writer(path);
    for (std::uint32_t i = 0; i < kCount; ++i) writer.append(sample_record(i));
    EXPECT_EQ(writer.size(), kCount);
    writer.finalize();
  }
  const store::RecordFileReader<netflow::WireCodec> reader(path);
  ASSERT_EQ(reader.size(), kCount);
  EXPECT_EQ(reader.at(0), sample_record(0));
  EXPECT_EQ(reader.at(kCount - 1), sample_record(kCount - 1));
  std::uint64_t seen = 0;
  reader.for_each_chunk(4096, [&](std::span<const netflow::RawRecord> chunk,
                                  std::uint64_t base) {
    EXPECT_EQ(base, seen);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      ASSERT_EQ(chunk[i], sample_record(static_cast<std::uint32_t>(base + i)));
    }
    seen += chunk.size();
  });
  EXPECT_EQ(seen, kCount);
  // Exact file length: superblock + payload, no slack pages left behind.
  EXPECT_EQ(std::filesystem::file_size(path),
            store::kSuperblockSize + std::uint64_t{kCount} * netflow::kWireRecordSize);
}

TEST(StoreRecordFile, WriterDtorFinalizes) {
  const std::string path = temp_path("dtor.rec");
  {
    store::RecordFileWriter<netflow::WireCodec> writer(path);
    writer.append(sample_record(7));
    // no explicit finalize(): the destructor must stamp the superblock
  }
  const store::RecordFileReader<netflow::WireCodec> reader(path);
  ASSERT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.at(0), sample_record(7));
}

TEST(StoreRecordFile, IoMetricsCountWritesReadsAndChecksumWork) {
  const std::string path = temp_path("metrics.rec");
  constexpr std::uint64_t kCount = 1000;
  const std::uint64_t payload = kCount * netflow::kWireRecordSize;
  const std::uint64_t payload_pages = (payload + 4095) / 4096;

  obs::Registry registry;
  {
    store::RecordFileWriter<netflow::WireCodec> writer(path, &registry);
    for (std::uint32_t i = 0; i < kCount; ++i) writer.append(sample_record(i));
    // Counters accumulate off the hot path: nothing before finalize.
    EXPECT_EQ(registry.counter_value("cbwt_store_records_written_total"), 0u);
    writer.finalize();
    writer.finalize();  // idempotent: no double count
  }
  EXPECT_EQ(registry.counter_value("cbwt_store_records_written_total"), kCount);
  EXPECT_EQ(registry.counter_value("cbwt_store_bytes_written_total"),
            store::kSuperblockSize + payload);
  EXPECT_EQ(registry.counter_value("cbwt_store_files_finalized_total"), 1u);
  // Small payload: one 8 MiB checksum window, every payload page dropped.
  EXPECT_EQ(registry.counter_value("cbwt_store_checksum_windows_total"), 1u);
  EXPECT_EQ(registry.counter_value("cbwt_store_pages_dropped_total"), payload_pages);

  const store::RecordFileReader<netflow::WireCodec> reader(path, &registry);
  EXPECT_EQ(registry.counter_value("cbwt_store_files_opened_total"), 1u);
  // Open-time validation re-checksums the payload.
  EXPECT_EQ(registry.counter_value("cbwt_store_checksum_windows_total"), 2u);

  std::uint64_t chunk_pages = 0;
  reader.for_each_chunk(256, [&](std::span<const netflow::RawRecord> chunk,
                                 std::uint64_t /*base*/) {
    chunk_pages += (chunk.size() * netflow::kWireRecordSize + 4095) / 4096;
  });
  EXPECT_EQ(registry.counter_value("cbwt_store_records_read_total"), kCount);
  EXPECT_EQ(registry.counter_value("cbwt_store_bytes_read_total"), payload);
  EXPECT_EQ(registry.counter_value("cbwt_store_pages_dropped_total"),
            2 * payload_pages + chunk_pages);

  // No registry -> the metric paths are null-check no-ops.
  const store::RecordFileReader<netflow::WireCodec> silent(path);
  silent.for_each_chunk(4096, [](auto, std::uint64_t) {});
  EXPECT_EQ(registry.counter_value("cbwt_store_files_opened_total"), 1u);
}

TEST(StoreRecordFile, RejectsCorruptionAndMismatch) {
  const std::string path = temp_path("corrupt.rec");
  {
    store::RecordFileWriter<netflow::WireCodec> writer(path);
    for (std::uint32_t i = 0; i < 100; ++i) writer.append(sample_record(i));
  }
  // Flip one payload byte: the checksum must catch it.
  std::filesystem::copy_file(path, path + ".flip2",
                             std::filesystem::copy_options::overwrite_existing);
  {
    std::FILE* f = std::fopen((path + ".flip2").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, store::kSuperblockSize + 10, SEEK_SET);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  EXPECT_THROW((store::RecordFileReader<netflow::WireCodec>(path + ".flip2")),
               store::StoreError);
  // Truncated payload: geometry check.
  std::filesystem::resize_file(path + ".flip2", store::kSuperblockSize + 57);
  EXPECT_THROW((store::RecordFileReader<netflow::WireCodec>(path + ".flip2")),
               store::StoreError);
  // A valid file of a different record kind must be refused by kind tag.
  const std::string pdns_path = temp_path("kind.rec");
  {
    store::RecordFileWriter<pdns::RecordRowCodec> writer(pdns_path);
    pdns::RecordRow row;
    row.ip = net::IpAddress::v4(1);
    writer.append(row);
  }
  EXPECT_THROW((store::RecordFileReader<netflow::WireCodec>(pdns_path)),
               store::StoreError);
}

// --- record source ----------------------------------------------------

TEST(StoreRecordSource, MemoryAndStoreBackedIterateIdentically) {
  std::vector<netflow::RawRecord> records;
  for (std::uint32_t i = 0; i < 10'000; ++i) records.push_back(sample_record(i));
  const std::string path = temp_path("source.rec");
  {
    store::RecordFileWriter<netflow::WireCodec> writer(path);
    writer.append(std::span<const netflow::RawRecord>(records));
  }
  const store::RecordSource<netflow::WireCodec> memory{
      std::span<const netflow::RawRecord>(records)};
  const store::RecordSource<netflow::WireCodec> backed{
      store::RecordFileReader<netflow::WireCodec>(path)};
  EXPECT_FALSE(memory.store_backed());
  EXPECT_TRUE(backed.store_backed());
  ASSERT_EQ(memory.size(), backed.size());
  for (const std::size_t chunk : {1ul, 997ul, 4096ul, 1000000ul}) {
    std::vector<netflow::RawRecord> a;
    std::vector<netflow::RawRecord> b;
    memory.for_each_chunk(chunk, [&](auto span, std::uint64_t base) {
      EXPECT_EQ(base, a.size());
      a.insert(a.end(), span.begin(), span.end());
    });
    backed.for_each_chunk(chunk, [&](auto span, std::uint64_t base) {
      EXPECT_EQ(base, b.size());
      b.insert(b.end(), span.begin(), span.end());
    });
    EXPECT_EQ(a, records);
    EXPECT_EQ(a, b);
  }
}

// --- blob file --------------------------------------------------------

TEST(StoreBlobFile, InternsAndReadsBack) {
  const std::string path = temp_path("blobs.blob");
  store::BlobRef a;
  store::BlobRef b;
  store::BlobRef c;
  {
    store::BlobFileWriter writer(path);
    a = writer.intern("tracker.example");
    b = writer.intern("cdn.example");
    c = writer.intern("tracker.example");  // dedupe: same handle
    EXPECT_EQ(a, c);
    EXPECT_EQ(writer.size(), 2u);
    const auto empty = writer.intern("");
    EXPECT_EQ(empty.length, 0u);
    EXPECT_EQ(writer.size(), 2u);  // empty blob is the implicit zero ref
  }
  const store::BlobFileReader reader(path);
  EXPECT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.view(a), "tracker.example");
  EXPECT_EQ(reader.view(b), "cdn.example");
  EXPECT_EQ(reader.view(store::BlobRef{}), "");
  // A ref pointing outside the payload is a cross-file inconsistency.
  EXPECT_THROW((void)reader.view(store::BlobRef{1000, 50}), store::StoreError);
}

// --- checkpoint manifest ----------------------------------------------

TEST(StoreManifest, RoundTripsExactly) {
  const std::string path = temp_path("manifest.txt");
  store::Manifest manifest;
  manifest.set_u64("seed", 20180901);
  manifest.set_f64("world_scale", 0.01);  // not exactly representable
  manifest.set_f64("negative", -2.5e-17);
  manifest.set("file", "dataset.rec");
  manifest.set("file", "pdns.rec");
  store::write_manifest(path, manifest);
  const auto loaded = store::read_manifest(path);
  EXPECT_EQ(loaded.get_u64("seed"), 20180901u);
  // Bit-exact double round-trip, not a decimal approximation.
  EXPECT_EQ(loaded.get_f64("world_scale"), 0.01);
  EXPECT_EQ(loaded.get_f64("negative"), -2.5e-17);
  const auto files = loaded.get_all("file");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "dataset.rec");
  EXPECT_EQ(files[1], "pdns.rec");
  EXPECT_FALSE(loaded.get("absent").has_value());
  EXPECT_THROW((void)store::read_manifest(temp_path("no_manifest.txt")),
               store::StoreError);
}

// --- pdns checkpoint --------------------------------------------------

TEST(StorePdnsCheckpoint, RestoredStoreIsIndistinguishable) {
  pdns::Store original;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const std::string fqdn = "t" + std::to_string(i % 40) + ".track.example";
    original.observe(fqdn, "track.example", net::IpAddress::v4(0x0A000000u + i % 60),
                     static_cast<pdns::Day>(i % 30));
    original.observe(fqdn, "track.example", net::IpAddress::v6(0x20010DB8, i % 13),
                     static_cast<pdns::Day>(i % 90));
  }
  const std::string dir = temp_dir("pdns_ckpt");
  pdns::save_store(original, dir + "/pdns.rec", dir + "/pdns.blob");
  const pdns::Store restored = pdns::load_store(dir + "/pdns.rec", dir + "/pdns.blob");

  ASSERT_EQ(restored.record_count(), original.record_count());
  for (std::size_t i = 0; i < original.records().size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = restored.records()[i];
    EXPECT_EQ(a.fqdn, b.fqdn);
    EXPECT_EQ(a.registrable, b.registrable);
    EXPECT_EQ(a.ip, b.ip);
    EXPECT_EQ(a.first_seen, b.first_seen);
    EXPECT_EQ(a.last_seen, b.last_seen);
    EXPECT_EQ(a.observations, b.observations);
  }
  EXPECT_EQ(restored.all_ips(), original.all_ips());
  EXPECT_EQ(restored.ips_of_registrable("track.example"),
            original.ips_of_registrable("track.example"));
  EXPECT_EQ(restored.ips_of_registrable_at("track.example", 10),
            original.ips_of_registrable_at("track.example", 10));
  EXPECT_EQ(restored.observations_of(net::IpAddress::v4(0x0A000005u)),
            original.observations_of(net::IpAddress::v4(0x0A000005u)));
}

// --- browser dataset checkpoint ---------------------------------------

TEST(StoreBrowserCheckpoint, RestoredRequestsMatchExactly) {
  browser::ExtensionDataset dataset;
  for (std::uint32_t i = 0; i < 2'000; ++i) {
    browser::ThirdPartyRequest request;
    request.user = i % 350;
    request.publisher = i % 90;
    request.domain = i % 200;
    request.url = "https://t" + std::to_string(i % 25) + ".example/pix?id=" +
                  std::to_string(i % 7);
    request.referrer = (i % 3) != 0 ? "https://pub" + std::to_string(i % 90) + ".example/"
                                    : std::string{};
    request.server_ip = (i % 5) != 0 ? net::IpAddress::v4(0x0B000000u + i % 100)
                                     : net::IpAddress::v6(0x20010DB8, i % 17);
    request.day = static_cast<pdns::Day>(i % 135);
    request.chain_depth = static_cast<std::uint8_t>(i % 4);
    request.https = (i % 6) != 0;
    request.interaction_triggered = (i % 11) == 0;
    dataset.requests.push_back(std::move(request));
  }
  const std::string dir = temp_dir("browser_ckpt");
  browser::save_requests(dataset, dir + "/dataset.rec", dir + "/dataset.blob");
  const auto restored = browser::load_requests(dir + "/dataset.rec", dir + "/dataset.blob");
  ASSERT_EQ(restored.size(), dataset.requests.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    const auto& a = dataset.requests[i];
    const auto& b = restored[i];
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.publisher, b.publisher);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.url, b.url);
    EXPECT_EQ(a.referrer, b.referrer);
    EXPECT_EQ(a.server_ip, b.server_ip);
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.chain_depth, b.chain_depth);
    EXPECT_EQ(a.https, b.https);
    EXPECT_EQ(a.interaction_triggered, b.interaction_triggered);
  }
}

// --- end-to-end: store-backed == in-memory, resume == straight-through -

core::StudyConfig small_config(unsigned threads) {
  core::StudyConfig config;
  config.world.seed = 20180901;
  // Same sizing rationale as the determinism sweep in test_runtime: two
  // full studies per TEST_P process, also run under sanitizers in CI.
  config.world.scale = 0.01;
  config.netflow.scale = 2e-5;
  config.threads = threads;
  return config;
}

void expect_same_collection(const netflow::CollectionResult& got,
                            const netflow::CollectionResult& ref) {
  EXPECT_EQ(got.records_seen, ref.records_seen);
  EXPECT_EQ(got.internal_records, ref.internal_records);
  EXPECT_EQ(got.matched_records, ref.matched_records);
  EXPECT_EQ(got.https_records, ref.https_records);
  EXPECT_EQ(got.udp_records, ref.udp_records);
  EXPECT_EQ(got.dropped_records, ref.dropped_records);
  EXPECT_EQ(got.per_ip, ref.per_ip);
}

/// The tentpole guarantee: a store-backed study produces byte-identical
/// results to the in-memory one, for every thread count.
class StoreBackedDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(StoreBackedDeterminism, MatchesInMemoryBitForBit) {
  auto memory_config = small_config(GetParam());
  auto store_config = small_config(GetParam());
  store_config.storage.mode = store::Mode::StoreBacked;
  store_config.storage.directory =
      temp_dir("backed_t" + std::to_string(GetParam()));
  // An odd chunk size exercises chunk-boundary handling; results must
  // not depend on it.
  store_config.storage.chunk_records = 30'000;
  core::Study memory(memory_config);
  core::Study backed(store_config);

  const auto isp = netflow::default_isps()[0];
  const auto snapshot = netflow::default_snapshots()[0];
  const auto ref_run = memory.run_isp_snapshot(isp, snapshot);
  const auto got_run = backed.run_isp_snapshot(isp, snapshot);
  EXPECT_EQ(got_run.exported_records, ref_run.exported_records);
  expect_same_collection(got_run.collection, ref_run.collection);

  // With no registry attached, run_report() is a pure function of the
  // config — the two reports must be byte-identical.
  EXPECT_EQ(backed.run_report(), memory.run_report());
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, StoreBackedDeterminism,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

/// The out-of-core join's counters must account for its spill files
/// exactly: cbwt_netflow_join_spill_bytes_total equals the finalized
/// partition files on disk byte for byte, every collected record was
/// probed from a spill page, and run_report() surfaces the counters.
TEST(StoreJoinCounters, SpillBytesMatchDiskExactly) {
  auto config = small_config(2);
  config.storage.mode = store::Mode::StoreBacked;
  config.storage.directory = temp_dir("join_counters");
  obs::Registry registry;
  config.registry = &registry;
  core::Study study(config);
  const auto isp = netflow::default_isps()[0];
  const auto snapshot = netflow::default_snapshots()[0];
  const auto run = study.run_isp_snapshot(isp, snapshot);

  EXPECT_EQ(registry.counter_value("cbwt_netflow_join_partitions_total"),
            config.storage.join_partitions);
  EXPECT_EQ(registry.counter_value("cbwt_netflow_join_probe_records_total"),
            run.collection.records_seen);
  EXPECT_EQ(registry.counter_value("cbwt_netflow_records_collected_total"),
            run.collection.records_seen);

  std::uint64_t disk_bytes = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           config.storage.directory)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.starts_with("part_") &&
        name.ends_with(".rec")) {
      disk_bytes += entry.file_size();
    }
  }
  EXPECT_GT(disk_bytes, 0u);
  EXPECT_EQ(registry.counter_value("cbwt_netflow_join_spill_bytes_total"),
            disk_bytes);
  EXPECT_NE(study.run_report().find("cbwt_netflow_join_spill_bytes_total"),
            std::string::npos);
}

/// Checkpoint/resume: a process that saves after the dataset stage and
/// a second process that resumes from the directory must reproduce the
/// straight-through run exactly — including when the resumed study runs
/// at a different thread count.
class CheckpointResume : public ::testing::TestWithParam<unsigned> {};

TEST_P(CheckpointResume, ResumeEqualsStraightThrough) {
  const std::string dir = temp_dir("resume_t" + std::to_string(GetParam()));

  // "Process 1": run the dataset stage and checkpoint (replication has
  // not run yet; the manifest records that).
  {
    core::Study first(small_config(2));
    (void)first.dataset();
    first.save_checkpoint(dir);
  }

  // Straight-through reference.
  core::Study reference(small_config(1));
  // "Process 2": resume from the checkpoint at the swept thread count.
  auto resumed_config = small_config(GetParam());
  resumed_config.storage.resume_from = dir;
  core::Study resumed(resumed_config);

  ASSERT_EQ(resumed.dataset().requests.size(), reference.dataset().requests.size());
  EXPECT_EQ(resumed.dataset().first_party_visits, reference.dataset().first_party_visits);
  EXPECT_EQ(resumed.dataset().distinct_publishers,
            reference.dataset().distinct_publishers);
  EXPECT_EQ(resumed.pdns_store().record_count(), reference.pdns_store().record_count());
  EXPECT_EQ(resumed.pdns_store().all_ips(), reference.pdns_store().all_ips());
  EXPECT_EQ(resumed.completed_tracker_ips(), reference.completed_tracker_ips());

  const auto isp = netflow::default_isps()[0];
  const auto snapshot = netflow::default_snapshots()[0];
  const auto ref_run = reference.run_isp_snapshot(isp, snapshot);
  const auto got_run = resumed.run_isp_snapshot(isp, snapshot);
  EXPECT_EQ(got_run.exported_records, ref_run.exported_records);
  expect_same_collection(got_run.collection, ref_run.collection);
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, CheckpointResume, ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(CheckpointResumeEdge, PostReplicationCheckpointSkipsReplication) {
  const std::string dir = temp_dir("resume_post_repl");
  core::Study reference(small_config(1));
  {
    core::Study first(small_config(1));
    (void)first.pdns_store();  // replication has run before the save
    first.save_checkpoint(dir);
  }
  auto resumed_config = small_config(1);
  resumed_config.storage.resume_from = dir;
  core::Study resumed(resumed_config);
  EXPECT_EQ(resumed.pdns_store().all_ips(), reference.pdns_store().all_ips());
  EXPECT_EQ(resumed.completed_tracker_ips(), reference.completed_tracker_ips());
  // Identical configs, identical state -> byte-identical reports.
  EXPECT_EQ(resumed.run_report(), reference.run_report());
}

TEST(CheckpointResumeEdge, RejectsMismatchedSeedOrScale) {
  const std::string dir = temp_dir("resume_mismatch");
  {
    core::Study first(small_config(1));
    first.save_checkpoint(dir);
  }
  auto wrong_seed = small_config(1);
  wrong_seed.world.seed = 7;
  wrong_seed.storage.resume_from = dir;
  core::Study bad_seed(wrong_seed);
  EXPECT_THROW((void)bad_seed.dataset(), store::StoreError);

  auto wrong_scale = small_config(1);
  wrong_scale.world.scale = 0.02;
  wrong_scale.storage.resume_from = dir;
  core::Study bad_scale(wrong_scale);
  EXPECT_THROW((void)bad_scale.dataset(), store::StoreError);
}

}  // namespace
}  // namespace cbwt
