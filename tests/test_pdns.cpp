#include "pdns/replication.h"
#include "pdns/store.h"

#include <gtest/gtest.h>

namespace cbwt::pdns {
namespace {

net::IpAddress ip(std::uint32_t v) { return net::IpAddress::v4(v); }

TEST(Store, ObserveCreatesAndExtendsWindows) {
  Store store;
  store.observe("a.t.com", "t.com", ip(1), 10);
  store.observe("a.t.com", "t.com", ip(1), 30);
  store.observe("a.t.com", "t.com", ip(1), 20);
  EXPECT_EQ(store.record_count(), 1U);
  const auto records = store.forward("a.t.com");
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0]->first_seen, 10);
  EXPECT_EQ(records[0]->last_seen, 30);
  EXPECT_EQ(records[0]->observations, 3U);
}

TEST(Store, SeparateRecordsPerIp) {
  Store store;
  store.observe("a.t.com", "t.com", ip(1), 10);
  store.observe("a.t.com", "t.com", ip(2), 10);
  EXPECT_EQ(store.record_count(), 2U);
  EXPECT_EQ(store.forward("a.t.com").size(), 2U);
}

TEST(Store, ReverseLookup) {
  Store store;
  store.observe("a.t.com", "t.com", ip(1), 10);
  store.observe("b.u.com", "u.com", ip(1), 12);
  const auto records = store.reverse(ip(1));
  ASSERT_EQ(records.size(), 2U);
  EXPECT_TRUE(store.reverse(ip(9)).empty());
}

TEST(Store, ValidAtRespectsWindow) {
  Store store;
  store.observe("a.t.com", "t.com", ip(1), 10);
  store.observe("a.t.com", "t.com", ip(1), 20);
  EXPECT_TRUE(store.valid_at("a.t.com", ip(1), 10));
  EXPECT_TRUE(store.valid_at("a.t.com", ip(1), 15));
  EXPECT_TRUE(store.valid_at("a.t.com", ip(1), 20));
  EXPECT_FALSE(store.valid_at("a.t.com", ip(1), 9));
  EXPECT_FALSE(store.valid_at("a.t.com", ip(1), 21));
  EXPECT_FALSE(store.valid_at("a.t.com", ip(2), 15));
  EXPECT_FALSE(store.valid_at("zzz", ip(1), 15));
}

TEST(Store, RegistrableCountPerIp) {
  Store store;
  store.observe("a.t.com", "t.com", ip(1), 1);
  store.observe("b.t.com", "t.com", ip(1), 1);  // same registrable
  store.observe("c.u.com", "u.com", ip(1), 1);
  EXPECT_EQ(store.registrable_count(ip(1)), 2U);
  EXPECT_EQ(store.registrable_count(ip(9)), 0U);
  EXPECT_EQ(store.observations_of(ip(1)), 3U);
}

TEST(Store, AllIpsSortedUnique) {
  Store store;
  store.observe("a.t.com", "t.com", ip(5), 1);
  store.observe("b.t.com", "t.com", ip(3), 1);
  store.observe("c.t.com", "t.com", ip(5), 1);
  const auto ips = store.all_ips();
  ASSERT_EQ(ips.size(), 2U);
  EXPECT_EQ(ips[0], ip(3));
  EXPECT_EQ(ips[1], ip(5));
}

TEST(Store, IpsOfRegistrable) {
  Store store;
  store.observe("a.t.com", "t.com", ip(1), 1);
  store.observe("b.t.com", "t.com", ip(2), 1);
  store.observe("x.u.com", "u.com", ip(3), 1);
  const auto ips = store.ips_of_registrable("t.com");
  ASSERT_EQ(ips.size(), 2U);
  EXPECT_TRUE(store.ips_of_registrable("nope").empty());
}

class ReplicationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world::WorldConfig config;
    config.seed = 808;
    config.scale = 0.01;
    config.publishers = 300;
    world_ = new world::World(world::build_world(config));
    resolver_ = new dns::Resolver(*world_);
  }
  static void TearDownTestSuite() {
    delete resolver_;
    delete world_;
    resolver_ = nullptr;
    world_ = nullptr;
  }
  static world::World* world_;
  static dns::Resolver* resolver_;
};

world::World* ReplicationTest::world_ = nullptr;
dns::Resolver* ReplicationTest::resolver_ = nullptr;

TEST_F(ReplicationTest, PopulatesStoreWithTrackingDomains) {
  Store store;
  ReplicationConfig config;
  config.window_end = 30;
  config.queries_per_sample = 500;
  config.stale_pairs = 0;
  util::Rng rng(1);
  replicate_background(store, *resolver_, config, rng);
  EXPECT_GT(store.record_count(), 100U);
  // Every recorded fqdn is a real tracking domain of the world.
  std::size_t checked = 0;
  for (const auto& ip_addr : store.all_ips()) {
    for (const auto* record : store.reverse(ip_addr)) {
      const auto* domain = world_->find_domain(record->fqdn);
      ASSERT_NE(domain, nullptr) << record->fqdn;
      EXPECT_NE(world_->org(domain->org).role, world::OrgRole::CleanService);
      if (++checked > 200) return;
    }
  }
}

TEST_F(ReplicationTest, WindowsStayInsideReplicationWindow) {
  Store store;
  ReplicationConfig config;
  config.window_start = 5;
  config.window_end = 25;
  config.queries_per_sample = 200;
  config.stale_pairs = 0;
  util::Rng rng(2);
  replicate_background(store, *resolver_, config, rng);
  for (const auto& ip_addr : store.all_ips()) {
    for (const auto* record : store.reverse(ip_addr)) {
      EXPECT_GE(record->first_seen, 5);
      EXPECT_LE(record->last_seen, 25);
    }
  }
}

TEST_F(ReplicationTest, StalePairsLiveBeforeTheWindow) {
  Store store;
  ReplicationConfig config;
  config.window_end = 10;
  config.queries_per_sample = 50;
  config.stale_pairs = 40;
  util::Rng rng(3);
  replicate_background(store, *resolver_, config, rng);
  std::size_t stale = 0;
  for (const auto& ip_addr : store.all_ips()) {
    for (const auto* record : store.reverse(ip_addr)) {
      if (record->last_seen < 0) ++stale;
    }
  }
  EXPECT_GT(stale, 0U);
  // Validity-window filtering removes them for any in-window day:
  for (const auto& ip_addr : store.all_ips()) {
    for (const auto* record : store.reverse(ip_addr)) {
      if (record->last_seen < 0) {
        EXPECT_FALSE(store.valid_at(record->fqdn, record->ip, 5));
      }
    }
  }
}

TEST_F(ReplicationTest, FindsServersAcrossTheWholeFootprint) {
  // A worldwide background population should observe servers on several
  // continents — including ones a Europe-heavy user base would miss.
  Store store;
  ReplicationConfig config;
  config.window_end = 60;
  config.queries_per_sample = 2000;
  config.stale_pairs = 0;
  util::Rng rng(4);
  replicate_background(store, *resolver_, config, rng);
  std::set<std::string> continents;
  for (const auto& ip_addr : store.all_ips()) {
    const auto country = world_->true_country_of(ip_addr);
    if (country.empty()) continue;
    continents.insert(std::string(geo::to_string(geo::find_country(country)->continent)));
  }
  EXPECT_GE(continents.size(), 3U);
}

}  // namespace
}  // namespace cbwt::pdns
