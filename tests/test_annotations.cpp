// Tests for util::Mutex / util::MutexLock and the thread-safety
// annotation macros (src/util/thread_annotations.h).
//
// The clang-only analysis itself is exercised by the CI clang build
// (-Werror=thread-safety-analysis); what this suite pins down is the
// runtime contract of the wrappers and the guarantee that the macros
// are free on other compilers.

#include "util/thread_annotations.h"

#include <condition_variable>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cbwt::util {
namespace {

// On non-clang compilers every macro must vanish: same object size as
// the wrapped std::mutex, no attributes, no diagnostics.
#if !defined(__clang__)
static_assert(CBWT_THREAD_ANNOTATIONS_ENABLED == 0,
              "annotations must compile away off-clang");
#endif
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "util::Mutex must be layout-identical to std::mutex");

TEST(Mutex, LockUnlockTryLock) {
  Mutex mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.try_lock());  // already held
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexLock, HoldsForScopeAndSupportsEarlyUnlock) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    EXPECT_TRUE(lock.native().owns_lock());
    lock.unlock();
    EXPECT_FALSE(lock.native().owns_lock());
    EXPECT_TRUE(mutex.try_lock());  // really released
    mutex.unlock();
    lock.lock();
    EXPECT_TRUE(lock.native().owns_lock());
  }  // scope exit releases
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

// A small guarded class written the way the annotated tree is: the
// counter is GUARDED_BY the mutex, mutators EXCLUDE it, and a
// condition variable waits through MutexLock::native().
class Cell {
 public:
  void put(int value) CBWT_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (filled_) empty_cv_.wait(lock.native());
      value_ = value;
      filled_ = true;
    }
    filled_cv_.notify_one();
  }

  int take() CBWT_EXCLUDES(mutex_) {
    int value = 0;
    {
      MutexLock lock(mutex_);
      while (!filled_) filled_cv_.wait(lock.native());
      value = value_;
      filled_ = false;
    }
    empty_cv_.notify_one();
    return value;
  }

 private:
  Mutex mutex_;
  std::condition_variable filled_cv_;
  std::condition_variable empty_cv_;
  int value_ CBWT_GUARDED_BY(mutex_) = 0;
  bool filled_ CBWT_GUARDED_BY(mutex_) = false;
};

TEST(MutexLock, ConditionVariableWaitThroughNative) {
  Cell cell;
  std::thread producer([&cell] {
    for (int i = 1; i <= 100; ++i) cell.put(i);
  });
  int last = 0;
  for (int i = 1; i <= 100; ++i) last = cell.take();
  producer.join();
  EXPECT_EQ(last, 100);
}

TEST(Mutex, ExcludesContendedCounter) {
  Mutex mutex;
  int counter = 0;  // locals can't carry GUARDED_BY; the lock still serializes
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mutex, &counter] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mutex);
  EXPECT_EQ(counter, 4000);
}

}  // namespace
}  // namespace cbwt::util
