#include "net/url.h"

#include <gtest/gtest.h>

#include "net/domain.h"

namespace cbwt::net {
namespace {

TEST(Url, ParseFull) {
  const auto url = Url::parse("https://sync.tracker.com:8443/cm?uid=1&usermatch=1");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme(), "https");
  EXPECT_EQ(url->host(), "sync.tracker.com");
  EXPECT_EQ(url->port(), 8443);
  EXPECT_EQ(url->path(), "/cm");
  EXPECT_EQ(url->query(), "uid=1&usermatch=1");
  EXPECT_TRUE(url->has_arguments());
  EXPECT_TRUE(url->is_https());
}

TEST(Url, DefaultPorts) {
  EXPECT_EQ(Url::parse("http://a.com/")->port(), 80);
  EXPECT_EQ(Url::parse("https://a.com/")->port(), 443);
}

TEST(Url, MissingPathBecomesRoot) {
  const auto url = Url::parse("https://a.com");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path(), "/");
  EXPECT_FALSE(url->has_arguments());
}

TEST(Url, HostIsLowercased) {
  EXPECT_EQ(Url::parse("https://AdServe.COM/x")->host(), "adserve.com");
}

TEST(Url, FragmentsAreStripped) {
  const auto url = Url::parse("https://a.com/p?x=1#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->query(), "x=1");
}

TEST(Url, RejectsBadInput) {
  EXPECT_FALSE(Url::parse("not a url").has_value());
  EXPECT_FALSE(Url::parse("ftp://a.com/").has_value());
  EXPECT_FALSE(Url::parse("https:///path").has_value());
  EXPECT_FALSE(Url::parse("https://a.com:0/").has_value());
  EXPECT_FALSE(Url::parse("https://a.com:notaport/").has_value());
  EXPECT_FALSE(Url::parse("").has_value());
}

TEST(Url, Arguments) {
  const auto url = Url::parse("https://a.com/p?k1=v1&k2=&flag&k3=v3");
  ASSERT_TRUE(url.has_value());
  const auto args = url->arguments();
  ASSERT_EQ(args.size(), 4U);
  EXPECT_EQ(args[0], (std::pair<std::string, std::string>{"k1", "v1"}));
  EXPECT_EQ(args[1], (std::pair<std::string, std::string>{"k2", ""}));
  EXPECT_EQ(args[2], (std::pair<std::string, std::string>{"flag", ""}));
  EXPECT_EQ(args[3], (std::pair<std::string, std::string>{"k3", "v3"}));
}

TEST(Url, EmptyQueryHasNoArguments) {
  const auto url = Url::parse("https://a.com/p?");
  ASSERT_TRUE(url.has_value());
  EXPECT_FALSE(url->has_arguments());
  EXPECT_TRUE(url->arguments().empty());
}

TEST(Url, RoundTrip) {
  for (const char* text :
       {"https://a.com/", "http://b.net/x/y?q=1", "https://c.org:8080/p?a=b&c=d"}) {
    const auto url = Url::parse(text);
    ASSERT_TRUE(url.has_value()) << text;
    EXPECT_EQ(url->to_string(), text);
  }
}

TEST(Domain, Labels) {
  const auto labels = domain_labels("a.b.co.uk");
  ASSERT_EQ(labels.size(), 4U);
  EXPECT_EQ(labels[0], "a");
  EXPECT_EQ(labels[3], "uk");
  EXPECT_TRUE(domain_labels("").empty());
}

TEST(Domain, PublicSuffix) {
  EXPECT_TRUE(is_public_suffix("com"));
  EXPECT_TRUE(is_public_suffix("co.uk"));
  EXPECT_FALSE(is_public_suffix("example.com"));
  EXPECT_EQ(public_suffix("a.b.example.co.uk"), "co.uk");
  EXPECT_EQ(public_suffix("example.com"), "com");
  EXPECT_EQ(public_suffix("localhost"), "");
}

TEST(Domain, RegistrableDomain) {
  EXPECT_EQ(registrable_domain("sync.ads.example.com"), "example.com");
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("x.example.co.uk"), "example.co.uk");
  // No recognized suffix: the input is its own site.
  EXPECT_EQ(registrable_domain("intranet"), "intranet");
  // Bare public suffix has no registrable domain below it.
  EXPECT_EQ(registrable_domain("com"), "com");
}

TEST(Domain, Subdomains) {
  EXPECT_TRUE(is_subdomain_of("a.b.com", "b.com"));
  EXPECT_TRUE(is_subdomain_of("b.com", "b.com"));
  EXPECT_FALSE(is_subdomain_of("ab.com", "b.com"));  // label boundary respected
  EXPECT_FALSE(is_subdomain_of("b.com", "a.b.com"));
}

TEST(Domain, SameSite) {
  EXPECT_TRUE(same_site("cdn.shop.com", "www.shop.com"));
  EXPECT_FALSE(same_site("shop.com", "shop.net"));
  EXPECT_FALSE(same_site("a.example.co.uk", "a.other.co.uk"));
}

// ------------------------------------------------- parser edge cases
// Promoted from fuzz/fuzz_url.cpp findings and its seed corpus
// (fuzz/corpus/url); keep in sync when new crashers are minimized.

TEST(UrlEdgeCases, EmptyAndWhitespaceInput) {
  EXPECT_FALSE(Url::parse("").has_value());
  EXPECT_FALSE(Url::parse(" ").has_value());
  EXPECT_FALSE(Url::parse("://").has_value());
  EXPECT_FALSE(Url::parse("https://").has_value());
}

TEST(UrlEdgeCases, NonUtf8BytesRejected) {
  EXPECT_FALSE(Url::parse("http://\xC3\xA9\xFF\xFE.com/").has_value());
  EXPECT_FALSE(Url::parse(std::string_view("http://a\0b.com/", 15)).has_value());
}

TEST(UrlEdgeCases, OversizedHostRejected) {
  // RFC 1035 caps a domain name at 253 octets.
  const std::string at_limit = "https://" + std::string(249, 'a') + ".com/";
  EXPECT_TRUE(Url::parse(at_limit).has_value());
  const std::string over_limit = "https://" + std::string(250, 'a') + ".com/";
  EXPECT_FALSE(Url::parse(over_limit).has_value());
}

TEST(UrlEdgeCases, HostCharsetEnforced) {
  // Fuzzer-found: "[::1]" used to parse but its to_string() did not
  // re-parse, breaking the canonicalization fixpoint.
  EXPECT_FALSE(Url::parse("http://[::1]:80/").has_value());
  EXPECT_FALSE(Url::parse("http://a b/").has_value());
  EXPECT_FALSE(Url::parse("http://a,b.com/").has_value());
  EXPECT_TRUE(Url::parse("http://a-b_c.com/").has_value());
}

TEST(UrlEdgeCases, ToStringReparsesToSameValue) {
  const auto url = Url::parse("HTTPS://Sync.Tracker.COM:8443/cm?uid=1&flag#frag");
  ASSERT_TRUE(url.has_value());
  const auto reparsed = Url::parse(url->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->host(), url->host());
  EXPECT_EQ(reparsed->port(), url->port());
  EXPECT_EQ(reparsed->path(), url->path());
  EXPECT_EQ(reparsed->query(), url->query());
}

TEST(UrlEdgeCases, QueryWithoutPath) {
  // No '/' before '?': the query belongs to the root path, it is not
  // part of the host (fuzzer-found roundtrip break in the seed parser).
  const auto url = Url::parse("http://a.com?x=1");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->host(), "a.com");
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->query(), "x=1");
  const auto reparsed = Url::parse(url->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->host(), url->host());
  EXPECT_EQ(reparsed->query(), url->query());
}

}  // namespace
}  // namespace cbwt::net
