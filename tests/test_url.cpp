#include "net/url.h"

#include <gtest/gtest.h>

#include "net/domain.h"

namespace cbwt::net {
namespace {

TEST(Url, ParseFull) {
  const auto url = Url::parse("https://sync.tracker.com:8443/cm?uid=1&usermatch=1");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme(), "https");
  EXPECT_EQ(url->host(), "sync.tracker.com");
  EXPECT_EQ(url->port(), 8443);
  EXPECT_EQ(url->path(), "/cm");
  EXPECT_EQ(url->query(), "uid=1&usermatch=1");
  EXPECT_TRUE(url->has_arguments());
  EXPECT_TRUE(url->is_https());
}

TEST(Url, DefaultPorts) {
  EXPECT_EQ(Url::parse("http://a.com/")->port(), 80);
  EXPECT_EQ(Url::parse("https://a.com/")->port(), 443);
}

TEST(Url, MissingPathBecomesRoot) {
  const auto url = Url::parse("https://a.com");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path(), "/");
  EXPECT_FALSE(url->has_arguments());
}

TEST(Url, HostIsLowercased) {
  EXPECT_EQ(Url::parse("https://AdServe.COM/x")->host(), "adserve.com");
}

TEST(Url, FragmentsAreStripped) {
  const auto url = Url::parse("https://a.com/p?x=1#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->query(), "x=1");
}

TEST(Url, RejectsBadInput) {
  EXPECT_FALSE(Url::parse("not a url").has_value());
  EXPECT_FALSE(Url::parse("ftp://a.com/").has_value());
  EXPECT_FALSE(Url::parse("https:///path").has_value());
  EXPECT_FALSE(Url::parse("https://a.com:0/").has_value());
  EXPECT_FALSE(Url::parse("https://a.com:notaport/").has_value());
  EXPECT_FALSE(Url::parse("").has_value());
}

TEST(Url, Arguments) {
  const auto url = Url::parse("https://a.com/p?k1=v1&k2=&flag&k3=v3");
  ASSERT_TRUE(url.has_value());
  const auto args = url->arguments();
  ASSERT_EQ(args.size(), 4U);
  EXPECT_EQ(args[0], (std::pair<std::string, std::string>{"k1", "v1"}));
  EXPECT_EQ(args[1], (std::pair<std::string, std::string>{"k2", ""}));
  EXPECT_EQ(args[2], (std::pair<std::string, std::string>{"flag", ""}));
  EXPECT_EQ(args[3], (std::pair<std::string, std::string>{"k3", "v3"}));
}

TEST(Url, EmptyQueryHasNoArguments) {
  const auto url = Url::parse("https://a.com/p?");
  ASSERT_TRUE(url.has_value());
  EXPECT_FALSE(url->has_arguments());
  EXPECT_TRUE(url->arguments().empty());
}

TEST(Url, RoundTrip) {
  for (const char* text :
       {"https://a.com/", "http://b.net/x/y?q=1", "https://c.org:8080/p?a=b&c=d"}) {
    const auto url = Url::parse(text);
    ASSERT_TRUE(url.has_value()) << text;
    EXPECT_EQ(url->to_string(), text);
  }
}

TEST(Domain, Labels) {
  const auto labels = domain_labels("a.b.co.uk");
  ASSERT_EQ(labels.size(), 4U);
  EXPECT_EQ(labels[0], "a");
  EXPECT_EQ(labels[3], "uk");
  EXPECT_TRUE(domain_labels("").empty());
}

TEST(Domain, PublicSuffix) {
  EXPECT_TRUE(is_public_suffix("com"));
  EXPECT_TRUE(is_public_suffix("co.uk"));
  EXPECT_FALSE(is_public_suffix("example.com"));
  EXPECT_EQ(public_suffix("a.b.example.co.uk"), "co.uk");
  EXPECT_EQ(public_suffix("example.com"), "com");
  EXPECT_EQ(public_suffix("localhost"), "");
}

TEST(Domain, RegistrableDomain) {
  EXPECT_EQ(registrable_domain("sync.ads.example.com"), "example.com");
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("x.example.co.uk"), "example.co.uk");
  // No recognized suffix: the input is its own site.
  EXPECT_EQ(registrable_domain("intranet"), "intranet");
  // Bare public suffix has no registrable domain below it.
  EXPECT_EQ(registrable_domain("com"), "com");
}

TEST(Domain, Subdomains) {
  EXPECT_TRUE(is_subdomain_of("a.b.com", "b.com"));
  EXPECT_TRUE(is_subdomain_of("b.com", "b.com"));
  EXPECT_FALSE(is_subdomain_of("ab.com", "b.com"));  // label boundary respected
  EXPECT_FALSE(is_subdomain_of("b.com", "a.b.com"));
}

TEST(Domain, SameSite) {
  EXPECT_TRUE(same_site("cdn.shop.com", "www.shop.com"));
  EXPECT_FALSE(same_site("shop.com", "shop.net"));
  EXPECT_FALSE(same_site("a.example.co.uk", "a.other.co.uk"));
}

}  // namespace
}  // namespace cbwt::net
