#include "report/export.h"
#include "report/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "json_check.h"

namespace cbwt::report {
namespace {

TEST(JsonWriter, ScalarRoot) {
  JsonWriter json;
  json.value("hi");
  EXPECT_EQ(json.str(), "\"hi\"");
}

TEST(JsonWriter, ObjectWithMixedValues) {
  JsonWriter json;
  json.begin_object()
      .key("s").value("x")
      .key("d").value(1.5)
      .key("i").value(std::int64_t{-3})
      .key("u").value(std::uint64_t{7})
      .key("b").value(true)
      .key("n").null()
      .end_object();
  EXPECT_EQ(json.str(), R"({"s":"x","d":1.5,"i":-3,"u":7,"b":true,"n":null})");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter json;
  json.begin_array();
  json.begin_array().value(std::uint64_t{1}).value(std::uint64_t{2}).end_array();
  json.begin_object().key("k").value("v").end_object();
  json.end_array();
  EXPECT_EQ(json.str(), R"([[1,2],{"k":"v"}])");
}

TEST(JsonWriter, Escaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, EscapesEveryControlCharacter) {
  // All of 0x00..0x1F must leave the document parseable: named escapes
  // for the common ones, \u00XX for the rest.
  EXPECT_EQ(JsonWriter::escape("\b"), "\\b");
  EXPECT_EQ(JsonWriter::escape("\f"), "\\f");
  EXPECT_EQ(JsonWriter::escape("\r"), "\\r");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x1f", 1)), "\\u001f");
  for (int c = 0; c < 0x20; ++c) {
    const std::string raw(1, static_cast<char>(c));
    JsonWriter json;
    json.value(std::string_view(raw));
    EXPECT_TRUE(cbwt::testing::JsonChecker::valid(json.str()))
        << "control char " << c << " -> " << json.str();
  }
}

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  // JSON has no NaN/Infinity literals; a run report must never emit one.
  JsonWriter json;
  json.begin_object()
      .key("nan").value(std::nan(""))
      .key("pinf").value(std::numeric_limits<double>::infinity())
      .key("ninf").value(-std::numeric_limits<double>::infinity())
      .key("ok").value(1.5)
      .end_object();
  EXPECT_EQ(json.str(), R"({"nan":null,"pinf":null,"ninf":null,"ok":1.5})");
  EXPECT_TRUE(cbwt::testing::JsonChecker::valid(json.str()));
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value("x"), std::logic_error);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW((void)json.str(), std::logic_error);  // incomplete
  }
  {
    JsonWriter json;
    json.begin_object().key("a");
    EXPECT_THROW(json.key("b"), std::logic_error);  // consecutive keys
  }
}

TEST(Export, SankeyJsonShape) {
  std::map<std::string, std::map<std::string, std::uint64_t>> matrix;
  matrix["DE"]["NL"] = 5;
  matrix["DE"]["US"] = 2;
  matrix["ES"]["US"] = 1;
  const auto json = sankey_to_json(matrix);
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"links\""), std::string::npos);
  EXPECT_NE(json.find("src:DE"), std::string::npos);
  EXPECT_NE(json.find("dst:US"), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  // Both origins link to the shared dst:US node (interning works).
  EXPECT_EQ(json.find("dst:US"), json.rfind("dst:US"));
}

TEST(Export, ConfinementJson) {
  std::map<std::string, analysis::Confinement> per_origin;
  analysis::Confinement confinement;
  confinement.total = 10;
  confinement.in_country = 50.0;
  confinement.in_eu28 = 80.0;
  confinement.in_continent = 90.0;
  per_origin["DE"] = confinement;
  const auto json = confinement_to_json(per_origin);
  EXPECT_NE(json.find("\"DE\""), std::string::npos);
  EXPECT_NE(json.find("\"in_eu28_pct\":80"), std::string::npos);
}

TEST(Export, ClassificationJson) {
  classify::ClassificationSummary summary;
  summary.abp.total_requests = 100;
  summary.semi.total_requests = 80;
  summary.total.total_requests = 180;
  summary.untracked_requests = 20;
  const auto json = classification_to_json(summary);
  EXPECT_NE(json.find("\"abp_lists\""), std::string::npos);
  EXPECT_NE(json.find("\"total_requests\":100"), std::string::npos);
  EXPECT_NE(json.find("\"non_tracking_requests\":20"), std::string::npos);
}

TEST(Export, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cbwt_export_test.txt";
  write_file(path, "hello\nworld");
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "hello\nworld");
  std::remove(path.c_str());
}

TEST(Export, WriteFileFailureThrows) {
  EXPECT_THROW(write_file("/nonexistent-dir-xyz/file.txt", "x"), std::runtime_error);
}

}  // namespace
}  // namespace cbwt::report
