#!/usr/bin/env python3
"""report_diff: structural diff of two cbwt run_report JSON documents.

Usage:
  report_diff.py A.json B.json [--timing-rtol R] [--ignore REGEX]...

The determinism contract says two runs with the same (seed, scale) must
agree on every *deterministic* quantity — counters, span structure, span
item counts, fault degradation — at any thread count, with or without
the flight recorder armed. Timings and process telemetry are explicitly
environment-dependent. This tool encodes exactly that split:

  * exact   -- top-level seed/scale/name, the fault object, deterministic
               counters/gauges/histograms (same key set, same values),
               span sequence (name, parent, depth, items)
  * timing  -- span wall/cpu seconds, *_seconds metrics, /proc telemetry,
               pool/channel runtime metrics: checked for presence and
               sanity (finite, >= 0); values compared only when
               --timing-rtol is given
  * ignored -- keys matching any --ignore regex (and the built-in
               environment list below): allowed to differ or be missing

Exit status: 0 when the reports agree, 1 on any mismatch (each printed
as `path: A-value != B-value`), 2 on usage/parse errors.

Stdlib-only on purpose: CI and the determinism sweep run this wherever
python3 runs.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

# Environment-dependent metric keys: these legitimately differ between
# two bit-identical runs (different machines, thread counts, or whether
# the telemetry sampler fired between exports), so they are exempt from
# the exact-match rule. Kept deliberately narrow: a new cbwt_* counter
# is deterministic unless listed here.
ENV_PATTERNS = [
    r"^threads$",                     # sweep compares across thread counts
    r"^cbwt_runtime_pool_",           # pool size/queue snapshot
    r"^cbwt_runtime_channel_",        # pushed/stalls depend on scheduling
    r"^cbwt_obs_proc_",               # /proc telemetry (RSS, CPU, io)
    r"_seconds$",                     # any timing metric by naming rule
]

TIMING_SPAN_FIELDS = ("wall_seconds", "process_cpu_seconds", "thread_cpu_seconds")


def is_env(path: str, extra: list[re.Pattern[str]]) -> bool:
    leaf = path.rsplit("/", 1)[-1]
    for pattern in ENV_PATTERNS:
        if re.search(pattern, leaf):
            return True
    return any(p.search(path) for p in extra)


class Diff:
    def __init__(self) -> None:
        self.failures: list[str] = []

    def fail(self, path: str, a: object, b: object) -> None:
        self.failures.append(f"{path}: {a!r} != {b!r}")

    def check_timing(self, path: str, a: object, b: object, rtol: float | None) -> None:
        """Timing values: sane in both reports; close only if rtol given."""
        for side, value in (("A", a), ("B", b)):
            if not isinstance(value, (int, float)) or not math.isfinite(value) or value < 0:
                self.failures.append(f"{path} ({side}): bad timing value {value!r}")
                return
        if rtol is not None:
            scale = max(abs(float(a)), abs(float(b)), 1e-9)
            if abs(float(a) - float(b)) / scale > rtol:
                self.fail(path, a, b)

    def check_exact(self, path: str, a: object, b: object) -> None:
        if a != b:
            self.fail(path, a, b)


def diff_metric_map(diff: Diff, path: str, a: dict, b: dict,
                    rtol: float | None, extra: list[re.Pattern[str]]) -> None:
    """Counters/gauges: deterministic keys must match exactly (both the
    key set and the values); environment keys may differ or be absent."""
    for key in sorted(set(a) | set(b)):
        key_path = f"{path}/{key}"
        if is_env(key_path, extra):
            if key in a and key in b:
                diff.check_timing(key_path, a[key], b[key], rtol)
            continue
        if key not in a or key not in b:
            diff.fail(key_path, a.get(key, "<missing>"), b.get(key, "<missing>"))
            continue
        diff.check_exact(key_path, a[key], b[key])


def diff_histograms(diff: Diff, a: dict, b: dict,
                    rtol: float | None, extra: list[re.Pattern[str]]) -> None:
    for key in sorted(set(a) | set(b)):
        key_path = f"obs/histograms/{key}"
        env = is_env(key_path, extra)
        if key not in a or key not in b:
            if not env:
                diff.fail(key_path, "<present>" if key in a else "<missing>",
                          "<present>" if key in b else "<missing>")
            continue
        if env:
            # Timing histogram: the observation *count* is deterministic
            # (one sample per measured operation); the distribution isn't.
            diff.check_exact(f"{key_path}/count", a[key].get("count"), b[key].get("count"))
            diff.check_timing(f"{key_path}/sum", a[key].get("sum", 0), b[key].get("sum", 0), rtol)
        else:
            diff.check_exact(key_path, a[key], b[key])


def diff_spans(diff: Diff, a: list, b: list, rtol: float | None) -> None:
    if len(a) != len(b):
        diff.fail("obs/spans/length", len(a), len(b))
        return
    for i, (sa, sb) in enumerate(zip(a, b)):
        for field in ("name", "parent", "depth", "items"):
            diff.check_exact(f"obs/spans[{i}]/{field}", sa.get(field), sb.get(field))
        for field in TIMING_SPAN_FIELDS:
            diff.check_timing(f"obs/spans[{i}]/{field}", sa.get(field, 0), sb.get(field, 0), rtol)


def diff_reports(report_a: dict, report_b: dict, rtol: float | None,
                 extra: list[re.Pattern[str]]) -> list[str]:
    diff = Diff()
    for key in ("name", "seed", "scale", "fault"):
        if not is_env(key, extra):
            diff.check_exact(key, report_a.get(key), report_b.get(key))
    if "threads" not in (report_a.keys() & report_b.keys()):
        diff.fail("threads", report_a.get("threads", "<missing>"),
                  report_b.get("threads", "<missing>"))

    obs_a = report_a.get("obs", {})
    obs_b = report_b.get("obs", {})
    diff_metric_map(diff, "obs/counters", obs_a.get("counters", {}),
                    obs_b.get("counters", {}), rtol, extra)
    diff_metric_map(diff, "obs/gauges", obs_a.get("gauges", {}),
                    obs_b.get("gauges", {}), rtol, extra)
    diff_histograms(diff, obs_a.get("histograms", {}), obs_b.get("histograms", {}),
                    rtol, extra)
    diff_spans(diff, obs_a.get("spans", []), obs_b.get("spans", []), rtol)
    return diff.failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Structural diff of two cbwt run_report JSON files.")
    parser.add_argument("report_a")
    parser.add_argument("report_b")
    parser.add_argument("--timing-rtol", type=float, default=None, metavar="R",
                        help="also require timings to agree within relative "
                             "tolerance R (default: structure/sanity only)")
    parser.add_argument("--ignore", action="append", default=[], metavar="REGEX",
                        help="treat paths matching REGEX as environment-"
                             "dependent (repeatable)")
    args = parser.parse_args(argv)

    try:
        extra = [re.compile(p) for p in args.ignore]
    except re.error as err:
        print(f"report_diff: bad --ignore regex: {err}", file=sys.stderr)
        return 2
    reports = []
    for path in (args.report_a, args.report_b):
        try:
            with open(path, encoding="utf-8") as handle:
                reports.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as err:
            print(f"report_diff: cannot read {path}: {err}", file=sys.stderr)
            return 2

    failures = diff_reports(reports[0], reports[1], args.timing_rtol, extra)
    if failures:
        print(f"report_diff: {len(failures)} mismatch(es) between "
              f"{args.report_a} and {args.report_b}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"report_diff: {args.report_a} and {args.report_b} agree "
          f"on all deterministic quantities")
    return 0


if __name__ == "__main__":
    sys.exit(main())
