#!/usr/bin/env python3
"""Asserts a bench_table2_classification --json report matches the
committed expectation exactly.

Usage: check_table2.py <report.json> <expectation.json>

The expectation pins only the classification counts (its "metrics"
keys); runtime telemetry in the report (channel stats, wall_ms) is
ignored. Exact integer equality is required — the classifier is
deterministic at every thread count, so any drift is a real behavior
change, not noise.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        expectation = json.load(f)

    got = report.get("metrics", {})
    want = expectation["metrics"]
    failures = []
    for key, value in sorted(want.items()):
        if key not in got:
            failures.append(f"missing metric {key} (expected {value})")
        elif got[key] != value:
            failures.append(f"{key}: got {got[key]}, expected {value}")

    if failures:
        print("Table 2 drift detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"Table 2 OK: {len(want)} metrics match exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
