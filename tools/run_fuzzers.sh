#!/usr/bin/env bash
# Runs every fuzz harness against its seed corpus.
#
#   tools/run_fuzzers.sh [build-dir] [seconds-per-harness]
#
# With clang-built harnesses (real libFuzzer) this drives
# -max_total_time; with the gcc standalone driver it replays the corpus
# in a timed mutation loop (CBWT_FUZZ_SECONDS). Exit is non-zero as
# soon as any harness crashes. Build first with e.g.:
#   cmake --preset fuzz && cmake --build --preset fuzz -j
set -euo pipefail

build_dir=${1:-build-fuzz}
seconds=${2:-60}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

declare -A corpus=(
  [fuzz_url]=fuzz/corpus/url
  [fuzz_rule]=fuzz/corpus/rule
  [fuzz_netflow_record]=fuzz/corpus/netflow
  [fuzz_store_superblock]=fuzz/corpus/store_superblock
  [fuzz_flow_page]=fuzz/corpus/flow_page
)

for harness in fuzz_url fuzz_rule fuzz_netflow_record fuzz_store_superblock \
               fuzz_flow_page; do
  bin="$build_dir/fuzz/$harness"
  if [ ! -x "$bin" ]; then
    echo "run_fuzzers: $bin not built (configure with -DCBWT_BUILD_FUZZERS=ON)" >&2
    exit 1
  fi
  echo "=== $harness (${seconds}s on ${corpus[$harness]}) ==="
  # Capture the replay status explicitly: `set -e` is silently disabled
  # when this script runs inside an if/|| context (CI wrappers do), which
  # would swallow a crashing gcc-driver replay.
  status=0
  if "$bin" -help=1 2>/dev/null | grep -q libFuzzer; then
    "$bin" -max_total_time="$seconds" -timeout=10 "${corpus[$harness]}" || status=$?
  else
    CBWT_FUZZ_SECONDS="$seconds" "$bin" "${corpus[$harness]}" || status=$?
  fi
  if [ "$status" -ne 0 ]; then
    echo "run_fuzzers: $harness failed with exit status $status" >&2
    exit "$status"
  fi
done
echo "run_fuzzers: all harnesses completed without a crash"
