#!/usr/bin/env python3
"""Asserts a store-backed Table 8 run_report matches the committed
expectation exactly.

Usage: check_table8.py <run_report.json> <expectation.json>

The report is a Study::run_report() document (store_scale_run --report);
the expectation pins the deterministic NetFlow-join counters under its
"counters" key — generated/collected/internal/matched volumes plus the
join fan-out, spill bytes, and probe count. Runtime telemetry (channel
stats, /proc gauges, store I/O byte counts) is ignored. Exact integer
equality is required: the out-of-core join is bit-identical to the
in-memory collector at every thread count, so any drift here is a real
behavior change in Table 8's substrate, not noise.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        expectation = json.load(f)

    got = report.get("obs", {}).get("counters", {})
    want = expectation["counters"]
    failures = []
    for key, value in sorted(want.items()):
        if key not in got:
            failures.append(f"missing counter {key} (expected {value})")
        elif got[key] != value:
            failures.append(f"{key}: got {got[key]}, expected {value}")

    if failures:
        print("Table 8 join drift detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"Table 8 join OK: {len(want)} counters match exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
