#!/usr/bin/env python3
"""Asserts a store-backed Table 8 run_report matches the committed
expectation exactly.

Usage: check_table8.py <run_report.json> <expectation.json> [--max-rss-mb N]

The report is a Study::run_report() document (store_scale_run --report);
the expectation pins the deterministic NetFlow-join counters under its
"counters" key — generated/collected/internal/matched volumes plus the
join fan-out, spill volume/shard counters, and probe count. Runtime
telemetry (channel stats, /proc gauges, store I/O byte counts) is
ignored. Exact integer equality is required: the out-of-core join is
bit-identical to the in-memory collector at every thread count, so any
drift here is a real behavior change in Table 8's substrate, not noise.

--max-rss-mb additionally gates the run's peak resident set: the
cbwt_obs_proc_vm_hwm_bytes gauge (VmHWM sampled by obs::ProcSampler)
must stay under the cap. This is how CI holds the parallel spill pass
to the same 256 MB bound at threads 8 as at threads 1 — more workers
may buffer more in-flight page runs, but the bounded channel keeps the
envelope flat.
"""

import json
import sys


def main() -> int:
    args = list(sys.argv[1:])
    max_rss_mb = 0
    if "--max-rss-mb" in args:
        at = args.index("--max-rss-mb")
        try:
            max_rss_mb = int(args[at + 1])
        except (IndexError, ValueError):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        del args[at : at + 2]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0]) as f:
        report = json.load(f)
    with open(args[1]) as f:
        expectation = json.load(f)

    got = report.get("obs", {}).get("counters", {})
    want = expectation["counters"]
    failures = []
    for key, value in sorted(want.items()):
        if key not in got:
            failures.append(f"missing counter {key} (expected {value})")
        elif got[key] != value:
            failures.append(f"{key}: got {got[key]}, expected {value}")

    rss_note = ""
    if max_rss_mb > 0:
        gauges = report.get("obs", {}).get("gauges", {})
        hwm_bytes = gauges.get("cbwt_obs_proc_vm_hwm_bytes", 0)
        if hwm_bytes <= 0:
            failures.append(
                "no cbwt_obs_proc_vm_hwm_bytes gauge in report "
                "(--max-rss-mb needs a ProcSampler-instrumented run)"
            )
        elif hwm_bytes > max_rss_mb * 1024 * 1024:
            failures.append(
                f"peak RSS {hwm_bytes / (1024 * 1024):.1f} MB exceeds "
                f"cap {max_rss_mb} MB"
            )
        else:
            rss_note = (
                f", peak RSS {hwm_bytes / (1024 * 1024):.1f} MB "
                f"<= {max_rss_mb} MB"
            )

    if failures:
        print("Table 8 join drift detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"Table 8 join OK: {len(want)} counters match exactly{rss_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
