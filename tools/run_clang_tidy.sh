#!/usr/bin/env bash
# clang-tidy gate over src/, driven by the checked-in .clang-tidy.
#
#   tools/run_clang_tidy.sh [build-dir | path/to/compile_commands.json]
#
# The argument is a build dir holding a compile_commands.json (the root
# CMakeLists always exports one) or the compile_commands.json itself.
# Where clang-tidy is not installed the gate exits 0 with a notice: the
# lint job in CI installs LLVM and enforces it; developer machines
# without clang lose nothing else.
set -euo pipefail

build_dir=${1:-build}
case "$build_dir" in
  *compile_commands.json) build_dir=$(dirname "$build_dir") ;;
esac
repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping lint gate (exit 0)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" >&2
  echo "configure with: cmake -B $build_dir -S . (exported by default)" >&2
  exit 1
fi

mapfile -t sources < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found under src/" >&2
  exit 1
fi

echo "run_clang_tidy: checking ${#sources[@]} files against .clang-tidy"
jobs=$(nproc 2>/dev/null || echo 4)
status=0
printf '%s\n' "${sources[@]}" \
  | xargs -P "$jobs" -n 4 clang-tidy -p "$build_dir" --quiet || status=$?

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings above must be fixed (WarningsAsErrors: '*')" >&2
fi
exit "$status"
