#!/usr/bin/env python3
"""cbwt-lint: determinism, metric-naming, and layering gate for the cbwt tree.

Usage:
  cbwt_lint.py [--root DIR] [--rules FILE]   lint the tree (exit 1 on findings)
  cbwt_lint.py --self-test                   run the fixture suite under
                                             tests/lint_fixtures (exit 1 on
                                             any fixture mismatch)
  cbwt_lint.py --list-rules                  print the loaded ruleset

Three rule families, configured in tools/lint_rules.toml:

  * regex rules   -- banned APIs (wall clocks, ambient RNGs, raw threads)
                     with per-rule path scopes and allowlists
  * metric naming -- cbwt_<module>_* snake_case; counters end _total,
                     histograms end _seconds, gauges never claim _total
  * layering      -- #include edges across src/ modules must stay inside
                     the explicit dependency DAG (and the DAG itself is
                     topo-checked, so a cycle cannot be legalized)

Per-line escape, on the offending line, with a justification nearby:

    ... steady_clock::now();  // cbwt-lint: allow(steady-clock)

Stdlib-only on purpose: the gate must run anywhere python3 runs.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# TOML loading: tomllib on python >= 3.11, minimal fallback parser below
# (handles exactly the subset lint_rules.toml uses: tables, arrays of
# tables, string keys/values, arrays of strings, multiline arrays).
# --------------------------------------------------------------------------


def _strip_comment(line):
    in_str = None
    for i, ch in enumerate(line):
        if in_str:
            if ch == in_str:
                in_str = None
        elif ch in "\"'":
            in_str = ch
        elif ch == "#":
            return line[:i]
    return line


def _mini_toml_parse(text):
    root = {}
    current = root
    pending = ""
    pending_key = None
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if pending_key is not None:
            pending += " " + line
            if _array_closed(pending):
                current[pending_key] = _parse_value(pending)
                pending_key = None
                pending = ""
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            root.setdefault(name, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            for part in line[1:-1].strip().split("."):
                current = current.setdefault(part, {})
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"').strip("'")
        value = value.strip()
        if value.startswith("[") and not _array_closed(value):
            pending_key = key
            pending = value
            continue
        current[key] = _parse_value(value)
    return root


def _array_closed(text):
    depth = 0
    in_str = None
    for ch in text:
        if in_str:
            if ch == in_str:
                in_str = None
        elif ch in "\"'":
            in_str = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
    return depth == 0


def _parse_value(text):
    text = text.strip()
    if text.startswith("["):
        inner = text.strip()[1:-1]
        items = []
        for piece in _split_top_level(inner):
            piece = piece.strip()
            if piece:
                items.append(_parse_value(piece))
        return items
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    return text


def _split_top_level(text):
    out = []
    buf = ""
    in_str = None
    for ch in text:
        if in_str:
            buf += ch
            if ch == in_str:
                in_str = None
        elif ch in "\"'":
            in_str = ch
            buf += ch
        elif ch == ",":
            out.append(buf)
            buf = ""
        else:
            buf += ch
    if buf.strip():
        out.append(buf)
    return out


def load_toml(path):
    try:
        import tomllib

        with open(path, "rb") as f:
            return tomllib.load(f)
    except ImportError:
        with open(path, encoding="utf-8") as f:
            return _mini_toml_parse(f.read())


# --------------------------------------------------------------------------
# Config
# --------------------------------------------------------------------------

SOURCE_EXTENSIONS = (".h", ".hpp", ".hh", ".cpp", ".cc", ".cxx", ".py", ".sh")
ESCAPE_RE = re.compile(r"cbwt-lint:\s*allow\(([^)]*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
METRIC_CALL_RE = re.compile(r"\b(counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
METRIC_LITERAL_RE = re.compile(r"[\"'](cbwt_\w*)[\"']")
METRIC_NAME_RE = re.compile(r"cbwt_[a-z0-9]+(_[a-z0-9]+)*\Z")


class Rule:
    def __init__(self, table):
        self.name = table["name"]
        self.pattern = re.compile(table["pattern"])
        self.message = table.get("message", "banned construct")
        self.paths = table.get("paths", [])
        self.allow_paths = table.get("allow_paths", [])


class Config:
    def __init__(self, table):
        self.exclude = table.get("exclude", [])
        self.rules = [Rule(t) for t in table.get("rule", [])]
        metric = table.get("metric_naming", {})
        self.metric_paths = metric.get("paths", [])
        layering = table.get("layering", {})
        self.src_root = layering.get("src_root", "src")
        self.overrides = layering.get("overrides", {})
        self.deps = layering.get("deps", {})


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def glob_match(path, patterns):
    # fnmatch's "*" already crosses "/" boundaries, so "src/**" and
    # "src/*" behave identically here; normalize "**" away.
    import fnmatch

    return any(fnmatch.fnmatch(path, p.replace("**", "*")) for p in patterns)


def escaped_rules(line):
    rules = set()
    for m in ESCAPE_RE.finditer(line):
        rules.update(r.strip() for r in m.group(1).split(","))
    return rules


# --------------------------------------------------------------------------
# Checks (each takes a repo-relative path + file text, yields Findings)
# --------------------------------------------------------------------------


def check_regex_rules(config, path, text):
    active = [
        r
        for r in config.rules
        if glob_match(path, r.paths) and not glob_match(path, r.allow_paths)
    ]
    if not active:
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        allowed = escaped_rules(line)
        for rule in active:
            if rule.name in allowed:
                continue
            if rule.pattern.search(line):
                yield Finding(path, lineno, rule.name, rule.message)


def check_metric_naming(config, path, text):
    if not glob_match(path, config.metric_paths):
        return
    modules = set(config.deps) if config.deps else set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if "metric-naming" in escaped_rules(line):
            continue
        seen_spans = []
        for m in METRIC_CALL_RE.finditer(line):
            kind, name = m.group(1), m.group(2)
            seen_spans.append(m.span(2))
            if name.endswith("_"):  # dynamically-composed from a prefix literal
                yield from _check_metric_prefix(path, lineno, name)
            else:
                yield from _check_metric_name(path, lineno, kind, name, modules)
        for m in METRIC_LITERAL_RE.finditer(line):
            if any(a <= m.start(1) < b for a, b in seen_spans):
                continue  # already checked via its call site
            name = m.group(1)
            if name.endswith("_"):
                yield from _check_metric_prefix(path, lineno, name)
                continue
            yield from _check_metric_name(path, lineno, None, name, modules)


def _check_metric_prefix(path, lineno, fragment):
    if not METRIC_NAME_RE.match(fragment[:-1]):
        yield Finding(
            path,
            lineno,
            "metric-naming",
            f'metric prefix "{fragment}" is not lowercase cbwt_<module>_ '
            "snake_case",
        )


def _check_metric_name(path, lineno, kind, name, modules):
    if not METRIC_NAME_RE.match(name):
        yield Finding(
            path,
            lineno,
            "metric-naming",
            f'metric "{name}" must match cbwt_<module>_<name> in lowercase '
            "snake_case (no doubled/trailing underscores)",
        )
        return
    parts = name.split("_")
    if modules and parts[1] not in modules and "_".join(parts[1:3]) not in modules:
        yield Finding(
            path,
            lineno,
            "metric-naming",
            f'metric "{name}": "{parts[1]}" is not a src/ module',
        )
    if kind == "counter" and not name.endswith("_total"):
        yield Finding(
            path, lineno, "metric-naming", f'counter "{name}" must end in _total'
        )
    if kind == "histogram" and not name.endswith("_seconds"):
        yield Finding(
            path,
            lineno,
            "metric-naming",
            f'histogram "{name}" must end in _seconds (durations are seconds)',
        )
    if kind == "gauge" and name.endswith(("_total", "_seconds_total")):
        yield Finding(
            path, lineno, "metric-naming", f'gauge "{name}" must not claim _total'
        )


def module_of(config, rel_src_path):
    if rel_src_path in config.overrides:
        return config.overrides[rel_src_path]
    return rel_src_path.split("/", 1)[0]


def check_layering(config, path, text):
    prefix = config.src_root + "/"
    if not path.startswith(prefix) or not config.deps:
        return
    rel = path[len(prefix):]
    module = module_of(config, rel)
    if "/" not in rel:
        return  # files directly under src/ belong to no module
    if module not in config.deps:
        yield Finding(
            path,
            1,
            "layering",
            f'module "{module}" is not declared in [layering.deps]; add it with '
            "an explicit dependency list",
        )
        return
    allowed = set(config.deps[module])
    for lineno, line in enumerate(text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if "layering" in escaped_rules(line):
            continue
        target = module_of(config, m.group(1))
        if target == module or target not in config.deps:
            continue
        if target not in allowed:
            yield Finding(
                path,
                lineno,
                "layering",
                f'module "{module}" must not include "{target}" '
                f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})",
            )


def check_dag(config):
    """Topo-sorts [layering.deps]; yields a finding per cycle found."""
    state = {}  # module -> 0 visiting, 1 done

    def visit(node, stack):
        if state.get(node) == 1:
            return None
        if state.get(node) == 0:
            return stack[stack.index(node):] + [node]
        state[node] = 0
        stack.append(node)
        for dep in config.deps.get(node, []):
            cycle = visit(dep, stack)
            if cycle is not None:
                return cycle
        stack.pop()
        state[node] = 1
        return None

    for module in sorted(config.deps):
        cycle = visit(module, [])
        if cycle is not None:
            yield Finding(
                "tools/lint_rules.toml",
                1,
                "layering-config",
                "allowed dependency graph has a cycle: " + " -> ".join(cycle),
            )
            return


def lint_text(config, path, text):
    findings = list(check_regex_rules(config, path, text))
    findings += list(check_metric_naming(config, path, text))
    findings += list(check_layering(config, path, text))
    return findings


# --------------------------------------------------------------------------
# Tree walk + self-test
# --------------------------------------------------------------------------


def iter_tree_files(root, config):
    for dirpath, dirnames, filenames in os.walk(root):
        rel_dir = os.path.relpath(dirpath, root)
        rel_dir = "" if rel_dir == "." else rel_dir.replace(os.sep, "/")
        dirnames[:] = [
            d
            for d in sorted(dirnames)
            if not glob_match((rel_dir + "/" + d if rel_dir else d) + "/x", config.exclude)
        ]
        for name in sorted(filenames):
            rel = rel_dir + "/" + name if rel_dir else name
            if not rel.endswith(SOURCE_EXTENSIONS):
                continue
            if glob_match(rel, config.exclude):
                continue
            yield rel


def lint_tree(root, config):
    findings = list(check_dag(config))
    for rel in iter_tree_files(root, config):
        try:
            with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as error:
            findings.append(Finding(rel, 0, "io", str(error)))
            continue
        findings.extend(lint_text(config, rel, text))
    return findings


FIXTURE_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"lint-fixture-expect:\s*(.+)")


def run_self_test(root, config):
    fixtures_dir = os.path.join(root, "tests", "lint_fixtures")
    names = sorted(
        n for n in os.listdir(fixtures_dir) if n.endswith((".cc", ".py", ".sh"))
    )
    if not names:
        print("cbwt-lint self-test: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    for name in names:
        with open(os.path.join(fixtures_dir, name), encoding="utf-8") as f:
            text = f.read()
        path_m = FIXTURE_PATH_RE.search(text)
        expect_m = FIXTURE_EXPECT_RE.search(text)
        if not path_m or not expect_m:
            print(f"FAIL {name}: missing lint-fixture-path/-expect header")
            failures += 1
            continue
        pretend = path_m.group(1)
        expected = set(expect_m.group(1).split())
        expected.discard("none")
        got = {f.rule for f in lint_text(config, pretend, text)}
        if got == expected:
            label = ", ".join(sorted(expected)) or "clean"
            print(f"ok   {name} ({label})")
        else:
            print(
                f"FAIL {name}: expected rules {sorted(expected)}, got {sorted(got)}"
            )
            failures += 1
    print(
        f"cbwt-lint self-test: {len(names) - failures}/{len(names)} fixtures behave"
    )
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root, help="repo root to lint")
    parser.add_argument("--rules", default=None, help="ruleset TOML path")
    parser.add_argument("--self-test", action="store_true", help="run fixture suite")
    parser.add_argument("--list-rules", action="store_true", help="print the ruleset")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    rules_path = args.rules or os.path.join(root, "tools", "lint_rules.toml")
    config = Config(load_toml(rules_path))

    if args.list_rules:
        for rule in config.rules:
            print(f"{rule.name}: {rule.message}")
        print("metric-naming: cbwt_<module>_* convention "
              f"(over {', '.join(config.metric_paths)})")
        print(f"layering: {len(config.deps)}-module dependency DAG over "
              f"{config.src_root}/")
        return 0

    if args.self_test:
        return run_self_test(root, config)

    findings = lint_tree(root, config)
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"cbwt-lint: {len(findings)} finding(s); fix them or, for a "
            "justified exception, append  // cbwt-lint: allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print("cbwt-lint: tree is clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
