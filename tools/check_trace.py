#!/usr/bin/env python3
"""check_trace: validate a cbwt flight-recorder Chrome trace JSON file.

Usage:
  check_trace.py TRACE.json [--min-threads N] [--min-events N]

Checks that the exported document is something Perfetto / chrome://tracing
will actually load, and that the recorder really captured the run:

  * top level is an object with a traceEvents array
  * every event has ph/pid/tid/name; B/E/i phases only (plus M metadata)
  * instant events carry the mandatory scope field ("s")
  * per-thread timestamps are present and non-negative
  * at least --min-threads distinct threads emitted real (non-metadata)
    events — the CI gate proving worker-side instrumentation fired
  * no thread ends an E without a matching B (enforced only when
    droppedEvents == 0, since ring wraparound can chop the B half of a
    pair); trailing open B events are fine — a live snapshot taken
    mid-run legitimately contains spans that have not finished yet

Exit status: 0 OK, 1 validation failure, 2 usage/parse error.
Stdlib-only on purpose.
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(message: str) -> int:
    print(f"check_trace: {message}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Validate a cbwt Chrome trace JSON.")
    parser.add_argument("trace")
    parser.add_argument("--min-threads", type=int, default=1, metavar="N",
                        help="distinct threads that must have emitted events")
    parser.add_argument("--min-events", type=int, default=1, metavar="N",
                        help="total non-metadata events required")
    args = parser.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_trace: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2

    if not isinstance(document, dict) or not isinstance(document.get("traceEvents"), list):
        return fail("top level must be an object with a traceEvents array")

    events = document["traceEvents"]
    dropped = document.get("droppedEvents", 0)
    threads_with_events: set[int] = set()
    labels: dict[int, str] = {}
    open_begins: dict[int, int] = {}
    total = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                labels[event.get("tid", -1)] = event.get("args", {}).get("name", "")
            continue
        if phase not in ("B", "E", "i"):
            return fail(f"traceEvents[{i}]: unexpected phase {phase!r}")
        for key in ("pid", "tid", "ts", "name"):
            if key not in event:
                return fail(f"traceEvents[{i}]: missing {key!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            return fail(f"traceEvents[{i}]: bad ts {event['ts']!r}")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            return fail(f"traceEvents[{i}]: instant event without scope field")
        tid = event["tid"]
        threads_with_events.add(tid)
        total += 1
        if phase == "B":
            open_begins[tid] = open_begins.get(tid, 0) + 1
        elif phase == "E":
            open_begins[tid] = open_begins.get(tid, 0) - 1
            if open_begins[tid] < 0 and dropped == 0:
                return fail(f"traceEvents[{i}]: E without matching B on tid {tid}")

    for tid in threads_with_events:
        if tid not in labels:
            return fail(f"tid {tid} has events but no thread_name metadata")
    if total < args.min_events:
        return fail(f"only {total} events recorded (need >= {args.min_events})")
    if len(threads_with_events) < args.min_threads:
        return fail(f"events from only {len(threads_with_events)} thread(s) "
                    f"(need >= {args.min_threads}): "
                    f"{sorted(labels[t] for t in threads_with_events)}")

    named = ", ".join(sorted(labels[t] for t in threads_with_events))
    print(f"check_trace: {args.trace} OK — {total} events across "
          f"{len(threads_with_events)} threads ({named}); dropped={dropped}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
