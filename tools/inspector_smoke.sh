#!/usr/bin/env bash
# inspector_smoke.sh BINARY_DIR [WORK_DIR]
#
# End-to-end smoke of the embedded live inspector: launches a
# store-backed run with --inspect-port 0, discovers the ephemeral port
# from the "inspector listening on 127.0.0.1:PORT" line, then fetches
# all four endpoints (/healthz, /metrics, /report, /trace) from the
# live process and sanity-checks each payload. Fails loudly if the
# server never comes up, any endpoint errors, or the run itself fails.
set -euo pipefail

binary_dir=${1:?usage: inspector_smoke.sh BINARY_DIR [WORK_DIR]}
work_dir=${2:-inspector-smoke}

runner="$binary_dir/examples/store_scale_run"
[[ -x "$runner" ]] || { echo "inspector_smoke: $runner not built" >&2; exit 1; }

mkdir -p "$work_dir"
log="$work_dir/run.log"

# Modest scale: the linger window, not the run length, is what keeps
# the server alive for the probes.
"$runner" \
  --store-dir "$work_dir/store" \
  --netflow-scale 1e-3 --world-scale 0.01 --threads 2 \
  --inspect-port 0 --linger-s 45 \
  --report "$work_dir/report.json" --trace "$work_dir/trace.json" \
  >"$log" 2>&1 &
run_pid=$!
trap 'kill "$run_pid" 2>/dev/null || true' EXIT

# The port line is printed (and flushed) right after the Study starts.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^inspector listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")
  [[ -n "$port" ]] && break
  if ! kill -0 "$run_pid" 2>/dev/null; then
    echo "inspector_smoke: run exited before announcing a port" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.2
done
[[ -n "$port" ]] || { echo "inspector_smoke: no port line in $log" >&2; cat "$log" >&2; exit 1; }
echo "inspector_smoke: probing live inspector on port $port"

fetch() {
  local path=$1 out=$2
  curl --silent --show-error --fail --max-time 30 \
    "http://127.0.0.1:$port$path" -o "$out"
}

fetch /healthz "$work_dir/healthz.txt"
grep -q '^ok$' "$work_dir/healthz.txt"

fetch /metrics "$work_dir/metrics.prom"
grep -q '^# TYPE cbwt_' "$work_dir/metrics.prom"
grep -q '^cbwt_obs_proc_rss_bytes ' "$work_dir/metrics.prom"

fetch /report "$work_dir/report_live.json"
python3 -m json.tool "$work_dir/report_live.json" >/dev/null
grep -q '"cbwt_core_run_report"' "$work_dir/report_live.json"

fetch /trace "$work_dir/trace_live.json"
python3 tools/check_trace.py "$work_dir/trace_live.json" --min-threads 1

echo "inspector_smoke: all four endpoints served; waiting for the run"
wait "$run_pid"
trap - EXIT

# The run's own exports must also be intact (and, run to completion
# with threads=2, the trace must show real worker-side events).
python3 -m json.tool "$work_dir/report.json" >/dev/null
python3 tools/check_trace.py "$work_dir/trace.json" --min-threads 2
echo "inspector_smoke: OK"
