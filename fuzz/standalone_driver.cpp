// Replay driver for toolchains without libFuzzer (gcc): feeds every
// file passed on the command line — directories are walked — to
// LLVMFuzzerTestOneInput. Set CBWT_FUZZ_SECONDS=<n> to loop over the
// corpus for n wall-clock seconds with cheap byte-level mutations
// (truncation, single-byte flips from a deterministic PRNG), which is
// what tools/run_fuzzers.sh uses for the timed smoke runs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void collect_inputs(const char* arg, std::vector<std::filesystem::path>& out) {
  const std::filesystem::path path(arg);
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) out.push_back(entry.path());
    }
  } else if (std::filesystem::is_regular_file(path, ec)) {
    out.push_back(path);
  }
}

// xorshift64: deterministic, no seed-time dependency on the clock.
std::uint64_t next_random(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

void run_once(const std::vector<std::uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

void run_mutated(std::vector<std::uint8_t> bytes, std::uint64_t& rng) {
  if (bytes.empty()) {
    run_once(bytes);
    return;
  }
  switch (next_random(rng) % 3) {
    case 0:  // flip one byte
      bytes[next_random(rng) % bytes.size()] =
          static_cast<std::uint8_t>(next_random(rng));
      break;
    case 1:  // truncate
      bytes.resize(next_random(rng) % bytes.size());
      break;
    default:  // append junk
      bytes.push_back(static_cast<std::uint8_t>(next_random(rng)));
      break;
  }
  run_once(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) collect_inputs(argv[i], inputs);
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(inputs.size());
  for (const auto& path : inputs) corpus.push_back(read_file(path));

  long seconds = 0;
  if (const char* env = std::getenv("CBWT_FUZZ_SECONDS")) seconds = std::atol(env);

  // Pass 1: exact replay of every corpus input (the regression gate).
  for (const auto& bytes : corpus) run_once(bytes);
  std::size_t executions = corpus.size();

  // Pass 2 (optional): timed mutation loop.
  if (seconds > 0) {
    std::uint64_t rng = 0x2545F4914F6CDD1DULL;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const auto& bytes : corpus) {
        run_mutated(bytes, rng);
        ++executions;
      }
    }
  }

  std::fprintf(stderr, "standalone_driver: %zu inputs, %zu executions, no crash\n",
               corpus.size(), executions);
  return 0;
}
