// Fuzz target for the AdBlockPlus rule parser and matcher
// (src/filterlist/rule.cpp): filter-list lines are external inputs in
// the real pipeline, and mis-parsed rules silently skew Table 2.
//
// Every accepted rule is matched against a small fixed set of request
// contexts so the matcher's position arithmetic runs on every parse,
// and re-parsed from its stored text (parse must be a fixpoint).
#include <cstdint>
#include <string_view>

#include "filterlist/rule.h"
#include "util/contract.h"

namespace {

void exercise_matcher(const cbwt::filterlist::Rule& rule) {
  static constexpr std::string_view kUrls[] = {
      "http://ads.tracker.com/pixel?uid=1",
      "https://cdn.site.org/lib.js",
      "https://sub.ads.example.co.uk:8443/a/b^c",
      "http://x/",
  };
  for (const auto url : kUrls) {
    cbwt::filterlist::RequestContext context;
    context.url = url;
    context.host = "ads.tracker.com";
    context.page_host = "news.site.org";
    context.third_party = true;
    (void)cbwt::filterlist::rule_matches(rule, context);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view line =
      size == 0 ? std::string_view{}
                : std::string_view(reinterpret_cast<const char*>(data), size);
  const auto rule = cbwt::filterlist::parse_rule(line);
  if (!rule) return 0;

  // parse_rule's postcondition, restated where the fuzzer can see it.
  CBWT_ASSERT(!rule->parts.empty() ||
              rule->anchor != cbwt::filterlist::AnchorKind::None || rule->end_anchor);
  exercise_matcher(*rule);

  // The stored text must survive a round trip as the same rule shape.
  const auto reparsed = cbwt::filterlist::parse_rule(rule->text);
  CBWT_ASSERT(reparsed.has_value());
  CBWT_ASSERT(reparsed->exception == rule->exception);
  CBWT_ASSERT(reparsed->anchor == rule->anchor);
  CBWT_ASSERT(reparsed->end_anchor == rule->end_anchor);
  CBWT_ASSERT(reparsed->parts == rule->parts);
  return 0;
}
