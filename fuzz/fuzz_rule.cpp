// Fuzz target for the AdBlockPlus rule parser and matcher
// (src/filterlist/rule.cpp): filter-list lines are external inputs in
// the real pipeline, and mis-parsed rules silently skew Table 2.
//
// Every accepted rule is matched against a small fixed set of request
// contexts so the matcher's position arithmetic runs on every parse,
// and re-parsed from its stored text (parse must be a fixpoint). The
// fuzzed rule is also loaded (together with a fixed base list) into
// both the token-indexed Engine and the naive ReferenceEngine, which
// must agree on every context — so the fuzzer cross-checks the
// compiled fast path against the executable spec on adversarial rules.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "filterlist/engine.h"
#include "filterlist/reference.h"
#include "filterlist/rule.h"
#include "util/contract.h"

namespace {

constexpr std::string_view kUrls[] = {
    "http://ads.tracker.com/pixel?uid=1",
    "https://cdn.site.org/lib.js",
    "https://sub.ads.example.co.uk:8443/a/b^c",
    "http://x/",
};

cbwt::filterlist::RequestContext context_for(std::string_view url) {
  cbwt::filterlist::RequestContext context;
  context.url = url;
  context.host = "ads.tracker.com";
  context.page_host = "news.site.org";
  context.third_party = true;
  return context;
}

void exercise_matcher(const cbwt::filterlist::Rule& rule) {
  for (const auto url : kUrls) {
    (void)cbwt::filterlist::rule_matches(rule, context_for(url));
  }
}

/// Indexed-vs-reference parity: both engines see the fuzzed line plus a
/// fixed base list (so exception interplay is exercised even when the
/// fuzzed rule is itself an exception) and must return the same verdict
/// and winning rule on every context.
void exercise_engines(std::string_view line) {
  const std::vector<std::string> lines = {
      std::string(line),
      "||ads.tracker.com^",
      "/pixel?",
      "@@||ads.tracker.com/allowed/",
  };
  cbwt::filterlist::Engine indexed;
  cbwt::filterlist::ReferenceEngine reference;
  indexed.add_list(cbwt::filterlist::FilterList("fuzz", lines));
  reference.add_list(cbwt::filterlist::FilterList("fuzz", lines));
  for (const auto url : kUrls) {
    const auto context = context_for(url);
    const auto got = indexed.match(context);
    const auto want = reference.match(context);
    CBWT_ASSERT(got.matched == want.matched);
    if (want.matched) {
      CBWT_ASSERT(got.rule->text == want.rule->text);
      CBWT_ASSERT(got.list == want.list);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view line =
      size == 0 ? std::string_view{}
                : std::string_view(reinterpret_cast<const char*>(data), size);
  const auto rule = cbwt::filterlist::parse_rule(line);
  if (!rule) return 0;

  // parse_rule's postcondition, restated where the fuzzer can see it.
  CBWT_ASSERT(!rule->parts.empty() ||
              rule->anchor != cbwt::filterlist::AnchorKind::None || rule->end_anchor);
  exercise_matcher(*rule);
  exercise_engines(line);

  // The stored text must survive a round trip as the same rule shape.
  const auto reparsed = cbwt::filterlist::parse_rule(rule->text);
  CBWT_ASSERT(reparsed.has_value());
  CBWT_ASSERT(reparsed->exception == rule->exception);
  CBWT_ASSERT(reparsed->anchor == rule->anchor);
  CBWT_ASSERT(reparsed->end_anchor == rule->end_anchor);
  CBWT_ASSERT(reparsed->parts == rule->parts);
  return 0;
}
