// Fuzz target for the URL parser (src/net/url.cpp): the classifier's
// stage-2/3 entry point for untrusted extension-dataset bytes.
//
// Checks, beyond "does not crash under ASan/UBSan":
//   - documented accessor invariants hold on every accepted parse
//   - to_string() of an accepted parse re-parses to the same value
//     (canonicalization is a fixpoint)
#include <cstdint>
#include <string_view>

#include "net/url.h"
#include "util/contract.h"

namespace {

void check_invariants(const cbwt::net::Url& url) {
  CBWT_ASSERT(!url.host().empty());
  CBWT_ASSERT(url.scheme() == "http" || url.scheme() == "https");
  CBWT_ASSERT(!url.path().empty() && url.path().front() == '/');
  CBWT_ASSERT(url.port() != 0);
  CBWT_ASSERT(url.has_arguments() == !url.query().empty());
  // An empty query must never yield key/value pairs.
  CBWT_ASSERT(!url.query().empty() || url.arguments().empty());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text =
      size == 0 ? std::string_view{}
                : std::string_view(reinterpret_cast<const char*>(data), size);
  const auto url = cbwt::net::Url::parse(text);
  if (!url) return 0;
  check_invariants(*url);

  const auto reparsed = cbwt::net::Url::parse(url->to_string());
  CBWT_ASSERT(reparsed.has_value());
  check_invariants(*reparsed);
  CBWT_ASSERT(reparsed->host() == url->host());
  CBWT_ASSERT(reparsed->port() == url->port());
  CBWT_ASSERT(reparsed->path() == url->path());
  CBWT_ASSERT(reparsed->query() == url->query());
  return 0;
}
