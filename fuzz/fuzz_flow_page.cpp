// Fuzz target for the flow-page codec (src/netflow/flow_page.h): the
// spill-file format of the out-of-core NetFlow join. The harness feeds
// the input as one page image.
//
// Invariants pinned:
//   * parse never crashes, whatever the bytes;
//   * an accepted page re-encodes to the identical 4096 bytes (the
//     encoding is canonical — minimal varints, zero padding — so
//     encode∘parse is the identity on accepted pages);
//   * the page's records survive a second parse unchanged.
#include <algorithm>
#include <cstdint>
#include <span>

#include "netflow/flow_page.h"
#include "util/contract.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  const auto page = cbwt::netflow::parse_flow_page(bytes);
  if (!page) return 0;

  // Parse -> encode fixpoint on the full page image.
  std::uint8_t reencoded[cbwt::netflow::kFlowPageBytes];
  cbwt::netflow::encode_flow_page(*page, reencoded);
  CBWT_ASSERT(size == cbwt::netflow::kFlowPageBytes);
  CBWT_ASSERT(std::equal(reencoded, reencoded + sizeof reencoded, bytes.begin()));

  // And the records round-trip a second parse bit for bit.
  const auto again =
      cbwt::netflow::parse_flow_page({reencoded, sizeof reencoded});
  CBWT_ASSERT(again.has_value());
  CBWT_ASSERT(again->records == page->records);
  return 0;
}
