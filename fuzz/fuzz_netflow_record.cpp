// Fuzz target for the NetFlow wire codec (src/netflow/wire.cpp): the
// boundary where untrusted router bytes become RawRecord structs.
//
// Both entry points run on every input. Accepted records must encode
// back to the identical bytes (the layout has no redundant states), and
// accepted packets must re-encode to the identical packet.
#include <algorithm>
#include <cstdint>
#include <span>

#include "netflow/wire.h"
#include "util/contract.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  if (const auto record = cbwt::netflow::parse_record(bytes)) {
    const auto encoded = cbwt::netflow::encode_record(*record);
    CBWT_ASSERT(encoded.size() == bytes.size());
    CBWT_ASSERT(std::equal(encoded.begin(), encoded.end(), bytes.begin()));
  }

  if (const auto records = cbwt::netflow::parse_packet(bytes)) {
    CBWT_ASSERT(records->size() <= cbwt::netflow::kWireMaxRecordsPerPacket);
    const auto encoded = cbwt::netflow::encode_packet(*records);
    CBWT_ASSERT(encoded.size() == bytes.size());
    CBWT_ASSERT(std::equal(encoded.begin(), encoded.end(), bytes.begin()));
  }
  return 0;
}
