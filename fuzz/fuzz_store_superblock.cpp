// Fuzz target for the store superblock parser and the record-stream
// validation path (src/store): the boundary where untrusted bytes on
// disk become a typed dataset. The harness treats the input as a whole
// store-file image: a 64-byte superblock followed by payload.
//
// Accepted superblocks must re-encode to the identical 64 bytes (the
// header has no redundant states), and a geometry- and checksum-valid
// NetflowWire image must decode every record without crashing.
#include <algorithm>
#include <cstdint>
#include <span>

#include "netflow/wire.h"
#include "store/bytes.h"
#include "store/superblock.h"
#include "util/contract.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  const auto block = cbwt::store::parse_superblock(bytes);
  if (!block) return 0;

  // Parse -> encode fixpoint on the 64-byte header.
  std::uint8_t reencoded[cbwt::store::kSuperblockSize];
  cbwt::store::encode_superblock(*block, {reencoded, sizeof reencoded});
  CBWT_ASSERT(std::equal(reencoded, reencoded + sizeof reencoded, bytes.begin()));

  // A reader would now validate geometry and checksum; replay exactly
  // those checks, then decode whatever survives them.
  const auto payload = bytes.subspan(cbwt::store::kSuperblockSize);
  if (payload.size() != block->payload_bytes) return 0;
  if (cbwt::store::fnv1a(payload) != block->checksum) return 0;

  if (block->kind == cbwt::store::RecordKind::NetflowWire &&
      block->record_size == cbwt::netflow::kWireRecordSize) {
    for (std::uint64_t i = 0; i < block->record_count; ++i) {
      const auto record = cbwt::netflow::parse_record(
          payload.subspan(i * cbwt::netflow::kWireRecordSize,
                          cbwt::netflow::kWireRecordSize));
      if (!record) continue;  // checksum-valid bytes may still be foreign
      const auto encoded = cbwt::netflow::encode_record(*record);
      CBWT_ASSERT(encoded.size() == cbwt::netflow::kWireRecordSize);
      CBWT_ASSERT(std::equal(encoded.begin(), encoded.end(),
                             payload.begin() + i * cbwt::netflow::kWireRecordSize));
    }
  }
  return 0;
}
