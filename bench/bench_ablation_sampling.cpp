// Ablation: NetFlow sampling rate vs the confinement estimate. Packet
// sampling scales the counters but the EU28-share estimator is a ratio,
// so the estimate should be unbiased — only its variance grows.
#include "bench_common.h"
#include "netflow/profile.h"

int main() {
  using namespace cbwt;
  auto config = bench::bench_config();
  bench::print_header("Ablation: NetFlow sampling rate vs confinement estimate",
                      config);

  util::TextTable table({"sampled flows", "EU28 share", "in-country share"});
  const auto& isp = netflow::default_isps()[0];
  const auto& snapshot = netflow::default_snapshots()[1];
  double reference = -1.0;
  double max_dev = 0.0;
  for (const double netflow_scale : {1e-3, 2e-4, 5e-5, 1e-5}) {
    core::StudyConfig variant = config;
    variant.netflow.scale = netflow_scale;
    core::Study study(variant);
    const auto run = study.run_isp_snapshot(isp, snapshot);
    auto analyzer = study.analyzer();
    const auto regions = analyzer.destination_regions(run.flows);
    const auto eu_it = regions.share.find(geo::Region::EU28);
    const double eu = eu_it == regions.share.end() ? 0.0 : 100.0 * eu_it->second;
    const auto confinement = analyzer.confinement(run.flows);
    table.add_row({util::fmt_count(run.collection.matched_records),
                   util::fmt_pct(eu, 2), util::fmt_pct(confinement.in_country, 2)});
    if (reference < 0.0) reference = eu;
    max_dev = std::max(max_dev, std::abs(eu - reference));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmax deviation of the EU28 share across sampling rates: %.2f pp\n",
              max_dev);

  bench::print_paper_note(
      "Design-choice check (§7.2): the ISPs' NetFlow is packet-sampled at a\n"
      "constant rate; the paper's confinement percentages are ratios and thus\n"
      "insensitive to the rate. Expected: the EU28 share moves by at most a\n"
      "couple of percentage points as the sampled volume drops by 100x.");
  return 0;
}
