// Fig. 3: the top-20 registrable domains ("TLDs") of tracking flows, with
// the split between ABP-detected and SEMI-detected requests per domain.
#include <map>

#include "bench_common.h"
#include "net/domain.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 3: top 20 tracking TLDs, ABP vs SEMI detection", config);
  core::Study study(config);

  const auto& dataset = study.dataset();
  const auto& outcomes = study.outcomes();
  struct Split {
    std::uint64_t abp = 0;
    std::uint64_t semi = 0;
  };
  std::map<std::string, Split> by_registrable;
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    const auto& domain = study.world().domain(dataset.requests[i].domain);
    auto& split = by_registrable[domain.registrable];
    if (outcomes[i].method == classify::Method::AbpList) ++split.abp;
    else ++split.semi;
  }

  std::vector<std::pair<std::string, Split>> ranked(by_registrable.begin(),
                                                    by_registrable.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.abp + a.second.semi > b.second.abp + b.second.semi;
  });
  if (ranked.size() > 20) ranked.resize(20);

  util::TextTable table({"rank", "tracking TLD", "ABP", "SEMI", "total"});
  std::size_t semi_heavy = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& [registrable, split] = ranked[i];
    table.add_row({std::to_string(i + 1), registrable, util::fmt_count(split.abp),
                   util::fmt_count(split.semi), util::fmt_count(split.abp + split.semi)});
    if (split.semi > split.abp) ++semi_heavy;
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n%zu of the top %zu TLDs are detected mostly by the SEMI stage\n",
              semi_heavy, ranked.size());

  bench::print_paper_note(
      "Fig. 3: the top-20 list mixes ABP-covered ad networks with domains whose\n"
      "flows are mostly SEMI-detected (chained ad-network traffic an ad blocker\n"
      "would have suppressed). Reproduced shape: both detection modes appear\n"
      "prominently in the top 20, with several SEMI-dominated entries.");
  return 0;
}
