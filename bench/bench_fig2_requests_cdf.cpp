// Fig. 2: CDF of third-party requests per website — "clean only",
// "ad + tracking only", and "all 3rd party".
#include <map>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 2: third-party requests per website (CDFs)", config);
  core::Study study(config);

  const auto& dataset = study.dataset();
  const auto& outcomes = study.outcomes();
  std::map<world::PublisherId, std::uint64_t> clean;
  std::map<world::PublisherId, std::uint64_t> tracking;
  std::map<world::PublisherId, std::uint64_t> all;
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    const auto publisher = dataset.requests[i].publisher;
    ++all[publisher];
    if (classify::is_tracking(outcomes[i].method)) ++tracking[publisher];
    else ++clean[publisher];
  }

  const auto to_cdf = [&](const std::map<world::PublisherId, std::uint64_t>& counts) {
    std::vector<double> values;
    values.reserve(counts.size());
    for (const auto& [publisher, count] : counts) {
      values.push_back(static_cast<double>(count));
    }
    return util::EmpiricalCdf(std::move(values));
  };
  const auto clean_cdf = to_cdf(clean);
  const auto tracking_cdf = to_cdf(tracking);
  const auto all_cdf = to_cdf(all);

  util::TextTable table({"quantile", "clean only", "ad+tracking only", "all 3rd party"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    table.add_row({util::fmt_fixed(q, 2), util::fmt_fixed(clean_cdf.quantile(q), 1),
                   util::fmt_fixed(tracking_cdf.quantile(q), 1),
                   util::fmt_fixed(all_cdf.quantile(q), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmedian ad+tracking / median all = %.2f\n",
              all_cdf.quantile(0.5) == 0.0
                  ? 0.0
                  : tracking_cdf.quantile(0.5) / all_cdf.quantile(0.5));

  bench::print_paper_note(
      "Fig. 2 takeaway: on average most of the third-party requests a website\n"
      "triggers are ad/tracking flows — the 'ad+tracking' CDF hugs the 'all'\n"
      "CDF while 'clean only' sits well below. The ratio above should be\n"
      "clearly above 0.5 to reproduce the claim.");
  return 0;
}
