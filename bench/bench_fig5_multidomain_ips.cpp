// Fig. 5: the IPs hosting 10+ ad/tracking domains (exchange points,
// RTB auction hosts, cookie-sync hubs) and where they physically are.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 5: IPs hosting 10+ tracking domains, by location", config);
  core::Study study(config);

  const auto& store = study.pdns_store();
  util::Tally by_country;
  std::size_t hub_count = 0;
  std::size_t in_us_or_eu = 0;
  for (const auto& ip : study.completed_tracker_ips()) {
    const auto domains = store.registrable_count(ip);
    if (domains < 10) continue;
    ++hub_count;
    const auto country = study.geo().locate(ip, geoloc::Tool::ActiveIpmap);
    by_country.add(country.empty() ? "unknown" : country);
    const auto* info = geo::find_country(country);
    if (info != nullptr && (country == "US" || info->eu28)) ++in_us_or_eu;
  }

  util::TextTable table({"country", "# hub IPs"});
  for (const auto& [country, count] : by_country.top(15)) {
    table.add_row({country, util::fmt_count(count)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nhub IPs (>=10 domains): %zu; in US or EU28: %.0f%%\n", hub_count,
              hub_count == 0 ? 0.0
                             : util::percent(static_cast<double>(in_us_or_eu),
                                             static_cast<double>(hub_count)));
  // Sanity: the hubs really are the world's shared exchange servers.
  std::size_t exchange_servers = 0;
  for (const auto& server : study.world().servers()) {
    if (server.shared_exchange) ++exchange_servers;
  }
  std::printf("shared-exchange servers in the world model: %zu\n", exchange_servers);

  bench::print_paper_note(
      "Fig. 5: 114 IPs serve 10+ tracking domains; about half sit in the USA\n"
      "and EU28, and closer inspection shows they are ad-exchange / RTB /\n"
      "cookie-sync infrastructure. Reproduced shape: a small set of hub IPs\n"
      "concentrated in the US and the EU hosting magnets.");
  return 0;
}
