// Future-work extension (paper §9): reconstruct the inter-tracker
// collaboration graph from the extension dataset and measure how much of
// the *data exchange between trackers* crosses the GDPR border — beyond
// the per-flow view of the main study.
#include "bench_common.h"
#include "collab/graph.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Future work (§9): inter-tracker collaboration and data exchange", config);
  core::Study study(config);

  const auto graph = collab::CollabGraph::from_dataset(study.world(), study.dataset(),
                                                       study.outcomes());
  std::printf("collaboration graph: %zu organizations, %zu edges\n\n",
              graph.node_count(), graph.edge_count());

  util::TextTable table({"org A (role)", "org B (role)", "observations", "users"});
  for (const auto& edge : graph.top_edges(12)) {
    const auto& a = study.world().org(edge.a);
    const auto& b = study.world().org(edge.b);
    table.add_row({a.name + " (" + std::string(world::to_string(a.role)) + ")",
                   b.name + " (" + std::string(world::to_string(b.role)) + ")",
                   util::fmt_count(edge.weight), util::fmt_count(edge.users)});
  }
  std::printf("heaviest collaboration edges:\n%s", table.render().c_str());

  util::Rng rng(config.world.seed ^ 0xC0UL);
  const auto labels = graph.communities(12, rng);
  std::map<std::uint32_t, std::size_t> sizes;
  for (const auto& [org, label] : labels) ++sizes[label];
  std::vector<std::size_t> ordered;
  for (const auto& [label, size] : sizes) ordered.push_back(size);
  std::sort(ordered.rbegin(), ordered.rend());
  std::printf("\ncommunities: %zu (largest: ", sizes.size());
  for (std::size_t i = 0; i < ordered.size() && i < 5; ++i) {
    std::printf("%zu ", ordered[i]);
  }
  std::printf("orgs)\n");

  const double crossing = graph.cross_border_weight_share(
      study.geo(), geoloc::Tool::ActiveIpmap, study.world());
  std::printf("\nshare of collaboration volume linking EU-hosted with non-EU-hosted "
              "organizations: %.1f%%\n",
              100.0 * crossing);

  bench::print_paper_note(
      "No paper table exists for this: §9 names 'inter-tracker collaboration\n"
      "and data exchange' as future work. The reproduction shows the planned\n"
      "analysis is feasible from the same dataset: sync-service hubs dominate\n"
      "the degree distribution, the graph splits into exchange-centred\n"
      "communities, and a non-trivial share of collaboration volume links\n"
      "EU-hosted with non-EU-hosted parties — data that crosses the border\n"
      "even when each browser flow looked confined.");
  return 0;
}
