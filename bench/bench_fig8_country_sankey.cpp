// Fig. 8: origin -> destination countries for EU28 users' tracking flows
// (the national-confinement Sankey) under active geolocation.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 8: EU28 tracking flows, per-country Sankey", config);
  core::Study study(config);

  const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);
  auto analyzer = study.analyzer();

  // Per-origin confinement table (the left column of the diagram).
  const auto by_origin = analyzer.per_origin_confinement(eu_flows);
  util::TextTable table({"origin", "flows", "in-country", "in EU28"});
  std::vector<std::pair<std::string, analysis::Confinement>> ordered(by_origin.begin(),
                                                                     by_origin.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.in_country > b.second.in_country;
  });
  for (const auto& [origin, confinement] : ordered) {
    table.add_row({origin, util::fmt_count(confinement.total),
                   util::fmt_pct(confinement.in_country, 1),
                   util::fmt_pct(confinement.in_eu28, 1)});
  }
  std::printf("%s", table.render().c_str());

  // Destination-country mass (the right column of the diagram).
  const auto destinations = analyzer.destination_countries(eu_flows);
  std::vector<std::pair<std::string, double>> top(destinations.begin(),
                                                  destinations.end());
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("\ntop destination countries of EU28 tracking flows:\n");
  for (std::size_t i = 0; i < top.size() && i < 12; ++i) {
    std::printf("  %-3s %6.2f%%\n", top[i].first.c_str(), 100.0 * top[i].second);
  }

  bench::print_paper_note(
      "Fig. 8: UK leads national confinement with 58.4%, Spain 33.1%; small\n"
      "countries are single-digit (Greece 6.77%, Romania 5.1%, Cyprus 1.16%).\n"
      "Destination mass concentrates on hosting magnets: Spain 17.6%,\n"
      "Netherlands 14.0%, UK 12.3%, US 10.6%, Germany 9.6%, France 9.5%,\n"
      "Ireland 6.6%. Reproduced shape: large/hosting-dense origins confine\n"
      "most; destinations concentrate on NL/DE/GB/FR/IE/US + local markets.");
  return 0;
}
