// Table 7: the profiles of the four European ISPs whose NetFlow scales
// the study up, plus the derived per-day export volumes of the model.
#include "bench_common.h"
#include "netflow/generator.h"
#include "netflow/profile.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Table 7: profiles of the four European ISPs", config);

  util::TextTable table({"Name", "Country", "Access", "Demographics",
                         "3rd-party DNS share", "paper-scale flows/day"});
  const netflow::GeneratorConfig generator;
  for (const auto& isp : netflow::default_isps()) {
    const double paper_scale_flows =
        generator.flows_per_subscriber_m * isp.subscribers_m * isp.web_activity;
    table.add_row({std::string(isp.name), std::string(isp.country),
                   std::string(netflow::to_string(isp.access)),
                   util::fmt_fixed(isp.subscribers_m, 0) + "M+ users",
                   util::fmt_pct(100.0 * isp.third_party_resolver_share, 0),
                   util::fmt_count(static_cast<std::uint64_t>(paper_scale_flows))});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nsnapshot days (since Sep 1, 2017): ");
  for (const auto& snapshot : netflow::default_snapshots()) {
    std::printf("%s(day %d)  ", std::string(snapshot.label).c_str(), snapshot.day);
  }
  std::printf("\n");

  bench::print_paper_note(
      "Table 7: DE-Broadband (Germany, 15M+ broadband households), DE-Mobile\n"
      "(Germany, 40M+ mobile), PL (Poland, 11M+ mixed), HU (Hungary, 6M+\n"
      "mostly mobile). Snapshots: Nov 8, April 4, May 16 (pre-GDPR) and\n"
      "June 20 (post-GDPR). The derived flows/day land on Table 8's sampled\n"
      "volumes (DE-Broadband ~1.05e9/day).");
  return 0;
}
