// Ablation: what each classification stage contributes — lists only,
// +referrer chaining, +keywords — scored against the world's ground
// truth (which the classifier itself never sees).
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Ablation: classifier stages (lists / +referrer / +keywords)",
                      config);
  core::Study study(config);
  const auto& dataset = study.dataset();

  struct Variant {
    const char* name;
    bool referrer;
    bool keyword;
  };
  const Variant variants[] = {
      {"ABP lists only", false, false},
      {"lists + referrer chaining", true, false},
      {"lists + keywords", false, true},
      {"full (lists + referrer + keywords)", true, true},
  };

  util::TextTable table({"variant", "tracking requests", "precision", "recall"});
  for (const auto& variant : variants) {
    // Rebuild the engine per variant (the classifier owns its engine).
    auto rng = util::Rng(util::mix64(config.world.seed ^ util::mix64(0xF117)));
    const auto lists = filterlist::generate_lists(study.world(), rng);
    filterlist::Engine engine;
    engine.add_list(filterlist::FilterList("easylist", lists.easylist));
    engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    classify::ClassifierConfig classifier_config;
    classifier_config.enable_referrer_stage = variant.referrer;
    classifier_config.enable_keyword_stage = variant.keyword;
    const classify::Classifier classifier(std::move(engine), classifier_config);
    const auto outcomes = classifier.run(dataset);
    const auto score = classify::score_against_truth(study.world(), dataset, outcomes);
    std::uint64_t flagged = 0;
    for (const auto& outcome : outcomes) {
      flagged += classify::is_tracking(outcome.method) ? 1 : 0;
    }
    table.add_row({variant.name, util::fmt_count(flagged),
                   util::fmt_pct(100.0 * score.precision()),
                   util::fmt_pct(100.0 * score.recall())});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Design-choice check (§3.2): blocking lists alone miss the chained\n"
      "requests an ad blocker would have prevented from firing; the referrer\n"
      "stage roughly doubles detection and the keyword stage mops up chains\n"
      "whose parent was itself unlisted. Expected: recall climbs sharply from\n"
      "row 1 to row 4 while precision stays near 100%.");
  return 0;
}
