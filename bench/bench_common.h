// Shared plumbing for the reproduction harnesses in bench/: one binary
// per paper table/figure. Each binary builds a Study (scale overridable
// via the CBWT_SCALE / CBWT_SEED environment variables, worker threads
// via --threads / CBWT_THREADS), regenerates its table, and prints the
// paper's reported numbers next to the measured ones. Absolute counts
// are scaled by design; the *shape* is the claim. `--json PATH` writes a
// machine-readable run summary next to the human-readable table.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/study.h"
#include "obs/metrics.h"
#include "report/json.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace cbwt::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

/// Command-line options shared by the harnesses. Threads defaults to the
/// CBWT_THREADS environment variable (1 = serial; 0 = hardware cores);
/// the study result is bit-identical for every value.
struct BenchOptions {
  unsigned threads = static_cast<unsigned>(env_u64("CBWT_THREADS", 1));
  std::string json_path;    ///< empty = no machine-readable output
  std::string report_path;  ///< empty = no Study::run_report() dump
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      options.report_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --threads N, --json PATH, "
                   "--report PATH)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return options;
}

/// Standard bench config: 8% of the paper's request volume by default.
/// CBWT_FAULT_RATE / CBWT_FAULT_SEED additionally arm the deterministic
/// fault-injection plan (unset = the zero-cost fault-free path), which
/// is how the EXPERIMENTS.md fault-rate sweeps drive any figure.
inline core::StudyConfig bench_config() {
  core::StudyConfig config;
  config.world.seed = env_u64("CBWT_SEED", 20180901);
  config.world.scale = env_double("CBWT_SCALE", 0.08);
  config.fault_plan = fault::FaultPlan::from_env();
  return config;
}

inline core::StudyConfig bench_config(const BenchOptions& options) {
  auto config = bench_config();
  config.threads = options.threads;
  return config;
}

/// Accumulates key metrics of one harness run and writes them as one
/// JSON object {name, seed, scale, threads, wall_ms, metrics{...}}.
/// Wall time runs from construction to write().
class JsonReport {
 public:
  JsonReport(std::string name, const core::StudyConfig& config)
      : name_(std::move(name)), seed_(config.world.seed), scale_(config.world.scale),
        threads_(config.threads), start_(std::chrono::steady_clock::now()) {}

  void metric(std::string key, double value) {
    metrics_.emplace_back(std::move(key), value);
  }

  /// Appends every counter and gauge of `registry` to the metric list
  /// (under its registry name), so a --json summary carries the run's
  /// observability state without a separate file.
  void metrics_from(const obs::Registry& registry) {
    for (const auto& [name, value] : registry.counters()) {
      metric(name, static_cast<double>(value));
    }
    for (const auto& [name, value] : registry.gauges()) metric(name, value);
  }

  /// No-op when `path` is empty (no --json given).
  void write(const std::string& path) const {
    if (path.empty()) return;
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    report::JsonWriter json;
    json.begin_object();
    json.key("name").value(name_);
    json.key("seed").value(seed_);
    json.key("scale").value(scale_);
    json.key("threads").value(static_cast<std::uint64_t>(threads_));
    json.key("wall_ms").value(wall_ms);
    json.key("metrics").begin_object();
    for (const auto& [key, value] : metrics_) json.key(key).value(value);
    json.end_object();
    json.end_object();
    std::ofstream out(path);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "failed to write JSON report to '%s'\n", path.c_str());
      std::exit(1);
    }
  }

 private:
  std::string name_;
  std::uint64_t seed_;
  double scale_;
  unsigned threads_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Writes Study::run_report() to `path`; no-op when path is empty (no
/// --report given). The report carries one span per executed stage plus
/// every registry metric.
inline void write_run_report(core::Study& study, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  out << study.run_report() << '\n';
  if (!out) {
    std::fprintf(stderr, "failed to write run report to '%s'\n", path.c_str());
    std::exit(1);
  }
}

inline void print_header(const char* experiment, const core::StudyConfig& config) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("seed=%llu  scale=%.3f (of the paper's dataset volume)  threads=%u\n",
              static_cast<unsigned long long>(config.world.seed), config.world.scale,
              config.threads);
  std::printf("==================================================================\n");
}

inline void print_paper_note(const char* note) {
  std::printf("\n-- paper reference --\n%s\n", note);
}

}  // namespace cbwt::bench
