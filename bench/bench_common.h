// Shared plumbing for the reproduction harnesses in bench/: one binary
// per paper table/figure. Each binary builds a Study (scale overridable
// via the CBWT_SCALE / CBWT_SEED environment variables), regenerates its
// table, and prints the paper's reported numbers next to the measured
// ones. Absolute counts are scaled by design; the *shape* is the claim.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace cbwt::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

/// Standard bench config: 8% of the paper's request volume by default.
inline core::StudyConfig bench_config() {
  core::StudyConfig config;
  config.world.seed = env_u64("CBWT_SEED", 20180901);
  config.world.scale = env_double("CBWT_SCALE", 0.08);
  return config;
}

inline void print_header(const char* experiment, const core::StudyConfig& config) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("seed=%llu  scale=%.3f (of the paper's dataset volume)\n",
              static_cast<unsigned long long>(config.world.seed), config.world.scale);
  std::printf("==================================================================\n");
}

inline void print_paper_note(const char* note) {
  std::printf("\n-- paper reference --\n%s\n", note);
}

}  // namespace cbwt::bench
