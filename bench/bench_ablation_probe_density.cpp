// Ablation: active-geolocation accuracy vs probe-mesh size. The paper's
// method hinges on RIPE Atlas's density (11K probes, EU-heavy); this
// sweep shows how country-level accuracy decays with a thinner mesh.
#include "bench_common.h"
#include "geoloc/active.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Ablation: probe-mesh density vs geolocation accuracy", config);
  core::Study study(config);
  const auto& world = study.world();

  util::TextTable table({"probes", "country acc. (EU+US)", "continent acc."});
  for (const std::uint32_t probes : {50U, 150U, 400U, 1100U, 3000U}) {
    auto mesh_rng = util::Rng(util::mix64(config.world.seed ^ probes));
    const geoloc::ProbeMesh mesh({probes}, mesh_rng);
    const geoloc::ActiveGeolocator locator(world, mesh);
    util::Rng rng(7);
    std::size_t checked = 0;
    std::size_t country_ok = 0;
    std::size_t continent_ok = 0;
    for (const auto& server : world.servers()) {
      const auto truth = world.true_country_of(server.ip);
      const auto* info = geo::find_country(truth);
      if (info == nullptr ||
          (info->continent != geo::Continent::Europe && truth != "US")) {
        continue;
      }
      if (++checked > 400) break;
      const auto estimate = locator.locate(server.ip, rng);
      if (estimate.country == truth) ++country_ok;
      const auto* guess = geo::find_country(estimate.country);
      if (guess != nullptr && guess->continent == info->continent) ++continent_ok;
    }
    table.add_row({util::fmt_count(probes),
                   util::fmt_pct(util::percent(static_cast<double>(country_ok),
                                               static_cast<double>(checked))),
                   util::fmt_pct(util::percent(static_cast<double>(continent_ok),
                                               static_cast<double>(checked)))});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Design-choice check (§3.4): the paper reports >90% country-level vote\n"
      "agreement and 99.58% validated country accuracy thanks to Atlas's\n"
      "density. Expected: accuracy rises monotonically with mesh size and\n"
      "saturates near the full mesh; continent accuracy is robust even when\n"
      "the mesh is thin.");
  return 0;
}
