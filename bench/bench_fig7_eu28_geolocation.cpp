// Fig. 7: destination regions of EU28 users' tracking flows under
// (a) the MaxMind-like commercial database and (b) active geolocation —
// the single methodological choice that flips the paper's conclusion.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 7: EU28 tracking-flow destinations, MaxMind vs IPmap",
                      config);
  core::Study study(config);

  const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);
  const auto print_breakdown = [&](geoloc::Tool tool) {
    const auto breakdown = study.analyzer(tool).destination_regions(eu_flows);
    std::vector<util::Bar> bars;
    for (const auto& [region, share] : breakdown.share) {
      bars.push_back({std::string(geo::to_string(region)), 100.0 * share, ""});
    }
    std::printf("\n(%s)\n%s", std::string(geoloc::to_string(tool)).c_str(),
                util::render_bars(bars, 40).c_str());
    return breakdown;
  };

  const auto maxmind = print_breakdown(geoloc::Tool::MaxMindLike);
  const auto ipmap = print_breakdown(geoloc::Tool::ActiveIpmap);

  const auto share = [](const analysis::RegionBreakdown& breakdown, geo::Region region) {
    const auto it = breakdown.share.find(region);
    return it == breakdown.share.end() ? 0.0 : 100.0 * it->second;
  };
  std::printf("\nqualitative flip: EU28 share %.1f%% (MaxMind-like) vs %.1f%% "
              "(IPmap-like); N.America %.1f%% vs %.1f%%\n",
              share(maxmind, geo::Region::EU28), share(ipmap, geo::Region::EU28),
              share(maxmind, geo::Region::NorthAmerica),
              share(ipmap, geo::Region::NorthAmerica));

  bench::print_paper_note(
      "Fig. 7(a) MaxMind: EU28 33.16%, N.America 65.94%. Fig. 7(b) RIPE IPmap:\n"
      "EU28 84.93%, N.America 10.75%, Rest of Europe 3.07%. Reproduced shape:\n"
      "under the commercial DB most flows appear to leak to N. America; under\n"
      "active geolocation the large majority terminates inside EU28.");
  return 0;
}
