// Table 2: AdBlockPlus lists vs the semi-automatic classification —
// FQDN / registrable-domain ("TLD") / unique-request / total-request
// counts per stage.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  const auto options = bench::parse_options(argc, argv);
  obs::Registry registry;
  auto config = bench::bench_config(options);
  config.registry = &registry;
  bench::print_header(
      "Table 2: ABP lists vs semi-automatic third-party classification", config);
  core::Study study(config);
  bench::JsonReport report("table2_classification", config);

  const auto summary = classify::summarize(study.dataset(), study.outcomes());
  util::TextTable table({"", "# FQDN", "# TLD", "# Unique Requests", "# Total Requests"});
  const auto row = [&](const char* label, const classify::StageStats& stats) {
    table.add_row({label, util::fmt_count(stats.fqdns), util::fmt_count(stats.registrables),
                   util::fmt_count(stats.unique_urls),
                   util::fmt_count(stats.total_requests)});
  };
  row("AdBlockPlus Lists", summary.abp);
  row("Semi-automatic", summary.semi);
  row("Total", summary.total);
  std::printf("%s", table.render().c_str());

  std::printf("\nnon-tracking (NTF) requests: %s  (%.1f%% of all 3rd-party)\n",
              util::fmt_count(summary.untracked_requests).c_str(),
              util::percent(static_cast<double>(summary.untracked_requests),
                            static_cast<double>(summary.untracked_requests +
                                                summary.total.total_requests)));
  std::printf("semi-automatic gain over ABP-only: +%.1f%% tracking requests\n",
              util::percent(static_cast<double>(summary.semi.total_requests),
                            static_cast<double>(summary.abp.total_requests)));

  bench::print_paper_note(
      "Table 2: ABP 6,259 FQDNs / 1,863 TLDs / 539,293 unique / 2,446,460 total;\n"
      "SEMI adds 3,620 FQDNs / 879 TLDs / 453,457 unique / 1,964,408 total\n"
      "(+80% requests over ABP-only). Reproduced shape: the second stage adds\n"
      "roughly as many tracking flows again as the lists alone.");

  report.metric("abp_requests", static_cast<double>(summary.abp.total_requests));
  report.metric("semi_requests", static_cast<double>(summary.semi.total_requests));
  report.metric("untracked_requests", static_cast<double>(summary.untracked_requests));
  report.metrics_from(registry);
  report.write(options.json_path);
  bench::write_run_report(study, options.report_path);
  return 0;
}
