// Ablation: the RTB latency budget vs bidder geography. The paper argues
// (§2.2, §5) that the ~100 ms bidding budget is why tracking backends
// chase locality; this sweep measures bid-timeout rates for EU-hosted vs
// US-only bidders from a European user as the budget tightens.
#include "bench_common.h"
#include "rtb/auction.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Ablation: RTB timeout budget vs bidder locality", config);
  core::Study study(config);
  const auto& world = study.world();

  // Split DSP bid endpoints by where they can serve a German user from.
  std::vector<world::OrgId> eu_hosted;
  std::vector<world::OrgId> us_only;
  for (const auto& org : world.orgs()) {
    if (org.role != world::OrgRole::Dsp || org.domains.empty()) continue;
    bool any_eu = false;
    bool all_us = true;
    for (const auto sid : world.domain(org.domains.front()).servers) {
      const auto& country = world.datacenter(world.server(sid).datacenter).country;
      const auto* info = geo::find_country(country);
      if (info != nullptr && info->eu28) any_eu = true;
      if (country != "US") all_us = false;
    }
    if (any_eu) eu_hosted.push_back(org.id);
    else if (all_us) us_only.push_back(org.id);
  }
  std::printf("bidders: %zu EU-hosted, %zu US-only (from a German user's view)\n\n",
              eu_hosted.size(), us_only.size());

  rtb::BidRequest request;
  request.id = "sweep";
  request.imp.id = "1";
  request.imp.bidfloor = 0.05;
  request.site_domain = "news.example.de";
  request.user_country = "DE";

  util::TextTable table({"timeout (ms)", "EU-hosted timeout rate", "US-only timeout rate",
                         "EU win share"});
  for (const double timeout : {40.0, 80.0, 100.0, 150.0, 250.0}) {
    rtb::AuctionConfig auction;
    auction.timeout_ms = timeout;
    const rtb::AuctionEngine engine(world, study.resolver(), auction);
    rtb::CookieJar jar;
    util::Rng rng(config.world.seed ^ static_cast<std::uint64_t>(timeout));

    std::uint64_t eu_solicited = 0;
    std::uint64_t eu_dropped = 0;
    std::uint64_t us_solicited = 0;
    std::uint64_t us_dropped = 0;
    std::uint64_t eu_wins = 0;
    std::uint64_t wins = 0;
    for (int round = 0; round < 400; ++round) {
      std::vector<world::OrgId> bidders;
      for (int k = 0; k < 3 && !eu_hosted.empty(); ++k) {
        bidders.push_back(eu_hosted[rng.next_below(eu_hosted.size())]);
      }
      for (int k = 0; k < 3 && !us_only.empty(); ++k) {
        bidders.push_back(us_only[rng.next_below(us_only.size())]);
      }
      const auto outcome = engine.run(request, bidders, jar, rng);
      for (const auto dsp : outcome.participants) {
        const bool is_eu = std::find(eu_hosted.begin(), eu_hosted.end(), dsp) !=
                           eu_hosted.end();
        (is_eu ? eu_solicited : us_solicited) += 1;
      }
      for (const auto dsp : outcome.timed_out) {
        const bool is_eu = std::find(eu_hosted.begin(), eu_hosted.end(), dsp) !=
                           eu_hosted.end();
        (is_eu ? eu_dropped : us_dropped) += 1;
      }
      if (outcome.winner) {
        ++wins;
        if (std::find(eu_hosted.begin(), eu_hosted.end(), outcome.winner->dsp) !=
            eu_hosted.end()) {
          ++eu_wins;
        }
      }
    }
    table.add_row(
        {util::fmt_fixed(timeout, 0),
         util::fmt_pct(util::percent(static_cast<double>(eu_dropped),
                                     static_cast<double>(eu_solicited))),
         util::fmt_pct(util::percent(static_cast<double>(us_dropped),
                                     static_cast<double>(us_solicited))),
         util::fmt_pct(util::percent(static_cast<double>(eu_wins),
                                     static_cast<double>(wins)))});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Design-choice check: the ~100 ms RTB budget (§3.3 cites it as the reason\n"
      "tracker IPs stay dedicated; §5 as the business case for locality) is a\n"
      "cliff for transatlantic bidders: at 100 ms, US-only bidders serving\n"
      "German users miss the budget far more often than EU-hosted ones, and the\n"
      "EU win share collapses toward 50% only when the budget is generous.");
  return 0;
}
