// §3.3: completeness of the tracker IP set — what passive DNS replication
// adds beyond the IPs the recruited users' browsers saw, and the IPv4/v6
// split of the result.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Sect. 3.3: tracker-IP completeness via passive DNS", config);
  core::Study study(config);

  const auto& observed = study.observed_tracker_ips();
  const auto& completed = study.completed_tracker_ips();
  const auto added = completed.size() - observed.size();

  std::size_t v4_total = 0;
  for (const auto& ip : completed) v4_total += ip.is_v4() ? 1 : 0;
  std::size_t v4_added = 0;
  {
    std::size_t i = 0;
    for (const auto& ip : completed) {
      const bool was_observed =
          std::binary_search(observed.begin(), observed.end(), ip);
      if (!was_observed && ip.is_v4()) ++v4_added;
      ++i;
    }
  }

  util::TextTable table({"metric", "value"});
  table.add_row({"IPs observed by the 350 users", util::fmt_count(observed.size())});
  table.add_row({"IPs after pDNS forward completion", util::fmt_count(completed.size())});
  table.add_row({"additional IPs from pDNS", util::fmt_count(added)});
  table.add_row({"pDNS gain",
                 util::fmt_pct(util::percent(static_cast<double>(added),
                                             static_cast<double>(observed.size())))});
  table.add_row({"IPv4 share of completed set",
                 util::fmt_pct(util::percent(static_cast<double>(v4_total),
                                             static_cast<double>(completed.size())))});
  table.add_row({"IPv4 share of the added IPs",
                 added == 0 ? "n/a"
                            : util::fmt_pct(util::percent(static_cast<double>(v4_added),
                                                          static_cast<double>(added)))});
  std::printf("%s", table.render().c_str());

  // Where do the pDNS-only IPs live? (They hide in regions the EU/SA-heavy
  // user base is never mapped to.)
  util::Tally regions;
  for (const auto& ip : completed) {
    if (std::binary_search(observed.begin(), observed.end(), ip)) continue;
    const auto region = study.geo().region(ip, geoloc::Tool::GroundTruth);
    regions.add(region ? std::string(geo::to_string(*region)) : "unknown");
  }
  std::printf("\npDNS-only IPs by true region:\n");
  for (const auto& [region, count] : regions.top(8)) {
    std::printf("  %-16s %llu\n", region.c_str(),
                static_cast<unsigned long long>(count));
  }

  bench::print_paper_note(
      "Sect. 3.3: 28,939 tracker IPs from the users, +806 (+2.78%) from pDNS,\n"
      "~97% IPv4 (60% of the additions IPv4). Reproduced shape: a small\n"
      "single-digit-percent completion, concentrated on replicas outside the\n"
      "recruited users' serving regions.");
  return 0;
}
