// Fig. 6: the continent/region-level Sankey of tracking flows under
// active geolocation — who sends where, and who hosts the backends.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  const auto options = bench::parse_options(argc, argv);
  obs::Registry registry;
  auto config = bench::bench_config(options);
  config.registry = &registry;
  bench::print_header("Fig. 6: tracking flows between regions (Sankey matrix)", config);
  core::Study study(config);
  bench::JsonReport report("fig6_continent_sankey", config);

  auto analyzer = study.analyzer();
  const auto matrix = analyzer.region_matrix(study.flows());

  // Row-normalized origin -> destination shares.
  util::TextTable table({"origin \\ destination", "EU 28", "Rest of Europe", "N. America",
                         "S. America", "Asia", "Africa", "Oceania", "flows"});
  const std::vector<std::string> columns = {"EU 28",      "Rest of Europe", "N. America",
                                            "S. America", "Asia",           "Africa",
                                            "Oceania"};
  util::Tally destination_mass;
  for (const auto& [origin, row] : matrix) {
    std::uint64_t total = 0;
    for (const auto& [destination, weight] : row) {
      total += weight;
      destination_mass.add(destination, weight);
    }
    std::vector<std::string> cells{origin};
    for (const auto& column : columns) {
      const auto it = row.find(column);
      const double share = it == row.end() ? 0.0 : static_cast<double>(it->second);
      cells.push_back(util::fmt_pct(util::percent(share, static_cast<double>(total)), 1));
    }
    cells.push_back(util::fmt_count(total));
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nshare of all flow terminations per region:\n");
  for (const auto& [destination, weight] : destination_mass.top(7)) {
    std::printf("  %-16s %6.2f%%\n", destination.c_str(),
                100.0 * destination_mass.share(destination));
  }

  bench::print_paper_note(
      "Fig. 6: EU28-origin flows mostly stay in EU28; South America leaks ~95%\n"
      "(90% into N. America). Terminations concentrate in EU28 (51.7%) and\n"
      "N. America (40.9%). Reproduced shape: high EU self-containment, strong\n"
      "SA->NA leakage, EU+NA hosting nearly all backends.");

  for (const auto& [destination, weight] : destination_mass.top(7)) {
    report.metric("termination_share_" + destination,
                  destination_mass.share(destination));
  }
  report.metrics_from(registry);
  report.write(options.json_path);
  bench::write_run_report(study, options.report_path);
  return 0;
}
