// Table 1: the real-users dataset statistics — users, first-party
// domains/requests, third-party domains/requests.
#include <set>

#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Table 1: the real users dataset statistics", config);
  core::Study study(config);

  const auto& dataset = study.dataset();
  std::set<std::string_view> third_party_fqdns;
  std::set<world::PublisherId> first_party;
  for (const auto& request : dataset.requests) {
    third_party_fqdns.insert(study.world().domain(request.domain).fqdn);
    first_party.insert(request.publisher);
  }

  util::TextTable table({"# Users", "# 1st party Domains", "# 1st party Requests",
                         "# 3rd party Domains", "# 3rd party Requests"});
  table.add_row({util::fmt_count(study.world().users().size()),
                 util::fmt_count(first_party.size()),
                 util::fmt_count(dataset.first_party_visits),
                 util::fmt_count(third_party_fqdns.size()),
                 util::fmt_count(dataset.requests.size())});
  std::printf("%s", table.render().c_str());

  std::printf("\nper-visit average: %.1f third-party requests\n",
              dataset.first_party_visits == 0
                  ? 0.0
                  : static_cast<double>(dataset.requests.size()) /
                        static_cast<double>(dataset.first_party_visits));

  bench::print_paper_note(
      "Table 1: 350 users, 5,693 1st-party domains, 76,507 1st-party requests,\n"
      "19,298 3rd-party domains, 7,172,752 3rd-party requests (~94 req/visit).\n"
      "Counts here scale with `scale`; the ~90+ requests/visit density and the\n"
      "3rd-party-domains >> 1st-party-domains ordering are the reproduced shape.");
  return 0;
}
