// Fig. 12: the top-5 destination countries of each ISP's tracking flows
// (April 4 snapshot) — the local-IT-infrastructure effect.
#include "bench_common.h"
#include "netflow/profile.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 12: top-5 destination countries per ISP (April 4)", config);
  core::Study study(config);
  auto analyzer = study.analyzer();
  const auto& snapshot = netflow::default_snapshots()[1];  // April 4

  for (const auto& isp : netflow::default_isps()) {
    const auto run = study.run_isp_snapshot(isp, snapshot);
    const auto destinations = analyzer.destination_countries(run.flows);
    std::vector<std::pair<std::string, double>> ranked(destinations.begin(),
                                                       destinations.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    double shown = 0.0;
    std::vector<util::Bar> bars;
    for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
      bars.push_back({ranked[i].first, 100.0 * ranked[i].second,
                      ranked[i].first == isp.country ? "(home)" : ""});
      shown += 100.0 * ranked[i].second;
    }
    bars.push_back({"Rest World", 100.0 - shown, ""});
    std::printf("\n[%s]\n%s", std::string(isp.name).c_str(),
                util::render_bars(bars, 40).c_str());
    const auto home = destinations.find(std::string(isp.country));
    std::printf("home-country confinement: %.2f%%\n",
                home == destinations.end() ? 0.0 : 100.0 * home->second);
  }

  bench::print_paper_note(
      "Fig. 12 (April 4): DE-Broadband terminates 69.0% in Germany (then NL\n"
      "7.9%, US 9.7%, IE 5.2%); DE-Mobile 67.3% in Germany; PL only 0.25% in\n"
      "Poland (NL 32.9%, US 20.7%, DE 20.5%); HU 6.85% in Hungary with Austria\n"
      "taking 62.3%. Reproduced shape: German ISPs mostly confined at home;\n"
      "PL/HU leak to neighbouring hosting hubs (DE/NL for PL, AT for HU).");
  return 0;
}
