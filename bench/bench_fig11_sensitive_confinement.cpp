// Fig. 11: per-country leakage of sensitive tracking flows for EU28
// users — how many sensitive flows leave the user's own country.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Fig. 11: sensitive tracking flows leaving the user's country (EU28)", config);
  core::Study study(config);
  auto analyzer = study.analyzer();

  const auto sensitive = sensitive::sensitive_flows(
      study.world(), study.sensitive_catalog(), study.dataset(), study.outcomes());
  const auto eu = analysis::flows_from_region(sensitive, geo::Region::EU28);
  const auto by_origin = analyzer.per_origin_confinement(eu);

  std::vector<util::Bar> bars;
  for (const auto& [origin, confinement] : by_origin) {
    const double leaving = 100.0 - confinement.in_country;
    bars.push_back({origin, leaving,
                    util::fmt_count(confinement.total) + " sensitive flows"});
  }
  std::sort(bars.begin(), bars.end(),
            [](const util::Bar& a, const util::Bar& b) { return a.value > b.value; });
  std::printf("%% of sensitive flows leaving the country:\n%s",
              util::render_bars(bars, 40).c_str());

  // Compare against the same countries' general-traffic leakage.
  const auto general = analyzer.per_origin_confinement(
      analysis::flows_from_region(study.flows(), geo::Region::EU28));
  std::printf("\nleakage delta vs general traffic (sensitive - general, pp):\n");
  for (const auto& [origin, confinement] : by_origin) {
    const auto it = general.find(origin);
    if (it == general.end()) continue;
    std::printf("  %-3s %+6.1f\n", origin.c_str(),
                it->second.in_country - confinement.in_country);
  }

  bench::print_paper_note(
      "Fig. 11: the per-country trend matches the aggregate — countries with\n"
      "small populations and thin IT infrastructure (Cyprus, Greece, Denmark,\n"
      "Romania) see nearly all sensitive flows leave the country, while\n"
      "DE/GB/ES keep substantially more at home; sensitive confinement is\n"
      "similar to general-traffic confinement. Reproduced shape: same ordering\n"
      "and near-zero deltas.");
  return 0;
}
