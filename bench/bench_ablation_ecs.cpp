// Ablation: EDNS-Client-Subnet adoption vs confinement. The paper
// attributes the broadband/mobile confinement gap to third-party
// resolvers hiding the client's location (§7.3, citing the ECS work);
// this sweep shows ECS closing exactly that gap.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  auto base_config = bench::bench_config();
  base_config.world.scale = 0.04;  // several studies below, keep each small
  bench::print_header("Ablation: EDNS-Client-Subnet adoption vs EU28 confinement",
                      base_config);

  util::TextTable table({"ECS adoption", "EU28 share", "in-country share",
                         "3rd-party-resolver users' in-country"});
  for (const double adoption : {0.0, 0.5, 1.0}) {
    core::StudyConfig config = base_config;
    config.resolver.ecs_adoption = adoption;
    core::Study study(config);
    const auto eu_flows = analysis::flows_from_region(study.flows(), geo::Region::EU28);
    auto analyzer = study.analyzer(geoloc::Tool::GroundTruth);
    const auto confinement = analyzer.confinement(eu_flows);

    // Same metric restricted to users on public resolvers.
    std::vector<analysis::Flow> public_resolver_flows;
    const auto& dataset = study.dataset();
    const auto& outcomes = study.outcomes();
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
      if (!classify::is_tracking(outcomes[i].method)) continue;
      const auto& user = study.world().users()[dataset.requests[i].user];
      const auto* info = geo::find_country(user.country);
      if (info == nullptr || !info->eu28 || !user.third_party_resolver) continue;
      public_resolver_flows.push_back(
          {user.country, dataset.requests[i].server_ip, 1});
    }
    const auto public_confinement = analyzer.confinement(public_resolver_flows);

    table.add_row({util::fmt_pct(100.0 * adoption, 0),
                   util::fmt_pct(confinement.in_eu28, 1),
                   util::fmt_pct(confinement.in_country, 1),
                   util::fmt_pct(public_confinement.in_country, 1)});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Design-choice check (§7.3 + ref [59]): broadband users on Google-DNS-\n"
      "style resolvers get mapped from the resolver's anycast site, eroding\n"
      "national confinement; ECS restores the client's subnet to the\n"
      "authoritative side. Expected: the last column climbs steeply with ECS\n"
      "adoption, pulling the aggregate in-country share up with it.");
  return 0;
}
