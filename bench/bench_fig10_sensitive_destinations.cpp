// Fig. 10: destination regions of EU28 users' sensitive tracking flows,
// per category.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Fig. 10: destination regions of sensitive tracking flows (EU28 users)", config);
  core::Study study(config);
  auto analyzer = study.analyzer();

  util::TextTable table(
      {"category", "flows", "EU 28", "N. America", "Rest of Europe", "other"});
  const auto breakdown = sensitive::sensitive_breakdown(
      study.world(), study.sensitive_catalog(), study.dataset(), study.outcomes());

  const auto row_for = [&](const std::string& category) {
    const auto flows = sensitive::sensitive_flows(study.world(), study.sensitive_catalog(),
                                                  study.dataset(), study.outcomes(),
                                                  category);
    const auto eu = analysis::flows_from_region(flows, geo::Region::EU28);
    if (eu.empty()) return;
    const auto regions = analyzer.destination_regions(eu);
    const auto share = [&](geo::Region region) {
      const auto it = regions.share.find(region);
      return it == regions.share.end() ? 0.0 : 100.0 * it->second;
    };
    const double other = 100.0 - share(geo::Region::EU28) -
                         share(geo::Region::NorthAmerica) -
                         share(geo::Region::RestOfEurope);
    table.add_row({category.empty() ? "ALL SENSITIVE" : category,
                   util::fmt_count(eu.size()), util::fmt_pct(share(geo::Region::EU28), 1),
                   util::fmt_pct(share(geo::Region::NorthAmerica), 1),
                   util::fmt_pct(share(geo::Region::RestOfEurope), 1),
                   util::fmt_pct(other < 0 ? 0.0 : other, 1)});
  };
  row_for("");
  for (const auto& category : breakdown.categories) row_for(category.category);
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Fig. 10: aggregated sensitive flows mirror general traffic — EU28 84.9%,\n"
      "N.America 12.07%, Rest of Europe 2.4%. The leakiest categories are porn\n"
      "(44% outside EU28), sexual orientation (36%) and alcohol (33%).\n"
      "Reproduced shape: the ALL row tracks the general confinement, with\n"
      "category-level variation around it.");
  return 0;
}
