// Table 4: mis-geolocation by the MaxMind-like database for the largest
// ad+tracking organizations, measured against the active tool — by IPs
// and by request volume.
#include <map>

#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Table 4: commercial-DB mis-geolocation for the top tracking orgs", config);
  core::Study study(config);
  const auto& world = study.world();
  const auto& geo = study.geo();

  // Request volume per server IP from the classified dataset.
  std::map<net::IpAddress, std::uint64_t> requests_by_ip;
  const auto& dataset = study.dataset();
  const auto& outcomes = study.outcomes();
  std::map<world::OrgId, std::uint64_t> volume_by_org;
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    ++requests_by_ip[dataset.requests[i].server_ip];
    ++volume_by_org[world.domain(dataset.requests[i].domain).org];
  }

  // The three biggest orgs by request volume play Google/Amazon/Facebook.
  std::vector<std::pair<world::OrgId, std::uint64_t>> ranked(volume_by_org.begin(),
                                                             volume_by_org.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  util::TextTable table({"Org (role)", "# IPs", "wrong country", "wrong continent",
                         "# requests", "wrong country", "wrong continent"});
  for (std::size_t r = 0; r < 3 && r < ranked.size(); ++r) {
    const auto& org = world.org(ranked[r].first);
    geoloc::MisgeolocationStats stats;
    for (const auto sid : org.servers) {
      const auto& ip = world.server(sid).ip;
      const auto reference = geo.locate(ip, geoloc::Tool::ActiveIpmap);
      const auto commercial = geo.locate(ip, geoloc::Tool::MaxMindLike);
      const auto continent_ref = geo.continent(ip, geoloc::Tool::ActiveIpmap);
      const auto continent_com = geo.continent(ip, geoloc::Tool::MaxMindLike);
      const auto volume = requests_by_ip.contains(ip) ? requests_by_ip.at(ip) : 0;
      ++stats.ips;
      stats.requests += volume;
      if (commercial != reference) {
        ++stats.wrong_country_ips;
        stats.wrong_country_requests += volume;
      }
      if (continent_ref && continent_com && *continent_ref != *continent_com) {
        ++stats.wrong_continent_ips;
        stats.wrong_continent_requests += volume;
      }
    }
    table.add_row(
        {org.name + " (" + std::string(world::to_string(org.role)) + ")",
         util::fmt_count(stats.ips),
         util::fmt_pct(util::percent(static_cast<double>(stats.wrong_country_ips),
                                     static_cast<double>(stats.ips))),
         util::fmt_pct(util::percent(static_cast<double>(stats.wrong_continent_ips),
                                     static_cast<double>(stats.ips))),
         util::fmt_count(stats.requests),
         util::fmt_pct(util::percent(static_cast<double>(stats.wrong_country_requests),
                                     static_cast<double>(stats.requests))),
         util::fmt_pct(util::percent(static_cast<double>(stats.wrong_continent_requests),
                                     static_cast<double>(stats.requests)))});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Table 4: Google ads+tracking — 57.9% of IPs in the wrong country, 43.1%\n"
      "wrong continent (63%/60% by requests); Amazon 59%/59%; Facebook 45%/30%.\n"
      "Reproduced shape: for globally deployed orgs, the commercial database\n"
      "puts roughly half the IPs (and a comparable request share) in the wrong\n"
      "country, mostly at the US legal home.");
  return 0;
}
