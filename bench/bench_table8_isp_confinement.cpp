// Table 8: sampled tracking-flow statistics across the four ISPs and the
// four snapshot days — volumes and destination-region shares.
#include "bench_common.h"
#include "netflow/profile.h"

int main(int argc, char** argv) {
  using namespace cbwt;
  const auto options = bench::parse_options(argc, argv);
  obs::Registry registry;
  auto config = bench::bench_config(options);
  config.registry = &registry;
  // NetFlow volume is scaled down 1000x from the paper's Table 8; the
  // destination shares are scale-free.
  bench::print_header(
      "Table 8: sampled tracking flows across EU ISPs and over time "
      "(volumes ~1/1000 of the paper's)",
      config);
  core::Study study(config);
  auto analyzer = study.analyzer();
  bench::JsonReport report("table8_isp_confinement", config);

  for (const auto& isp : netflow::default_isps()) {
    util::TextTable table({"snapshot", "sampled tracking flows", "EU28", "N. America",
                           "Rest Europe", "Asia", "Rest World", "HTTPS share"});
    for (const auto& snapshot : netflow::default_snapshots()) {
      const auto run = study.run_isp_snapshot(isp, snapshot);
      const auto regions = analyzer.destination_regions(run.flows);
      const auto share = [&](geo::Region region) {
        const auto it = regions.share.find(region);
        return it == regions.share.end() ? 0.0 : 100.0 * it->second;
      };
      const double rest_world = share(geo::Region::SouthAmerica) +
                                share(geo::Region::Africa) + share(geo::Region::Oceania);
      const std::string key =
          std::string(isp.name) + "/" + std::string(snapshot.label);
      report.metric(key + "/matched_records",
                    static_cast<double>(run.collection.matched_records));
      report.metric(key + "/eu28_pct", share(geo::Region::EU28));
      report.metric(key + "/https_pct",
                    util::percent(static_cast<double>(run.collection.https_records),
                                  static_cast<double>(run.collection.matched_records)));
      table.add_row(
          {std::string(snapshot.label), util::fmt_count(run.collection.matched_records),
           util::fmt_pct(share(geo::Region::EU28), 1),
           util::fmt_pct(share(geo::Region::NorthAmerica), 1),
           util::fmt_pct(share(geo::Region::RestOfEurope), 1),
           util::fmt_pct(share(geo::Region::Asia), 1), util::fmt_pct(rest_world, 1),
           util::fmt_pct(util::percent(
                             static_cast<double>(run.collection.https_records),
                             static_cast<double>(run.collection.matched_records)),
                         1)});
    }
    std::printf("\n[%s]\n%s", std::string(isp.name).c_str(), table.render().c_str());
  }

  bench::print_paper_note(
      "Table 8: EU28 confinement 86.5-88.5% (DE-Broadband), 89.9-92.5%\n"
      "(DE-Mobile), 74.7-77.5% (PL), 89.5-93.1% (HU); N.America takes most of\n"
      "the remainder; volumes 1,057M / 70M / 14M / 43M sampled flows per day,\n"
      "stable across the GDPR implementation date; >83% of matched traffic on\n"
      "443. Reproduced shape: high and stable EU28 confinement, mobile above\n"
      "broadband, PL lowest, N.America the main leak.");
  report.metrics_from(registry);
  report.write(options.json_path);
  bench::write_run_report(study, options.report_path);
  return 0;
}
