// §2.3 design-choice check: why the paper joins ISP *NetFlow* against an
// extension-derived IP list instead of mining hostnames out of sFlow
// payload samples. Hostname visibility collapses on encrypted transports
// (TLS ClientHello only, QUIC hardly at all), while the IP join works
// "irrespective of the protocol used" (§8, Traffic Type row of Table 9).
#include "bench_common.h"
#include "netflow/sflow.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Sect. 2.3: hostname matching on sFlow vs IP matching on NetFlow", config);
  core::Study study(config);
  const auto& world = study.world();

  // The IP join list: the pipeline's completed tracker IPs.
  netflow::TrackerIpIndex trackers;
  for (const auto& ip : study.completed_tracker_ips()) trackers.add(ip);
  // The hostname list: tracking registrable domains from classification.
  std::set<std::string> registrable_set;
  const auto& dataset = study.dataset();
  const auto& outcomes = study.outcomes();
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    registrable_set.insert(world.domain(dataset.requests[i].domain).registrable);
  }
  const std::vector<std::string> registrables(registrable_set.begin(),
                                              registrable_set.end());

  netflow::SflowConfig sflow;
  sflow.scale = 2e-4;
  util::TextTable table({"ISP", "tracking samples", "host-match recall",
                         "IP-match recall", "either", "false host", "false IP"});
  for (const auto& isp : netflow::default_isps()) {
    auto rng = util::Rng(config.world.seed ^ isp.name.size());
    const auto exported = netflow::generate_sflow_snapshot(
        world, study.resolver(), isp, netflow::default_snapshots()[1], sflow, rng);
    const auto comparison =
        netflow::compare_matchers(world, exported, registrables, trackers);
    table.add_row({std::string(isp.name), util::fmt_count(comparison.tracking_samples),
                   util::fmt_pct(100.0 * comparison.host_recall(), 1),
                   util::fmt_pct(100.0 * comparison.ip_recall(), 1),
                   util::fmt_pct(util::percent(
                                     static_cast<double>(comparison.matched_by_either),
                                     static_cast<double>(comparison.tracking_samples)),
                                 1),
                   util::fmt_count(comparison.false_host_matches),
                   util::fmt_count(comparison.false_ip_matches)});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "No numeric table in the paper; §2.3 argues the design: payload-based\n"
      "identification fails when traffic is encrypted (83%+ of tracking flows\n"
      "already were), while the extension-derived IP list joins against bare\n"
      "flow records regardless of protocol. Expected: IP-match recall in the\n"
      "high 90s, host-match recall capped near the handshake-visibility rate\n"
      "(~45% TLS, ~8% QUIC, ~95% plaintext).");
  return 0;
}
