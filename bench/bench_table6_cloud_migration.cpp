// Table 6: per-country improvement from cloud PoP mirroring and from
// full migration to any public-cloud PoP, on top of TLD-level
// redirection.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Table 6: per-country gains from PoP mirroring and cloud migration", config);
  core::Study study(config);

  const auto& localization = study.localization();
  using whatif::Scenario;
  const auto mirroring_over_tld = localization.improvement_per_country(
      Scenario::RedirectTld, Scenario::RedirectTldPlusMirroring);
  const auto migration_over_tld = localization.improvement_per_country(
      Scenario::RedirectTld, Scenario::CloudMigration);
  const auto migration_over_default = localization.improvement_per_country(
      Scenario::Default, Scenario::CloudMigration);
  const auto per_country = localization.evaluate_per_country(Scenario::Default);

  util::TextTable table({"country", "flows", "mirroring over TLD",
                         "migration over TLD", "migration over default"});
  std::vector<std::pair<std::string, double>> ordered(migration_over_default.begin(),
                                                      migration_over_default.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [country, gain] : ordered) {
    const auto mirror_it = mirroring_over_tld.find(country);
    const auto tld_it = migration_over_tld.find(country);
    table.add_row({country, util::fmt_count(per_country.at(country).total),
                   util::fmt_pct(mirror_it == mirroring_over_tld.end() ? 0.0
                                                                       : mirror_it->second),
                   util::fmt_pct(tld_it == migration_over_tld.end() ? 0.0
                                                                    : tld_it->second),
                   util::fmt_pct(gain)});
  }
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Table 6: mirroring over TLD redirection adds little (UK +5.47%, Spain\n"
      "+1.84%, <1.3% for GR/IT/RO, 0 for CY/DK); migration to any cloud PoP is\n"
      "transformative for small countries with cloud presence (Denmark +96.85%,\n"
      "Greece +79.25%, Romania +72.12%) and modest for the big ones (Italy\n"
      "+25.64%, UK +18.20%, Spain +12.15%); Cyprus gains 0 — no cloud has a\n"
      "PoP there. Reproduced shape: the same ordering and the Cyprus zero.");
  return 0;
}
