// google-benchmark microbenchmarks of the pipeline's hot paths: filter
// matching, longest-prefix lookup, DNS server selection, the NetFlow
// tracker-IP join, and the cbwt::runtime sharded stages (classification,
// active-geolocation panels, snapshot generation) swept over pool sizes.
//
// Flags beyond google-benchmark's own: `--threads N` sets the largest
// pool size in the sweep (0 = hardware cores), `--json PATH` is a
// shorthand for --benchmark_out=PATH --benchmark_out_format=json.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "classify/match_cache.h"
#include "core/study.h"
#include "filterlist/generate.h"
#include "filterlist/reference.h"
#include "net/prefix_trie.h"
#include "netflow/collector.h"
#include "netflow/generator.h"
#include "netflow/profile.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace {

using namespace cbwt;

const world::World& micro_world() {
  static const world::World world = [] {
    world::WorldConfig config;
    config.seed = 77;
    config.scale = 0.01;
    return world::build_world(config);
  }();
  return world;
}

void BM_FilterEngineMatch(benchmark::State& state) {
  const auto& world = micro_world();
  util::Rng rng(1);
  const auto lists = filterlist::generate_lists(world, rng);
  filterlist::Engine engine;
  engine.add_list(filterlist::FilterList("easylist", lists.easylist));
  engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));

  // A mixed probe set: listed trackers, chained endpoints, clean hosts.
  std::vector<std::string> urls;
  for (const auto& domain : world.domains()) {
    urls.push_back("https://" + domain.fqdn + "/ads/display/1?pub=x.com&ad_slot=2");
    if (urls.size() >= 512) break;
  }
  std::size_t i = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto& url = urls[i++ % urls.size()];
    filterlist::RequestContext context;
    context.url = url;
    context.host = std::string_view(url).substr(8, url.find('/', 8) - 8);
    context.page_host = "news.example.com";
    matched += engine.match(context).matched ? 1 : 0;
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FilterEngineMatch);

// --- engine variants over one shared corpus --------------------------
// Naive = ReferenceEngine (the pre-optimization matcher, kept as the
// executable spec), Indexed = the token-indexed Engine, Cached = the
// Engine behind the classifier's sharded LRU. Same lists, same probe
// mix, so the three are directly comparable.

struct EngineCorpus {
  filterlist::Engine indexed;
  filterlist::ReferenceEngine naive;
  std::vector<std::string> urls;
  std::vector<std::string> hosts;
};

/// Generic (non-host-anchored) path/substring rules at roughly real
/// easylist's generic share. The world's generated lists are almost
/// entirely ||host^ rules, which the old engine already indexed — the
/// linear-scan pressure real lists put on it comes from rules like
/// these, so the engine comparison must include them.
std::vector<std::string> generic_rules() {
  static constexpr std::string_view kWords[] = {
      "widget", "player", "render", "metrics", "social",   "video",
      "embed",  "chat",   "badge",  "share",   "button",   "icon",
      "menu",   "layer",  "popup",  "modal",   "theme",    "font",
      "style",  "script", "frame",  "slide",   "gallery",  "carousel",
      "signup", "login",  "avatar", "emoji",   "sticker",  "poll",
      "quiz",   "vote"};
  util::Rng rng(9);
  const auto word = [&] { return std::string(kWords[rng.next_below(std::size(kWords))]); };
  std::vector<std::string> rules;
  for (int i = 0; i < 1024; ++i) {
    switch (rng.next_below(4)) {
      case 0: rules.push_back("/" + word() + "/" + word() + "/"); break;
      case 1: rules.push_back("-" + word() + "-" + word() + "."); break;
      case 2: rules.push_back("&" + word() + "_" + word() + "="); break;
      default: rules.push_back("_" + word() + "-" + word() + "."); break;
    }
  }
  for (int i = 0; i < 64; ++i) {
    rules.push_back("@@/" + word() + "/" + word() + "?");
  }
  return rules;
}

const EngineCorpus& engine_corpus() {
  static const EngineCorpus corpus = [] {
    EngineCorpus built;
    const auto& world = micro_world();
    util::Rng rng(1);
    const auto lists = filterlist::generate_lists(world, rng);
    const auto generic = generic_rules();
    built.indexed.add_list(filterlist::FilterList("easylist", lists.easylist));
    built.indexed.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    built.indexed.add_list(filterlist::FilterList("generic", generic));
    built.naive.add_list(filterlist::FilterList("easylist", lists.easylist));
    built.naive.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    built.naive.add_list(filterlist::FilterList("generic", generic));
    // Mixed probes: listed trackers, chained endpoints, clean hosts —
    // alternating URL shapes so hits and misses both stay represented.
    for (const auto& domain : world.domains()) {
      const bool query = built.urls.size() % 2 == 0;
      built.urls.push_back("https://" + domain.fqdn +
                           (query ? "/ads/display/1?pub=x.com&ad_slot=2"
                                  : "/assets/app.js"));
      built.hosts.push_back(domain.fqdn);
      if (built.urls.size() >= 512) break;
    }
    return built;
  }();
  return corpus;
}

filterlist::RequestContext corpus_context(const EngineCorpus& corpus, std::size_t i) {
  filterlist::RequestContext context;
  context.url = corpus.urls[i];
  context.host = corpus.hosts[i];
  context.page_host = "news.example.com";
  context.third_party = true;
  return context;
}

void BM_EngineMatchNaive(benchmark::State& state) {
  const auto& corpus = engine_corpus();
  std::size_t i = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto context = corpus_context(corpus, i++ % corpus.urls.size());
    matched += corpus.naive.match(context).matched ? 1 : 0;
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineMatchNaive);

void BM_EngineMatchIndexed(benchmark::State& state) {
  const auto& corpus = engine_corpus();
  std::size_t i = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto context = corpus_context(corpus, i++ % corpus.urls.size());
    matched += corpus.indexed.match(context).matched ? 1 : 0;
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineMatchIndexed);

void BM_EngineMatchCached(benchmark::State& state) {
  const auto& corpus = engine_corpus();
  classify::MatchCache cache(/*capacity=*/4096, /*shards=*/8);
  std::size_t i = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto context = corpus_context(corpus, i++ % corpus.urls.size());
    std::uint64_t key = util::fnv1a(context.url);
    key = util::mix64(key ^ util::fnv1a(context.page_host));
    filterlist::MatchResult hit;
    if (const auto cached = cache.lookup(key)) {
      hit = *cached;
    } else {
      hit = corpus.indexed.match(context);
      cache.insert(key, hit);
    }
    matched += hit.matched ? 1 : 0;
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineMatchCached);

void BM_PrefixTrieLookup(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  util::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto base = net::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    trie.insert(net::IpPrefix(base, static_cast<unsigned>(rng.next_in(8, 28))), i);
  }
  std::size_t hits = 0;
  for (auto _ : state) {
    const auto probe = net::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    hits += trie.lookup(probe) != nullptr ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_DnsResolve(benchmark::State& state) {
  const auto& world = micro_world();
  const dns::Resolver resolver(world);
  util::Rng rng(3);
  const auto tracking = world.tracking_domain_ids();
  const auto origin = resolver.origin_for("DE", false);
  std::size_t i = 0;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const auto answer = resolver.resolve(tracking[i++ % tracking.size()], origin, rng);
    sum += answer.server;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DnsResolve);

void BM_NetflowJoin(benchmark::State& state) {
  const auto& world = micro_world();
  const dns::Resolver resolver(world);
  util::Rng rng(4);
  netflow::GeneratorConfig config;
  config.scale = 1e-6;
  const auto exported =
      netflow::generate_snapshot(world, resolver, netflow::default_isps()[0],
                                 netflow::default_snapshots()[0], config, rng);
  netflow::TrackerIpIndex index;
  for (const auto id : world.tracking_domain_ids()) {
    for (const auto sid : world.domain(id).servers) index.add(world.server(sid).ip);
  }
  for (auto _ : state) {
    const auto result = netflow::collect(exported.records, index,
                                         netflow::default_isps()[0]);
    benchmark::DoNotOptimize(result.matched_records);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(exported.records.size()));
}
BENCHMARK(BM_NetflowJoin);

void BM_ActiveGeolocate(benchmark::State& state) {
  const auto& world = micro_world();
  util::Rng mesh_rng(5);
  const geoloc::ProbeMesh mesh({}, mesh_rng);
  const geoloc::ActiveGeolocator locator(world, mesh);
  util::Rng rng(6);
  std::size_t i = 0;
  std::size_t non_empty = 0;
  for (auto _ : state) {
    const auto& server = world.servers()[i++ % world.servers().size()];
    non_empty += locator.locate(server.ip, rng).country.empty() ? 0 : 1;
  }
  benchmark::DoNotOptimize(non_empty);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActiveGeolocate);

// --- cbwt::runtime sharded stages -----------------------------------
// Each benchmark takes the pool size as its argument (1 = the serial
// inline path, no pool object at all) and produces bit-identical results
// at every size; the sweep measures the speedup alone.

/// nullptr for one thread: the serial path must not even construct a pool.
runtime::ThreadPool* make_pool(std::int64_t threads,
                               std::unique_ptr<runtime::ThreadPool>& owner) {
  if (threads <= 1) return nullptr;
  owner = std::make_unique<runtime::ThreadPool>(static_cast<unsigned>(threads));
  return owner.get();
}

core::Study& micro_study() {
  static core::Study study([] {
    core::StudyConfig config;
    config.world.seed = 77;
    config.world.scale = 0.05;
    return config;
  }());
  return study;
}

void BM_ClassifyRun(benchmark::State& state) {
  auto& study = micro_study();
  const auto& dataset = study.dataset();
  const auto& classifier = study.classifier();
  std::unique_ptr<runtime::ThreadPool> owner;
  runtime::ThreadPool* pool = make_pool(state.range(0), owner);
  for (auto _ : state) {
    auto outcomes = classifier.run(dataset, pool);
    benchmark::DoNotOptimize(outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset.requests.size()));
}

void BM_GeolocPanel(benchmark::State& state) {
  const auto& world = micro_world();
  util::Rng mesh_rng(5);
  const geoloc::ProbeMesh mesh({}, mesh_rng);
  const geoloc::ActiveGeolocator locator(world, mesh);
  std::vector<net::IpAddress> ips;
  for (const auto& server : world.servers()) {
    ips.push_back(server.ip);
    if (ips.size() >= 2048) break;
  }
  std::unique_ptr<runtime::ThreadPool> owner;
  runtime::ThreadPool* pool = make_pool(state.range(0), owner);
  for (auto _ : state) {
    // The GeoService::prefetch hot loop without its cache: one derived
    // RNG per IP, one probe panel per IP.
    auto countries = runtime::parallel_map<std::string>(
        pool, ips.size(), {.min_shard_items = 8}, [&](std::size_t i) {
          auto rng = util::Rng(util::mix64(0xAC7173ULL ^ ips[i].hash()));
          return locator.locate(ips[i], rng).country;
        });
    benchmark::DoNotOptimize(countries.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ips.size()));
}

void BM_SnapshotSharded(benchmark::State& state) {
  const auto& world = micro_world();
  const dns::Resolver resolver(world);
  netflow::GeneratorConfig config;
  config.scale = 1e-4;
  std::unique_ptr<runtime::ThreadPool> owner;
  runtime::ThreadPool* pool = make_pool(state.range(0), owner);
  std::int64_t records = 0;
  for (auto _ : state) {
    const auto exported = netflow::generate_snapshot_sharded(
        world, resolver, netflow::default_isps()[0], netflow::default_snapshots()[0],
        config, /*seed=*/42, pool);
    records = static_cast<std::int64_t>(exported.records.size());
    benchmark::DoNotOptimize(exported.records.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * records);
}

void register_runtime_benchmarks(unsigned max_threads) {
  for (auto&& [name, fn] :
       {std::pair{"BM_ClassifyRun", &BM_ClassifyRun},
        std::pair{"BM_GeolocPanel", &BM_GeolocPanel},
        std::pair{"BM_SnapshotSharded", &BM_SnapshotSharded}}) {
    auto* bench = benchmark::RegisterBenchmark(name, fn);
    bench->Unit(benchmark::kMillisecond)->Arg(1);
    if (max_threads >= 2) bench->Arg(2);
    if (max_threads > 2) bench->Arg(static_cast<std::int64_t>(max_threads));
  }
}

}  // namespace

int main(int argc, char** argv) {
  unsigned max_threads = static_cast<unsigned>(
      std::strtoul(std::getenv("CBWT_THREADS") ? std::getenv("CBWT_THREADS") : "0",
                   nullptr, 10));
  std::vector<std::string> owned;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      max_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      owned.push_back(std::string("--benchmark_out=") + argv[++i]);
      owned.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(argv[i]);
    }
  }
  for (auto& flag : owned) args.push_back(flag.data());
  if (max_threads == 0) max_threads = cbwt::runtime::ThreadPool::hardware_threads();
  register_runtime_benchmarks(max_threads);

  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
