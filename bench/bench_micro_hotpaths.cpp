// google-benchmark microbenchmarks of the pipeline's hot paths: filter
// matching, longest-prefix lookup, DNS server selection, and the
// NetFlow tracker-IP join.
#include <benchmark/benchmark.h>

#include "core/study.h"
#include "filterlist/generate.h"
#include "net/prefix_trie.h"
#include "netflow/collector.h"
#include "netflow/generator.h"
#include "netflow/profile.h"

namespace {

using namespace cbwt;

const world::World& micro_world() {
  static const world::World world = [] {
    world::WorldConfig config;
    config.seed = 77;
    config.scale = 0.01;
    return world::build_world(config);
  }();
  return world;
}

void BM_FilterEngineMatch(benchmark::State& state) {
  const auto& world = micro_world();
  util::Rng rng(1);
  const auto lists = filterlist::generate_lists(world, rng);
  filterlist::Engine engine;
  engine.add_list(filterlist::FilterList("easylist", lists.easylist));
  engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));

  // A mixed probe set: listed trackers, chained endpoints, clean hosts.
  std::vector<std::string> urls;
  for (const auto& domain : world.domains()) {
    urls.push_back("https://" + domain.fqdn + "/ads/display/1?pub=x.com&ad_slot=2");
    if (urls.size() >= 512) break;
  }
  std::size_t i = 0;
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto& url = urls[i++ % urls.size()];
    filterlist::RequestContext context;
    context.url = url;
    context.host = std::string_view(url).substr(8, url.find('/', 8) - 8);
    context.page_host = "news.example.com";
    matched += engine.match(context).matched ? 1 : 0;
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FilterEngineMatch);

void BM_PrefixTrieLookup(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  util::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto base = net::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    trie.insert(net::IpPrefix(base, static_cast<unsigned>(rng.next_in(8, 28))), i);
  }
  std::size_t hits = 0;
  for (auto _ : state) {
    const auto probe = net::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    hits += trie.lookup(probe) != nullptr ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_DnsResolve(benchmark::State& state) {
  const auto& world = micro_world();
  const dns::Resolver resolver(world);
  util::Rng rng(3);
  const auto tracking = world.tracking_domain_ids();
  const auto origin = resolver.origin_for("DE", false);
  std::size_t i = 0;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const auto answer = resolver.resolve(tracking[i++ % tracking.size()], origin, rng);
    sum += answer.server;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DnsResolve);

void BM_NetflowJoin(benchmark::State& state) {
  const auto& world = micro_world();
  const dns::Resolver resolver(world);
  util::Rng rng(4);
  netflow::GeneratorConfig config;
  config.scale = 1e-6;
  const auto exported =
      netflow::generate_snapshot(world, resolver, netflow::default_isps()[0],
                                 netflow::default_snapshots()[0], config, rng);
  netflow::TrackerIpIndex index;
  for (const auto id : world.tracking_domain_ids()) {
    for (const auto sid : world.domain(id).servers) index.add(world.server(sid).ip);
  }
  for (auto _ : state) {
    const auto result = netflow::collect(exported.records, index,
                                         netflow::default_isps()[0]);
    benchmark::DoNotOptimize(result.matched_records);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(exported.records.size()));
}
BENCHMARK(BM_NetflowJoin);

void BM_ActiveGeolocate(benchmark::State& state) {
  const auto& world = micro_world();
  util::Rng mesh_rng(5);
  const geoloc::ProbeMesh mesh({}, mesh_rng);
  const geoloc::ActiveGeolocator locator(world, mesh);
  util::Rng rng(6);
  std::size_t i = 0;
  std::size_t non_empty = 0;
  for (auto _ : state) {
    const auto& server = world.servers()[i++ % world.servers().size()];
    non_empty += locator.locate(server.ip, rng).country.empty() ? 0 : 1;
  }
  benchmark::DoNotOptimize(non_empty);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActiveGeolocate);

}  // namespace

BENCHMARK_MAIN();
