// Out-of-core join scaling curve behind Table 8: one store-backed
// ISP-day run per NetFlow scale, so BENCH_join.json records how spill
// volume and wall time grow with snapshot size while peak RSS stays
// flat. The in-memory path materializes the snapshot (RSS tracks the
// input); the radix-partitioned join must not — `--max-rss-mb` turns
// that claim into an exit status, the same self-check the CI join-smoke
// job runs at 10x the example scale.
//
//   bench_join_scale --store-dir DIR [--threads N] [--json PATH]
//                    [--report PATH] [--max-rss-mb N]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "netflow/profile.h"
#include "obs/proc_stats.h"

int main(int argc, char** argv) {
  using namespace cbwt;

  std::string store_dir = "bench-join-store";
  std::string json_path;
  std::string report_path;
  unsigned threads = static_cast<unsigned>(bench::env_u64("CBWT_THREADS", 1));
  std::uint64_t max_rss_mb = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--store-dir" && value != nullptr) {
      store_dir = value;
      ++i;
    } else if (arg == "--threads" && value != nullptr) {
      threads = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--json" && value != nullptr) {
      json_path = value;
      ++i;
    } else if (arg == "--report" && value != nullptr) {
      report_path = value;
      ++i;
    } else if (arg == "--max-rss-mb" && value != nullptr) {
      max_rss_mb = std::strtoull(value, nullptr, 10);
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: bench_join_scale --store-dir DIR [--threads N] "
                   "[--json PATH] [--report PATH] [--max-rss-mb N]\n");
      return 2;
    }
  }

  // The curve: snapshot size sweeps 40x while everything else is pinned
  // (DE-Broadband day 267, world scale as in examples/store_scale_run).
  // The largest point matches the CI join-smoke scale, 10x the
  // in-memory examples.
  constexpr double kNetflowScales[] = {2.5e-4, 1e-3, 4e-3, 1e-2};
  constexpr double kWorldScale = 0.01;

  core::StudyConfig base;
  base.world.seed = bench::env_u64("CBWT_SEED", 20180901);
  base.world.scale = kWorldScale;
  base.threads = threads;
  bench::print_header(
      "Out-of-core join scaling (Table 8 substrate): spill volume and wall "
      "time vs snapshot size at flat RSS",
      base);
  bench::JsonReport report("join_scale", base);

  const auto& isp = netflow::default_isps().front();
  const netflow::Snapshot snapshot{267, "day", 1.0};
  util::TextTable table({"netflow scale", "exported records", "matched flows",
                         "spill bytes", "partitions", "wall ms", "gen ms", "spill ms",
                         "probe ms"});
  for (std::size_t i = 0; i < std::size(kNetflowScales); ++i) {
    const double netflow_scale = kNetflowScales[i];
    obs::Registry registry;
    auto config = base;
    config.netflow.scale = netflow_scale;
    config.storage.mode = store::Mode::StoreBacked;
    config.storage.directory = store_dir + "/scale_" + std::to_string(i);
    config.registry = &registry;
    const auto start = std::chrono::steady_clock::now();
    core::Study study(config);
    const auto run = study.run_isp_snapshot(isp, snapshot);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    const std::uint64_t spill_bytes =
        registry.counter_value("cbwt_netflow_join_spill_bytes_total");
    const std::uint64_t partitions =
        registry.counter_value("cbwt_netflow_join_partitions_total");
    // Phase split of the wall column, from the stage spans this scale
    // point's private registry recorded: generation (the snapshot
    // write), pass 1 (parallel spill) and pass 2 (probe). Summed in
    // case a stage ran more than once.
    double generate_ms = 0.0;
    double spill_ms = 0.0;
    double probe_ms = 0.0;
    for (const auto& span : registry.spans()) {
      if (span.name == "netflow/generate") generate_ms += span.wall_seconds * 1e3;
      if (span.name == "netflow/join/partition") spill_ms += span.wall_seconds * 1e3;
      if (span.name == "netflow/join/probe") probe_ms += span.wall_seconds * 1e3;
    }
    char label[32];
    std::snprintf(label, sizeof label, "%g", netflow_scale);
    const std::string prefix = std::string("netflow_scale_") + label;
    report.metric(prefix + "/exported_records",
                  static_cast<double>(run.exported_records));
    report.metric(prefix + "/matched_records",
                  static_cast<double>(run.collection.matched_records));
    report.metric(prefix + "/spill_bytes", static_cast<double>(spill_bytes));
    report.metric(prefix + "/spill_shards",
                  static_cast<double>(registry.counter_value(
                      "cbwt_netflow_join_spill_shards_total")));
    report.metric(prefix + "/probe_records",
                  static_cast<double>(registry.counter_value(
                      "cbwt_netflow_join_probe_records_total")));
    report.metric(prefix + "/wall_ms", wall_ms);
    report.metric(prefix + "/generate_ms", generate_ms);
    report.metric(prefix + "/spill_ms", spill_ms);
    report.metric(prefix + "/probe_ms", probe_ms);
    table.add_row({label, util::fmt_count(run.exported_records),
                   util::fmt_count(run.collection.matched_records),
                   util::fmt_count(spill_bytes), util::fmt_count(partitions),
                   std::to_string(static_cast<std::uint64_t>(wall_ms)),
                   std::to_string(static_cast<std::uint64_t>(generate_ms)),
                   std::to_string(static_cast<std::uint64_t>(spill_ms)),
                   std::to_string(static_cast<std::uint64_t>(probe_ms))});
    // The largest point (the CI join-smoke scale) is the one whose full
    // run report — spans plus every counter — is worth keeping.
    if (i + 1 == std::size(kNetflowScales)) {
      bench::write_run_report(study, report_path);
    }
  }
  std::printf("\n%s", table.render().c_str());

  // Peak resident set across the whole sweep: the out-of-core claim is
  // that this stays flat while spill bytes grow 40x.
  const std::uint64_t rss_kb = obs::vm_hwm_kb();
  std::printf("\npeak RSS across sweep: %" PRIu64 " kB\n", rss_kb);
  report.metric("peak_rss_kb", static_cast<double>(rss_kb));
  bench::print_paper_note(
      "Table 8 rests on joining one day of sampled ISP NetFlow (up to\n"
      "1,057M flows for DE-Broadband) against the tracker-IP set — far\n"
      "past RAM at the paper's scale. The radix-partitioned join streams\n"
      "the snapshot through fixed-size compressed pages, so spill volume\n"
      "tracks input size while peak RSS stays bounded by partition count\n"
      "and chunk size.");
  report.write(json_path);

  if (max_rss_mb > 0 && rss_kb > max_rss_mb * 1024) {
    std::fprintf(stderr,
                 "bench_join_scale: peak RSS %" PRIu64 " kB exceeds cap %" PRIu64
                 " MB\n",
                 rss_kb, max_rss_mb);
    return 1;
  }
  return 0;
}
