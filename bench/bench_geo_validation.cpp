// §3.4 validation: active geolocation checked against the published
// server locations of the public clouds (the paper used AWS's and
// Azure's published ranges: 99.58% country, 100% continent).
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header(
      "Sect. 3.4: active-geolocation validation against cloud ground truth", config);
  core::Study study(config);
  const auto& world = study.world();
  const auto& geo = study.geo();

  util::TextTable table({"cloud", "# servers", "country acc.", "continent acc."});
  std::uint64_t total = 0;
  std::uint64_t country_ok = 0;
  std::uint64_t continent_ok = 0;
  for (const auto& cloud : world.clouds()) {
    std::uint64_t cloud_total = 0;
    std::uint64_t cloud_country = 0;
    std::uint64_t cloud_continent = 0;
    for (const auto& server : world.servers()) {
      const auto& dc = world.datacenter(server.datacenter);
      if (dc.cloud != cloud.id) continue;
      ++cloud_total;
      const auto estimate = geo.locate(server.ip, geoloc::Tool::ActiveIpmap);
      if (estimate == dc.country) ++cloud_country;
      const auto* truth = geo::find_country(dc.country);
      const auto* guess = geo::find_country(estimate);
      if (truth != nullptr && guess != nullptr && truth->continent == guess->continent) {
        ++cloud_continent;
      }
    }
    if (cloud_total == 0) continue;
    total += cloud_total;
    country_ok += cloud_country;
    continent_ok += cloud_continent;
    table.add_row({cloud.name, util::fmt_count(cloud_total),
                   util::fmt_pct(util::percent(static_cast<double>(cloud_country),
                                               static_cast<double>(cloud_total))),
                   util::fmt_pct(util::percent(static_cast<double>(cloud_continent),
                                               static_cast<double>(cloud_total)))});
  }
  table.add_row({"ALL", util::fmt_count(total),
                 util::fmt_pct(util::percent(static_cast<double>(country_ok),
                                             static_cast<double>(total))),
                 util::fmt_pct(util::percent(static_cast<double>(continent_ok),
                                             static_cast<double>(total)))});
  std::printf("%s", table.render().c_str());

  bench::print_paper_note(
      "Sect. 3.4: against the AWS/Azure published locations, RIPE IPmap was\n"
      "99.58% accurate at country level and 100% at continent level.\n"
      "Reproduced shape: near-perfect continent accuracy and high country\n"
      "accuracy (residual errors sit at tight European borders).");
  return 0;
}
