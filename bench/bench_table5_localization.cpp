// Table 5: potential localization improvements for EU28 tracking flows —
// DNS redirection (FQDN / TLD), cloud PoP mirroring, and the combination.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Table 5: localization what-if scenarios (EU28 flows)", config);
  core::Study study(config);

  const auto& localization = study.localization();
  using whatif::Scenario;
  const Scenario scenarios[] = {Scenario::Default, Scenario::RedirectFqdn,
                                Scenario::RedirectTld, Scenario::PopMirroring,
                                Scenario::RedirectTldPlusMirroring};

  const auto base = localization.evaluate(Scenario::Default);
  util::TextTable table({"scenario", "in-country", "in-continent", "improvement (ctry)",
                         "improvement (cont)"});
  for (const Scenario scenario : scenarios) {
    const auto result = localization.evaluate(scenario);
    table.add_row({std::string(whatif::to_string(scenario)),
                   util::fmt_pct(result.in_country_pct),
                   util::fmt_pct(result.in_continent_pct),
                   scenario == Scenario::Default
                       ? "-"
                       : util::fmt_pct(result.in_country_pct - base.in_country_pct),
                   scenario == Scenario::Default
                       ? "-"
                       : util::fmt_pct(result.in_continent_pct - base.in_continent_pct)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(%zu EU28 tracking flows evaluated)\n", localization.flow_count());

  bench::print_paper_note(
      "Table 5 (1,824,873 EU28 flows): Default 27.60% country / 88.00% continent;\n"
      "FQDN redirection 52.15%/93.53% (+24.55/+5.53); TLD redirection\n"
      "66.13%/98.33% (+38.53/+10.33); PoP mirroring 30.79%/92.09% (+3.19/+4.09);\n"
      "TLD + mirroring 68.12%/99.20% (+40.52/+11.20). Reproduced shape: TLD\n"
      "redirection is the big national-level lever; mirroring mainly helps at\n"
      "continent level; the combination is best.");
  return 0;
}
