// Fig. 4: how many registrable domains each tracking IP serves, weighted
// by requests — the "are tracker IPs dedicated?" check.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 4: registrable domains served per tracking IP", config);
  core::Study study(config);

  const auto& store = study.pdns_store();
  const auto& ips = study.completed_tracker_ips();

  std::map<std::size_t, std::uint64_t> ip_histogram;      // #domains -> #IPs
  std::map<std::size_t, std::uint64_t> request_histogram; // #domains -> observations
  std::uint64_t total_observations = 0;
  for (const auto& ip : ips) {
    const auto domains = store.registrable_count(ip);
    if (domains == 0) continue;
    const auto observations = store.observations_of(ip);
    ++ip_histogram[domains];
    request_histogram[domains] += observations;
    total_observations += observations;
  }

  util::TextTable table({"# TLDs on IP", "# IPs", "share of IPs", "share of requests"});
  std::uint64_t total_ips = 0;
  for (const auto& [domains, count] : ip_histogram) total_ips += count;
  std::uint64_t multi_domain_ips = 0;
  std::uint64_t single_domain_requests = 0;
  for (const auto& [domains, count] : ip_histogram) {
    const auto requests = request_histogram[domains];
    table.add_row({std::to_string(domains), util::fmt_count(count),
                   util::fmt_pct(util::percent(static_cast<double>(count),
                                               static_cast<double>(total_ips))),
                   util::fmt_pct(util::percent(static_cast<double>(requests),
                                               static_cast<double>(total_observations)))});
    if (domains > 1) multi_domain_ips += count;
    if (domains == 1) single_domain_requests = requests;
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nIPs serving one TLD handle %.1f%% of observed requests; "
              "%.2f%% of IPs serve more than one TLD\n",
              util::percent(static_cast<double>(single_domain_requests),
                            static_cast<double>(total_observations)),
              util::percent(static_cast<double>(multi_domain_ips),
                            static_cast<double>(total_ips)));

  bench::print_paper_note(
      "Fig. 4: ~85% of requests are served by IPs dedicated to a single TLD;\n"
      "fewer than 2% of IPs serve more than one domain (RTB latency pressure\n"
      "keeps tracking IPs dedicated). Reproduced shape: single-TLD IPs dominate\n"
      "the request mass, multi-TLD IPs are a small minority.");
  return 0;
}
