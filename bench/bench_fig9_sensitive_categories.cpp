// Fig. 9: the twelve GDPR-sensitive categories and the share of tracking
// flows each one attracts.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Fig. 9: tracking flows on GDPR-sensitive categories", config);
  core::Study study(config);

  const auto breakdown = sensitive::sensitive_breakdown(
      study.world(), study.sensitive_catalog(), study.dataset(), study.outcomes());

  std::vector<util::Bar> bars;
  for (const auto& category : breakdown.categories) {
    bars.push_back({category.category,
                    util::percent(static_cast<double>(category.flows),
                                  static_cast<double>(breakdown.sensitive_flows)),
                    std::to_string(category.publishers) + " domains"});
  }
  std::printf("%s", util::render_bars(bars, 40).c_str());

  std::printf("\nsensitive publishers detected: %zu of %s inspected\n",
              study.sensitive_catalog().detected.size(),
              util::fmt_count(study.sensitive_catalog().inspected_domains).c_str());
  std::printf("sensitive tracking flows: %s of %s total (%.2f%%)\n",
              util::fmt_count(breakdown.sensitive_flows).c_str(),
              util::fmt_count(breakdown.tracking_flows).c_str(),
              util::percent(static_cast<double>(breakdown.sensitive_flows),
                            static_cast<double>(breakdown.tracking_flows)));

  bench::print_paper_note(
      "Fig. 9: 1,067 sensitive domains out of 5,698 inspected; 127K flows =\n"
      "2.89% of all tracking flows. Health leads at 38%, gambling 22%, sexual\n"
      "orientation ~11%, pregnancy ~11%, politics 9%, porn 7%, the rest <3%\n"
      "each. Reproduced shape: ~3% sensitive share with health and gambling on\n"
      "top in that order.");
  return 0;
}
