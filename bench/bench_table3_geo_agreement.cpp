// Table 3: pairwise country/continent agreement across the three
// geolocation tools over the tracker IP set.
#include "bench_common.h"

int main() {
  using namespace cbwt;
  const auto config = bench::bench_config();
  bench::print_header("Table 3: pairwise agreement across geolocation tools", config);
  core::Study study(config);

  const auto& ips = study.completed_tracker_ips();
  const auto& geo = study.geo();
  using geoloc::Tool;
  const Tool tools[] = {Tool::IpApiLike, Tool::MaxMindLike, Tool::ActiveIpmap};

  util::TextTable table({"Service", "ip-api (ctry/cont)", "MaxMind (ctry/cont)",
                         "RIPE IPmap (ctry/cont)"});
  for (const Tool a : tools) {
    std::vector<std::string> row{std::string(geoloc::to_string(a))};
    for (const Tool b : tools) {
      if (a == b) {
        row.push_back("100% / 100%");
        continue;
      }
      const auto agreement = geoloc::pairwise_agreement(geo, ips, a, b);
      row.push_back(util::fmt_pct(100.0 * agreement.country) + " / " +
                    util::fmt_pct(100.0 * agreement.continent));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(%zu tracker IPs compared)\n", ips.size());

  bench::print_paper_note(
      "Table 3: ip-api vs MaxMind agree on 96.13% of countries and 99.15% of\n"
      "continents; each agrees with RIPE IPmap on only ~53% of countries and\n"
      "~65% of continents. Reproduced shape: the commercial pair is highly\n"
      "consistent with itself and much less consistent with the active tool.");
  return 0;
}
