# Empty dependencies file for export_artifacts.
# This may be replaced when dependencies are built.
