file(REMOVE_RECURSE
  "CMakeFiles/isp_monitor.dir/isp_monitor.cpp.o"
  "CMakeFiles/isp_monitor.dir/isp_monitor.cpp.o.d"
  "isp_monitor"
  "isp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
