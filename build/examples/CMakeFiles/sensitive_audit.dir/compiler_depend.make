# Empty compiler generated dependencies file for sensitive_audit.
# This may be replaced when dependencies are built.
