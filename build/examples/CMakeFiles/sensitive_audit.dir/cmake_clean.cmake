file(REMOVE_RECURSE
  "CMakeFiles/sensitive_audit.dir/sensitive_audit.cpp.o"
  "CMakeFiles/sensitive_audit.dir/sensitive_audit.cpp.o.d"
  "sensitive_audit"
  "sensitive_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitive_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
