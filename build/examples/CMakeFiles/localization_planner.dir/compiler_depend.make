# Empty compiler generated dependencies file for localization_planner.
# This may be replaced when dependencies are built.
