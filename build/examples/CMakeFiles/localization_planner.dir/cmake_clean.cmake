file(REMOVE_RECURSE
  "CMakeFiles/localization_planner.dir/localization_planner.cpp.o"
  "CMakeFiles/localization_planner.dir/localization_planner.cpp.o.d"
  "localization_planner"
  "localization_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localization_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
