file(REMOVE_RECURSE
  "CMakeFiles/bench_geo_validation.dir/bench_geo_validation.cpp.o"
  "CMakeFiles/bench_geo_validation.dir/bench_geo_validation.cpp.o.d"
  "bench_geo_validation"
  "bench_geo_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
