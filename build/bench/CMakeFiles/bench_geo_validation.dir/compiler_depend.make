# Empty compiler generated dependencies file for bench_geo_validation.
# This may be replaced when dependencies are built.
