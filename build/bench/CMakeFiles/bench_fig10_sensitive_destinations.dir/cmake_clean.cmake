file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sensitive_destinations.dir/bench_fig10_sensitive_destinations.cpp.o"
  "CMakeFiles/bench_fig10_sensitive_destinations.dir/bench_fig10_sensitive_destinations.cpp.o.d"
  "bench_fig10_sensitive_destinations"
  "bench_fig10_sensitive_destinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sensitive_destinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
