# Empty compiler generated dependencies file for bench_table4_maxmind_errors.
# This may be replaced when dependencies are built.
