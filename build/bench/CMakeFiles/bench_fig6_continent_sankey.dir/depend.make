# Empty dependencies file for bench_fig6_continent_sankey.
# This may be replaced when dependencies are built.
