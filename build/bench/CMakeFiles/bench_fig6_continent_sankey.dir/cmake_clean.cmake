file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_continent_sankey.dir/bench_fig6_continent_sankey.cpp.o"
  "CMakeFiles/bench_fig6_continent_sankey.dir/bench_fig6_continent_sankey.cpp.o.d"
  "bench_fig6_continent_sankey"
  "bench_fig6_continent_sankey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_continent_sankey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
