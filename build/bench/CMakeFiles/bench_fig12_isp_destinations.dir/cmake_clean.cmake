file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_isp_destinations.dir/bench_fig12_isp_destinations.cpp.o"
  "CMakeFiles/bench_fig12_isp_destinations.dir/bench_fig12_isp_destinations.cpp.o.d"
  "bench_fig12_isp_destinations"
  "bench_fig12_isp_destinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_isp_destinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
