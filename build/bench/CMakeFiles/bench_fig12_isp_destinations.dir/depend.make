# Empty dependencies file for bench_fig12_isp_destinations.
# This may be replaced when dependencies are built.
