# Empty compiler generated dependencies file for bench_table7_isp_profiles.
# This may be replaced when dependencies are built.
