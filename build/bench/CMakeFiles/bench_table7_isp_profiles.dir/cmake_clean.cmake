file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_isp_profiles.dir/bench_table7_isp_profiles.cpp.o"
  "CMakeFiles/bench_table7_isp_profiles.dir/bench_table7_isp_profiles.cpp.o.d"
  "bench_table7_isp_profiles"
  "bench_table7_isp_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_isp_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
