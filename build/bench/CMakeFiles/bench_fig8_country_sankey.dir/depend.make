# Empty dependencies file for bench_fig8_country_sankey.
# This may be replaced when dependencies are built.
