file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_country_sankey.dir/bench_fig8_country_sankey.cpp.o"
  "CMakeFiles/bench_fig8_country_sankey.dir/bench_fig8_country_sankey.cpp.o.d"
  "bench_fig8_country_sankey"
  "bench_fig8_country_sankey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_country_sankey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
