# Empty dependencies file for bench_table5_localization.
# This may be replaced when dependencies are built.
