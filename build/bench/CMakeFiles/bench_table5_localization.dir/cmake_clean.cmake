file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_localization.dir/bench_table5_localization.cpp.o"
  "CMakeFiles/bench_table5_localization.dir/bench_table5_localization.cpp.o.d"
  "bench_table5_localization"
  "bench_table5_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
