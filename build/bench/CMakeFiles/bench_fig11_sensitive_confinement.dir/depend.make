# Empty dependencies file for bench_fig11_sensitive_confinement.
# This may be replaced when dependencies are built.
