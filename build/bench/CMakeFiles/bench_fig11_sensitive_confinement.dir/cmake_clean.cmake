file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sensitive_confinement.dir/bench_fig11_sensitive_confinement.cpp.o"
  "CMakeFiles/bench_fig11_sensitive_confinement.dir/bench_fig11_sensitive_confinement.cpp.o.d"
  "bench_fig11_sensitive_confinement"
  "bench_fig11_sensitive_confinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sensitive_confinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
