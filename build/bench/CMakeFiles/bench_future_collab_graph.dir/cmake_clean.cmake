file(REMOVE_RECURSE
  "CMakeFiles/bench_future_collab_graph.dir/bench_future_collab_graph.cpp.o"
  "CMakeFiles/bench_future_collab_graph.dir/bench_future_collab_graph.cpp.o.d"
  "bench_future_collab_graph"
  "bench_future_collab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_collab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
