# Empty dependencies file for bench_ablation_ecs.
# This may be replaced when dependencies are built.
