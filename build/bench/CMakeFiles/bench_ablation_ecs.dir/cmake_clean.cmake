file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ecs.dir/bench_ablation_ecs.cpp.o"
  "CMakeFiles/bench_ablation_ecs.dir/bench_ablation_ecs.cpp.o.d"
  "bench_ablation_ecs"
  "bench_ablation_ecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
