file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_isp_confinement.dir/bench_table8_isp_confinement.cpp.o"
  "CMakeFiles/bench_table8_isp_confinement.dir/bench_table8_isp_confinement.cpp.o.d"
  "bench_table8_isp_confinement"
  "bench_table8_isp_confinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_isp_confinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
