# Empty compiler generated dependencies file for bench_table8_isp_confinement.
# This may be replaced when dependencies are built.
