# Empty dependencies file for bench_fig4_domains_per_ip.
# This may be replaced when dependencies are built.
