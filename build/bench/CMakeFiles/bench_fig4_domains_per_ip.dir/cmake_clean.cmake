file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_domains_per_ip.dir/bench_fig4_domains_per_ip.cpp.o"
  "CMakeFiles/bench_fig4_domains_per_ip.dir/bench_fig4_domains_per_ip.cpp.o.d"
  "bench_fig4_domains_per_ip"
  "bench_fig4_domains_per_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_domains_per_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
