# Empty dependencies file for bench_fig5_multidomain_ips.
# This may be replaced when dependencies are built.
