# Empty dependencies file for bench_sflow_vs_netflow.
# This may be replaced when dependencies are built.
