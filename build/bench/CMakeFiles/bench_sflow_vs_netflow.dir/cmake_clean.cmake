file(REMOVE_RECURSE
  "CMakeFiles/bench_sflow_vs_netflow.dir/bench_sflow_vs_netflow.cpp.o"
  "CMakeFiles/bench_sflow_vs_netflow.dir/bench_sflow_vs_netflow.cpp.o.d"
  "bench_sflow_vs_netflow"
  "bench_sflow_vs_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sflow_vs_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
