# Empty compiler generated dependencies file for bench_fig7_eu28_geolocation.
# This may be replaced when dependencies are built.
