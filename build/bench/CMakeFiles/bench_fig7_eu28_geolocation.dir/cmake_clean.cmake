file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_eu28_geolocation.dir/bench_fig7_eu28_geolocation.cpp.o"
  "CMakeFiles/bench_fig7_eu28_geolocation.dir/bench_fig7_eu28_geolocation.cpp.o.d"
  "bench_fig7_eu28_geolocation"
  "bench_fig7_eu28_geolocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_eu28_geolocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
