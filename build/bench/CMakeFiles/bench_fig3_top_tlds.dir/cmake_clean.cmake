file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_top_tlds.dir/bench_fig3_top_tlds.cpp.o"
  "CMakeFiles/bench_fig3_top_tlds.dir/bench_fig3_top_tlds.cpp.o.d"
  "bench_fig3_top_tlds"
  "bench_fig3_top_tlds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_top_tlds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
