# Empty compiler generated dependencies file for bench_fig3_top_tlds.
# This may be replaced when dependencies are built.
