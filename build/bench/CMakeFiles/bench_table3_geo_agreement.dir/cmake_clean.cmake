file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_geo_agreement.dir/bench_table3_geo_agreement.cpp.o"
  "CMakeFiles/bench_table3_geo_agreement.dir/bench_table3_geo_agreement.cpp.o.d"
  "bench_table3_geo_agreement"
  "bench_table3_geo_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_geo_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
