# Empty dependencies file for bench_table3_geo_agreement.
# This may be replaced when dependencies are built.
