file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sensitive_categories.dir/bench_fig9_sensitive_categories.cpp.o"
  "CMakeFiles/bench_fig9_sensitive_categories.dir/bench_fig9_sensitive_categories.cpp.o.d"
  "bench_fig9_sensitive_categories"
  "bench_fig9_sensitive_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sensitive_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
