# Empty dependencies file for bench_fig9_sensitive_categories.
# This may be replaced when dependencies are built.
