file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_cloud_migration.dir/bench_table6_cloud_migration.cpp.o"
  "CMakeFiles/bench_table6_cloud_migration.dir/bench_table6_cloud_migration.cpp.o.d"
  "bench_table6_cloud_migration"
  "bench_table6_cloud_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_cloud_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
