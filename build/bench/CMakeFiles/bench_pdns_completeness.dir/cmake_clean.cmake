file(REMOVE_RECURSE
  "CMakeFiles/bench_pdns_completeness.dir/bench_pdns_completeness.cpp.o"
  "CMakeFiles/bench_pdns_completeness.dir/bench_pdns_completeness.cpp.o.d"
  "bench_pdns_completeness"
  "bench_pdns_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdns_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
