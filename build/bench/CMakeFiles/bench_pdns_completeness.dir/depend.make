# Empty dependencies file for bench_pdns_completeness.
# This may be replaced when dependencies are built.
