# Empty compiler generated dependencies file for test_sensitive.
# This may be replaced when dependencies are built.
