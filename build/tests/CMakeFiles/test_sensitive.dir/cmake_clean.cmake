file(REMOVE_RECURSE
  "CMakeFiles/test_sensitive.dir/test_sensitive.cpp.o"
  "CMakeFiles/test_sensitive.dir/test_sensitive.cpp.o.d"
  "test_sensitive"
  "test_sensitive.pdb"
  "test_sensitive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
