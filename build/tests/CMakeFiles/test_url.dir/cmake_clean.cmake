file(REMOVE_RECURSE
  "CMakeFiles/test_url.dir/test_url.cpp.o"
  "CMakeFiles/test_url.dir/test_url.cpp.o.d"
  "test_url"
  "test_url.pdb"
  "test_url[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_url.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
