# Empty dependencies file for test_url.
# This may be replaced when dependencies are built.
