file(REMOVE_RECURSE
  "CMakeFiles/test_geoloc.dir/test_geoloc.cpp.o"
  "CMakeFiles/test_geoloc.dir/test_geoloc.cpp.o.d"
  "test_geoloc"
  "test_geoloc.pdb"
  "test_geoloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
