
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_whatif.cpp" "tests/CMakeFiles/test_whatif.dir/test_whatif.cpp.o" "gcc" "tests/CMakeFiles/test_whatif.dir/test_whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collab/CMakeFiles/cbwt_collab.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/cbwt_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cbwt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/cbwt_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/whatif/CMakeFiles/cbwt_whatif.dir/DependInfo.cmake"
  "/root/repo/build/src/sensitive/CMakeFiles/cbwt_sensitive.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cbwt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/cbwt_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/filterlist/CMakeFiles/cbwt_filterlist.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/cbwt_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/pdns/CMakeFiles/cbwt_pdns.dir/DependInfo.cmake"
  "/root/repo/build/src/rtb/CMakeFiles/cbwt_rtb.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cbwt_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/geoloc/CMakeFiles/cbwt_geoloc.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/cbwt_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cbwt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cbwt_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cbwt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
