file(REMOVE_RECURSE
  "CMakeFiles/test_pdns.dir/test_pdns.cpp.o"
  "CMakeFiles/test_pdns.dir/test_pdns.cpp.o.d"
  "test_pdns"
  "test_pdns.pdb"
  "test_pdns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
