# Empty dependencies file for test_pdns.
# This may be replaced when dependencies are built.
