# Empty compiler generated dependencies file for test_collab.
# This may be replaced when dependencies are built.
