# Empty dependencies file for test_netflow.
# This may be replaced when dependencies are built.
