# Empty compiler generated dependencies file for test_filterlist.
# This may be replaced when dependencies are built.
