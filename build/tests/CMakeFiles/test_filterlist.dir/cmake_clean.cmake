file(REMOVE_RECURSE
  "CMakeFiles/test_filterlist.dir/test_filterlist.cpp.o"
  "CMakeFiles/test_filterlist.dir/test_filterlist.cpp.o.d"
  "test_filterlist"
  "test_filterlist.pdb"
  "test_filterlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filterlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
