file(REMOVE_RECURSE
  "CMakeFiles/test_rtb.dir/test_rtb.cpp.o"
  "CMakeFiles/test_rtb.dir/test_rtb.cpp.o.d"
  "test_rtb"
  "test_rtb.pdb"
  "test_rtb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
