# Empty compiler generated dependencies file for test_rtb.
# This may be replaced when dependencies are built.
