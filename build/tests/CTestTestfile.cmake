# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_prng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_strings[1]_include.cmake")
include("/root/repo/build/tests/test_ip[1]_include.cmake")
include("/root/repo/build/tests/test_prefix_trie[1]_include.cmake")
include("/root/repo/build/tests/test_url[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_world[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_pdns[1]_include.cmake")
include("/root/repo/build/tests/test_filterlist[1]_include.cmake")
include("/root/repo/build/tests/test_classify[1]_include.cmake")
include("/root/repo/build/tests/test_browser[1]_include.cmake")
include("/root/repo/build/tests/test_geoloc[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_netflow[1]_include.cmake")
include("/root/repo/build/tests/test_whatif[1]_include.cmake")
include("/root/repo/build/tests/test_sensitive[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_rtb[1]_include.cmake")
include("/root/repo/build/tests/test_collab[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
