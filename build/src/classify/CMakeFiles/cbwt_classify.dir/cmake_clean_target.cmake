file(REMOVE_RECURSE
  "libcbwt_classify.a"
)
