file(REMOVE_RECURSE
  "CMakeFiles/cbwt_classify.dir/classifier.cpp.o"
  "CMakeFiles/cbwt_classify.dir/classifier.cpp.o.d"
  "libcbwt_classify.a"
  "libcbwt_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
