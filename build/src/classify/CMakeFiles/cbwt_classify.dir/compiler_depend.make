# Empty compiler generated dependencies file for cbwt_classify.
# This may be replaced when dependencies are built.
