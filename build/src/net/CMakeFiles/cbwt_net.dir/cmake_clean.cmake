file(REMOVE_RECURSE
  "CMakeFiles/cbwt_net.dir/domain.cpp.o"
  "CMakeFiles/cbwt_net.dir/domain.cpp.o.d"
  "CMakeFiles/cbwt_net.dir/ip.cpp.o"
  "CMakeFiles/cbwt_net.dir/ip.cpp.o.d"
  "CMakeFiles/cbwt_net.dir/url.cpp.o"
  "CMakeFiles/cbwt_net.dir/url.cpp.o.d"
  "libcbwt_net.a"
  "libcbwt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
