file(REMOVE_RECURSE
  "libcbwt_net.a"
)
