# Empty compiler generated dependencies file for cbwt_net.
# This may be replaced when dependencies are built.
