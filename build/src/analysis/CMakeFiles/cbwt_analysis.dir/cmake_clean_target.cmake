file(REMOVE_RECURSE
  "libcbwt_analysis.a"
)
