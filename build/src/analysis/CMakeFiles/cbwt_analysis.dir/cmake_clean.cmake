file(REMOVE_RECURSE
  "CMakeFiles/cbwt_analysis.dir/flows.cpp.o"
  "CMakeFiles/cbwt_analysis.dir/flows.cpp.o.d"
  "CMakeFiles/cbwt_analysis.dir/jurisdiction.cpp.o"
  "CMakeFiles/cbwt_analysis.dir/jurisdiction.cpp.o.d"
  "libcbwt_analysis.a"
  "libcbwt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
