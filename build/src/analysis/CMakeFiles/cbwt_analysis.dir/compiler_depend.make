# Empty compiler generated dependencies file for cbwt_analysis.
# This may be replaced when dependencies are built.
