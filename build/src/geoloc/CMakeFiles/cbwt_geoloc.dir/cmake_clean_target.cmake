file(REMOVE_RECURSE
  "libcbwt_geoloc.a"
)
