# Empty compiler generated dependencies file for cbwt_geoloc.
# This may be replaced when dependencies are built.
