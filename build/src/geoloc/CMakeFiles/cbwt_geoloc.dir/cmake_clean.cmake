file(REMOVE_RECURSE
  "CMakeFiles/cbwt_geoloc.dir/active.cpp.o"
  "CMakeFiles/cbwt_geoloc.dir/active.cpp.o.d"
  "CMakeFiles/cbwt_geoloc.dir/commercial.cpp.o"
  "CMakeFiles/cbwt_geoloc.dir/commercial.cpp.o.d"
  "CMakeFiles/cbwt_geoloc.dir/service.cpp.o"
  "CMakeFiles/cbwt_geoloc.dir/service.cpp.o.d"
  "libcbwt_geoloc.a"
  "libcbwt_geoloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
