file(REMOVE_RECURSE
  "CMakeFiles/cbwt_sensitive.dir/detection.cpp.o"
  "CMakeFiles/cbwt_sensitive.dir/detection.cpp.o.d"
  "libcbwt_sensitive.a"
  "libcbwt_sensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
