file(REMOVE_RECURSE
  "libcbwt_sensitive.a"
)
