# Empty compiler generated dependencies file for cbwt_sensitive.
# This may be replaced when dependencies are built.
