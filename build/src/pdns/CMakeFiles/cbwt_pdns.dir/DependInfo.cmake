
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdns/replication.cpp" "src/pdns/CMakeFiles/cbwt_pdns.dir/replication.cpp.o" "gcc" "src/pdns/CMakeFiles/cbwt_pdns.dir/replication.cpp.o.d"
  "/root/repo/src/pdns/store.cpp" "src/pdns/CMakeFiles/cbwt_pdns.dir/store.cpp.o" "gcc" "src/pdns/CMakeFiles/cbwt_pdns.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/cbwt_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/cbwt_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cbwt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cbwt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cbwt_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
