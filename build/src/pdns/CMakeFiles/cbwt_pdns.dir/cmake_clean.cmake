file(REMOVE_RECURSE
  "CMakeFiles/cbwt_pdns.dir/replication.cpp.o"
  "CMakeFiles/cbwt_pdns.dir/replication.cpp.o.d"
  "CMakeFiles/cbwt_pdns.dir/store.cpp.o"
  "CMakeFiles/cbwt_pdns.dir/store.cpp.o.d"
  "libcbwt_pdns.a"
  "libcbwt_pdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_pdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
