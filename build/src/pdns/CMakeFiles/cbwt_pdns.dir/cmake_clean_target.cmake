file(REMOVE_RECURSE
  "libcbwt_pdns.a"
)
