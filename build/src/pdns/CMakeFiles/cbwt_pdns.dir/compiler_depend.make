# Empty compiler generated dependencies file for cbwt_pdns.
# This may be replaced when dependencies are built.
