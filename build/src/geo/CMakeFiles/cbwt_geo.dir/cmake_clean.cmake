file(REMOVE_RECURSE
  "CMakeFiles/cbwt_geo.dir/country.cpp.o"
  "CMakeFiles/cbwt_geo.dir/country.cpp.o.d"
  "CMakeFiles/cbwt_geo.dir/location.cpp.o"
  "CMakeFiles/cbwt_geo.dir/location.cpp.o.d"
  "libcbwt_geo.a"
  "libcbwt_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
