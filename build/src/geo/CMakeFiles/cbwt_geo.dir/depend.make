# Empty dependencies file for cbwt_geo.
# This may be replaced when dependencies are built.
