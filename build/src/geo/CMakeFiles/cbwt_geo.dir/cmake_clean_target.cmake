file(REMOVE_RECURSE
  "libcbwt_geo.a"
)
