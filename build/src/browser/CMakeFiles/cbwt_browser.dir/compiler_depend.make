# Empty compiler generated dependencies file for cbwt_browser.
# This may be replaced when dependencies are built.
