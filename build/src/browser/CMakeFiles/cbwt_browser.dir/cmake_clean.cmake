file(REMOVE_RECURSE
  "CMakeFiles/cbwt_browser.dir/extension.cpp.o"
  "CMakeFiles/cbwt_browser.dir/extension.cpp.o.d"
  "libcbwt_browser.a"
  "libcbwt_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
