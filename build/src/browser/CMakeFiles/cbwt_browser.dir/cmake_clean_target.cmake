file(REMOVE_RECURSE
  "libcbwt_browser.a"
)
