file(REMOVE_RECURSE
  "CMakeFiles/cbwt_dns.dir/resolver.cpp.o"
  "CMakeFiles/cbwt_dns.dir/resolver.cpp.o.d"
  "libcbwt_dns.a"
  "libcbwt_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
