# Empty dependencies file for cbwt_dns.
# This may be replaced when dependencies are built.
