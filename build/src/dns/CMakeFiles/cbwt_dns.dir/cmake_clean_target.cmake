file(REMOVE_RECURSE
  "libcbwt_dns.a"
)
