# Empty compiler generated dependencies file for cbwt_core.
# This may be replaced when dependencies are built.
