file(REMOVE_RECURSE
  "CMakeFiles/cbwt_core.dir/study.cpp.o"
  "CMakeFiles/cbwt_core.dir/study.cpp.o.d"
  "libcbwt_core.a"
  "libcbwt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
