file(REMOVE_RECURSE
  "libcbwt_core.a"
)
