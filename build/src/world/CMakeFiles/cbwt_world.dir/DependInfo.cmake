
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/address_plan.cpp" "src/world/CMakeFiles/cbwt_world.dir/address_plan.cpp.o" "gcc" "src/world/CMakeFiles/cbwt_world.dir/address_plan.cpp.o.d"
  "/root/repo/src/world/names.cpp" "src/world/CMakeFiles/cbwt_world.dir/names.cpp.o" "gcc" "src/world/CMakeFiles/cbwt_world.dir/names.cpp.o.d"
  "/root/repo/src/world/topics.cpp" "src/world/CMakeFiles/cbwt_world.dir/topics.cpp.o" "gcc" "src/world/CMakeFiles/cbwt_world.dir/topics.cpp.o.d"
  "/root/repo/src/world/world.cpp" "src/world/CMakeFiles/cbwt_world.dir/world.cpp.o" "gcc" "src/world/CMakeFiles/cbwt_world.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cbwt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cbwt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cbwt_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
