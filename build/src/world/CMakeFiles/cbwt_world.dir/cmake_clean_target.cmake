file(REMOVE_RECURSE
  "libcbwt_world.a"
)
