# Empty compiler generated dependencies file for cbwt_world.
# This may be replaced when dependencies are built.
