file(REMOVE_RECURSE
  "CMakeFiles/cbwt_world.dir/address_plan.cpp.o"
  "CMakeFiles/cbwt_world.dir/address_plan.cpp.o.d"
  "CMakeFiles/cbwt_world.dir/names.cpp.o"
  "CMakeFiles/cbwt_world.dir/names.cpp.o.d"
  "CMakeFiles/cbwt_world.dir/topics.cpp.o"
  "CMakeFiles/cbwt_world.dir/topics.cpp.o.d"
  "CMakeFiles/cbwt_world.dir/world.cpp.o"
  "CMakeFiles/cbwt_world.dir/world.cpp.o.d"
  "libcbwt_world.a"
  "libcbwt_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
