file(REMOVE_RECURSE
  "CMakeFiles/cbwt_util.dir/prng.cpp.o"
  "CMakeFiles/cbwt_util.dir/prng.cpp.o.d"
  "CMakeFiles/cbwt_util.dir/stats.cpp.o"
  "CMakeFiles/cbwt_util.dir/stats.cpp.o.d"
  "CMakeFiles/cbwt_util.dir/strings.cpp.o"
  "CMakeFiles/cbwt_util.dir/strings.cpp.o.d"
  "CMakeFiles/cbwt_util.dir/table.cpp.o"
  "CMakeFiles/cbwt_util.dir/table.cpp.o.d"
  "libcbwt_util.a"
  "libcbwt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
