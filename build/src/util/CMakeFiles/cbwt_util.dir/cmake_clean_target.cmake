file(REMOVE_RECURSE
  "libcbwt_util.a"
)
