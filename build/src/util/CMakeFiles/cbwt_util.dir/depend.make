# Empty dependencies file for cbwt_util.
# This may be replaced when dependencies are built.
