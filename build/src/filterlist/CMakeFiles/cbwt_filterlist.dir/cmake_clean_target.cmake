file(REMOVE_RECURSE
  "libcbwt_filterlist.a"
)
