file(REMOVE_RECURSE
  "CMakeFiles/cbwt_filterlist.dir/engine.cpp.o"
  "CMakeFiles/cbwt_filterlist.dir/engine.cpp.o.d"
  "CMakeFiles/cbwt_filterlist.dir/generate.cpp.o"
  "CMakeFiles/cbwt_filterlist.dir/generate.cpp.o.d"
  "CMakeFiles/cbwt_filterlist.dir/rule.cpp.o"
  "CMakeFiles/cbwt_filterlist.dir/rule.cpp.o.d"
  "libcbwt_filterlist.a"
  "libcbwt_filterlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_filterlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
