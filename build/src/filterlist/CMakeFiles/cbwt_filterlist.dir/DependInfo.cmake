
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filterlist/engine.cpp" "src/filterlist/CMakeFiles/cbwt_filterlist.dir/engine.cpp.o" "gcc" "src/filterlist/CMakeFiles/cbwt_filterlist.dir/engine.cpp.o.d"
  "/root/repo/src/filterlist/generate.cpp" "src/filterlist/CMakeFiles/cbwt_filterlist.dir/generate.cpp.o" "gcc" "src/filterlist/CMakeFiles/cbwt_filterlist.dir/generate.cpp.o.d"
  "/root/repo/src/filterlist/rule.cpp" "src/filterlist/CMakeFiles/cbwt_filterlist.dir/rule.cpp.o" "gcc" "src/filterlist/CMakeFiles/cbwt_filterlist.dir/rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/cbwt_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cbwt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cbwt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cbwt_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
