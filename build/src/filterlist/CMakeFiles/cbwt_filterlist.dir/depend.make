# Empty dependencies file for cbwt_filterlist.
# This may be replaced when dependencies are built.
