# Empty dependencies file for cbwt_rtb.
# This may be replaced when dependencies are built.
