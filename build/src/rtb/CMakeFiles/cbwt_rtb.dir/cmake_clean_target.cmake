file(REMOVE_RECURSE
  "libcbwt_rtb.a"
)
