file(REMOVE_RECURSE
  "CMakeFiles/cbwt_rtb.dir/auction.cpp.o"
  "CMakeFiles/cbwt_rtb.dir/auction.cpp.o.d"
  "CMakeFiles/cbwt_rtb.dir/cookies.cpp.o"
  "CMakeFiles/cbwt_rtb.dir/cookies.cpp.o.d"
  "libcbwt_rtb.a"
  "libcbwt_rtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_rtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
