file(REMOVE_RECURSE
  "libcbwt_collab.a"
)
