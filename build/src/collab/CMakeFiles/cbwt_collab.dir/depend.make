# Empty dependencies file for cbwt_collab.
# This may be replaced when dependencies are built.
