file(REMOVE_RECURSE
  "CMakeFiles/cbwt_collab.dir/graph.cpp.o"
  "CMakeFiles/cbwt_collab.dir/graph.cpp.o.d"
  "libcbwt_collab.a"
  "libcbwt_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
