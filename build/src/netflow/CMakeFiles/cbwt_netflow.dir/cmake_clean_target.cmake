file(REMOVE_RECURSE
  "libcbwt_netflow.a"
)
