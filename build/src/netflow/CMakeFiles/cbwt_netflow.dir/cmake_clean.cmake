file(REMOVE_RECURSE
  "CMakeFiles/cbwt_netflow.dir/collector.cpp.o"
  "CMakeFiles/cbwt_netflow.dir/collector.cpp.o.d"
  "CMakeFiles/cbwt_netflow.dir/generator.cpp.o"
  "CMakeFiles/cbwt_netflow.dir/generator.cpp.o.d"
  "CMakeFiles/cbwt_netflow.dir/profile.cpp.o"
  "CMakeFiles/cbwt_netflow.dir/profile.cpp.o.d"
  "CMakeFiles/cbwt_netflow.dir/sflow.cpp.o"
  "CMakeFiles/cbwt_netflow.dir/sflow.cpp.o.d"
  "libcbwt_netflow.a"
  "libcbwt_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
