# Empty compiler generated dependencies file for cbwt_netflow.
# This may be replaced when dependencies are built.
