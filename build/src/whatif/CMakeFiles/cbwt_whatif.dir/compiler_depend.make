# Empty compiler generated dependencies file for cbwt_whatif.
# This may be replaced when dependencies are built.
