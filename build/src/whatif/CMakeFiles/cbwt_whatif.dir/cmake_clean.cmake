file(REMOVE_RECURSE
  "CMakeFiles/cbwt_whatif.dir/localization.cpp.o"
  "CMakeFiles/cbwt_whatif.dir/localization.cpp.o.d"
  "libcbwt_whatif.a"
  "libcbwt_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
