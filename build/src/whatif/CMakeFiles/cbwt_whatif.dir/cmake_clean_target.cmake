file(REMOVE_RECURSE
  "libcbwt_whatif.a"
)
