file(REMOVE_RECURSE
  "CMakeFiles/cbwt_report.dir/export.cpp.o"
  "CMakeFiles/cbwt_report.dir/export.cpp.o.d"
  "CMakeFiles/cbwt_report.dir/json.cpp.o"
  "CMakeFiles/cbwt_report.dir/json.cpp.o.d"
  "libcbwt_report.a"
  "libcbwt_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbwt_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
