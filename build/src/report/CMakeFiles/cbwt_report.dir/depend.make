# Empty dependencies file for cbwt_report.
# This may be replaced when dependencies are built.
