file(REMOVE_RECURSE
  "libcbwt_report.a"
)
