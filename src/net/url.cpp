#include "net/url.h"

#include <charconv>

#include "util/contract.h"
#include "util/strings.h"

namespace cbwt::net {

namespace {

// RFC 1035 caps a full domain name at 253 octets; anything longer is
// hostile or corrupt input, not a real destination.
constexpr std::size_t kMaxHostLength = 253;

/// Hostname charset after lowering: letters, digits, '.', '-', '_'.
/// Rejecting everything else (spaces, brackets, stray ':', non-ASCII
/// bytes) keeps parse/to_string a fixpoint — see fuzz/fuzz_url.cpp.
bool valid_host(std::string_view host) noexcept {
  for (const char c : host) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<Url> Url::parse(std::string_view text) {
  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) return std::nullopt;
  Url url;
  url.scheme_ = util::to_lower(text.substr(0, scheme_end));
  if (url.scheme_ != "http" && url.scheme_ != "https") return std::nullopt;
  url.port_ = url.scheme_ == "https" ? 443 : 80;

  std::string_view rest = text.substr(scheme_end + 3);
  const std::size_t fragment = rest.find('#');
  if (fragment != std::string_view::npos) rest = rest.substr(0, fragment);

  // The authority ends at the first '/' or '?': "http://a.com?x=1" is a
  // query on the root path, not a host containing '?'.
  const std::size_t path_start = rest.find_first_of("/?");
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  std::string_view path_query =
      path_start == std::string_view::npos ? std::string_view{} : rest.substr(path_start);

  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port_text = authority.substr(colon + 1);
    std::uint16_t port = 0;
    const auto [ptr, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() || port == 0) {
      return std::nullopt;
    }
    url.port_ = port;
    authority = authority.substr(0, colon);
  }
  if (authority.empty() || authority.size() > kMaxHostLength) return std::nullopt;
  url.host_ = util::to_lower(authority);
  if (!valid_host(url.host_)) return std::nullopt;

  if (!path_query.empty()) {
    const std::size_t q = path_query.find('?');
    if (q == std::string_view::npos) {
      url.path_ = std::string(path_query);
    } else {
      url.path_ = std::string(path_query.substr(0, q));
      url.query_ = std::string(path_query.substr(q + 1));
    }
  }
  if (url.path_.empty()) url.path_ = "/";
  // The accessor documentation promises these to every downstream stage
  // (classifier, filter engine); a parse that breaks them is a bug here,
  // not in the caller.
  CBWT_ENSURES(!url.host_.empty());
  CBWT_ENSURES(url.path_.front() == '/');
  CBWT_ENSURES(url.port_ != 0);
  return url;
}

std::vector<std::pair<std::string, std::string>> Url::arguments() const {
  std::vector<std::pair<std::string, std::string>> out;
  if (query_.empty()) return out;
  for (const auto pair : util::split(query_, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out.emplace_back(std::string(pair), std::string{});
    } else {
      out.emplace_back(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
    }
  }
  return out;
}

std::string Url::host_and_rest() const {
  CBWT_EXPECTS(!host_.empty());  // only parse() constructs, so host is set
  std::string out = host_;
  const bool default_port =
      (scheme_ == "https" && port_ == 443) || (scheme_ == "http" && port_ == 80);
  if (!default_port) out += ":" + std::to_string(port_);
  out += path_;
  if (!query_.empty()) out += "?" + query_;
  return out;
}

std::string Url::to_string() const { return scheme_ + "://" + host_and_rest(); }

}  // namespace cbwt::net
