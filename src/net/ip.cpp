#include "net/ip.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <vector>

#include "util/contract.h"
#include "util/prng.h"
#include "util/strings.h"

namespace cbwt::net {

namespace {

std::optional<std::uint32_t> parse_v4(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | octet;
  }
  return value;
}

std::optional<std::array<std::uint16_t, 8>> parse_v6_groups(std::string_view text) {
  // Handles at most one "::" zero-run, no embedded IPv4 form.
  const std::size_t gap = text.find("::");
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  const auto parse_groups = [](std::string_view chunk, std::vector<std::uint16_t>& out) {
    if (chunk.empty()) return true;
    for (const auto group : util::split(chunk, ':')) {
      if (group.empty() || group.size() > 4) return false;
      unsigned value = 0;
      const auto [ptr, ec] =
          std::from_chars(group.data(), group.data() + group.size(), value, 16);
      if (ec != std::errc{} || ptr != group.data() + group.size()) return false;
      out.push_back(static_cast<std::uint16_t>(value));
    }
    return true;
  };
  if (gap == std::string_view::npos) {
    if (!parse_groups(text, head) || head.size() != 8) return std::nullopt;
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    if (!parse_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_groups(text.substr(gap + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() >= 8) return std::nullopt;
  }
  std::array<std::uint16_t, 8> groups{};
  std::copy(head.begin(), head.end(), groups.begin());
  std::copy(tail.begin(), tail.end(), groups.end() - static_cast<std::ptrdiff_t>(tail.size()));
  return groups;
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') == std::string_view::npos) {
    const auto v4_bits = parse_v4(text);
    if (!v4_bits) return std::nullopt;
    return IpAddress::v4(*v4_bits);
  }
  const auto groups = parse_v6_groups(text);
  if (!groups) return std::nullopt;
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | (*groups)[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | (*groups)[static_cast<std::size_t>(i)];
  return IpAddress::v6(hi, lo);
}

std::string IpAddress::to_string() const {
  char buffer[64];
  if (is_v4()) {
    const auto v = v4_value();
    std::snprintf(buffer, sizeof buffer, "%u.%u.%u.%u", (v >> 24) & 0xFF, (v >> 16) & 0xFF,
                  (v >> 8) & 0xFF, v & 0xFF);
    return buffer;
  }
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
    groups[static_cast<std::size_t>(i + 4)] = static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));
  }
  // Find the longest zero run (length >= 2) to compress with "::".
  int best_start = -1;
  int best_len = 1;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // "::" both closes the previous group and marks the gap.
      out += "::";
      i += best_len;
      if (i >= 8) break;
      continue;
    }
    std::snprintf(buffer, sizeof buffer, "%x", groups[static_cast<std::size_t>(i)]);
    out += buffer;
    ++i;
    if (i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

std::uint64_t IpAddress::hash() const noexcept {
  const std::uint64_t tag = family_ == IpFamily::v4 ? 0x1111 : 0x2222;
  return util::mix64(hi_ ^ util::mix64(lo_ ^ tag));
}

IpPrefix::IpPrefix(IpAddress base, unsigned length) noexcept : length_(length) {
  const unsigned width = base.width();
  if (length_ > width) length_ = width;
  if (base.is_v4()) {
    const std::uint32_t mask =
        length_ == 0 ? 0 : (~std::uint32_t{0} << (32U - length_));
    base_ = IpAddress::v4(base.v4_value() & mask);
  } else {
    std::uint64_t hi_mask = 0;
    std::uint64_t lo_mask = 0;
    if (length_ >= 64) {
      hi_mask = ~std::uint64_t{0};
      lo_mask = length_ == 64 ? 0 : (~std::uint64_t{0} << (128U - length_));
    } else if (length_ > 0) {
      hi_mask = ~std::uint64_t{0} << (64U - length_);
    }
    base_ = IpAddress::v6(base.hi() & hi_mask, base.lo() & lo_mask);
  }
  // The class invariant every containment/offset query relies on:
  // host bits are zero and the length fits the family width.
  CBWT_ENSURES(length_ <= base_.width());
  CBWT_ENSURES(base_.family() == base.family());
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) {
  const std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = IpAddress::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  unsigned length = 0;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || length > ip->width()) {
    return std::nullopt;
  }
  return IpPrefix{*ip, length};
}

bool IpPrefix::contains(const IpAddress& ip) const noexcept {
  if (ip.family() != base_.family()) return false;
  for (unsigned i = 0; i < length_; ++i) {
    if (ip.bit(i) != base_.bit(i)) return false;
  }
  return true;
}

std::uint64_t IpPrefix::v4_size() const noexcept {
  if (!base_.is_v4()) return 0;
  return std::uint64_t{1} << (32U - length_);
}

IpAddress IpPrefix::at(std::uint64_t offset) const noexcept {
  if (base_.is_v4()) {
    const std::uint64_t size = v4_size();
    CBWT_ASSERT(size > 0);  // guaranteed by length_ <= 32
    return IpAddress::v4(base_.v4_value() + static_cast<std::uint32_t>(offset % size));
  }
  // IPv6: offsets index the low 64 bits, which is ample for the model.
  const unsigned host_bits = 128U - length_;
  const std::uint64_t mask =
      host_bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << host_bits) - 1);
  return IpAddress::v6(base_.hi(), base_.lo() | (offset & mask));
}

std::string IpPrefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace cbwt::net
