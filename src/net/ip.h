// IP address and CIDR prefix value types. IPv4 and IPv6 are both
// supported (the paper's dataset is ~97% IPv4 with a small IPv6 tail,
// and the synthetic world reproduces that mix).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cbwt::net {

enum class IpFamily : std::uint8_t { v4, v6 };

/// An IPv4 or IPv6 address with value semantics and total ordering.
///
/// Internally both families are stored as a 128-bit big-endian integer;
/// IPv4 occupies the low 32 bits. Ordering compares family first, then
/// numeric value, so v4 and v6 spaces never interleave.
class IpAddress {
 public:
  constexpr IpAddress() noexcept = default;

  /// Constructs an IPv4 address from its 32-bit host-order value.
  [[nodiscard]] static constexpr IpAddress v4(std::uint32_t value) noexcept {
    IpAddress ip;
    ip.family_ = IpFamily::v4;
    ip.hi_ = 0;
    ip.lo_ = value;
    return ip;
  }

  /// Constructs an IPv6 address from high/low 64-bit host-order halves.
  [[nodiscard]] static constexpr IpAddress v6(std::uint64_t hi, std::uint64_t lo) noexcept {
    IpAddress ip;
    ip.family_ = IpFamily::v6;
    ip.hi_ = hi;
    ip.lo_ = lo;
    return ip;
  }

  /// Parses dotted-quad IPv4 or hex-groups IPv6 ("a:b::c"); nullopt on error.
  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);

  [[nodiscard]] constexpr IpFamily family() const noexcept { return family_; }
  [[nodiscard]] constexpr bool is_v4() const noexcept { return family_ == IpFamily::v4; }

  /// Host-order IPv4 value; only meaningful when is_v4().
  [[nodiscard]] constexpr std::uint32_t v4_value() const noexcept {
    return static_cast<std::uint32_t>(lo_);
  }
  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// Bit `index` counted from the most significant end of the address
  /// (index 0 is the top bit). IPv4 addresses have 32 bits, IPv6 128.
  [[nodiscard]] constexpr bool bit(unsigned index) const noexcept {
    if (family_ == IpFamily::v4) {
      return ((lo_ >> (31U - index)) & 1U) != 0;
    }
    if (index < 64) return ((hi_ >> (63U - index)) & 1U) != 0;
    return ((lo_ >> (127U - index)) & 1U) != 0;
  }

  [[nodiscard]] constexpr unsigned width() const noexcept {
    return family_ == IpFamily::v4 ? 32U : 128U;
  }

  /// Canonical text form ("192.0.2.1" / compressed-zero IPv6).
  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit hash (suitable for unordered containers).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend constexpr auto operator<=>(const IpAddress& a, const IpAddress& b) noexcept {
    if (a.family_ != b.family_) return a.family_ <=> b.family_;
    if (a.hi_ != b.hi_) return a.hi_ <=> b.hi_;
    return a.lo_ <=> b.lo_;
  }
  friend constexpr bool operator==(const IpAddress&, const IpAddress&) noexcept = default;

 private:
  IpFamily family_ = IpFamily::v4;
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// A CIDR prefix (address + mask length) with containment queries.
class IpPrefix {
 public:
  constexpr IpPrefix() noexcept = default;

  /// Builds a prefix, zeroing host bits so the invariant base==network holds.
  IpPrefix(IpAddress base, unsigned length) noexcept;

  /// Parses "a.b.c.d/len" or "v6/len"; nullopt on malformed input.
  [[nodiscard]] static std::optional<IpPrefix> parse(std::string_view text);

  [[nodiscard]] constexpr const IpAddress& base() const noexcept { return base_; }
  [[nodiscard]] constexpr unsigned length() const noexcept { return length_; }
  [[nodiscard]] constexpr IpFamily family() const noexcept { return base_.family(); }

  [[nodiscard]] bool contains(const IpAddress& ip) const noexcept;

  /// Number of addresses in an IPv4 prefix (saturates at 2^32).
  [[nodiscard]] std::uint64_t v4_size() const noexcept;

  /// The `offset`-th address inside the prefix (offset taken mod size).
  [[nodiscard]] IpAddress at(std::uint64_t offset) const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IpPrefix&, const IpPrefix&) noexcept = default;

 private:
  IpAddress base_;
  unsigned length_ = 0;
};

}  // namespace cbwt::net

template <>
struct std::hash<cbwt::net::IpAddress> {
  std::size_t operator()(const cbwt::net::IpAddress& ip) const noexcept {
    return static_cast<std::size_t>(ip.hash());
  }
};
