// Binary (Patricia-style, uncompressed) trie mapping CIDR prefixes to
// values, with longest-prefix-match lookup. Used by the geolocation
// databases, the synthetic address plan and NetFlow attribution.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ip.h"

namespace cbwt::net {

/// Maps IpPrefix -> T with longest-prefix-match semantics.
///
/// Inserting the same prefix twice overwrites the value. IPv4 and IPv6
/// prefixes live in separate sub-tries and never match each other.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Inserts or replaces the value for a prefix.
  void insert(const IpPrefix& prefix, T value) {
    Node* node = &root(prefix.family());
    for (unsigned i = 0; i < prefix.length(); ++i) {
      auto& child = prefix.base().bit(i) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix match; nullptr when nothing covers `ip`.
  [[nodiscard]] const T* lookup(const IpAddress& ip) const noexcept {
    const Node* node = &root(ip.family());
    const T* best = node->value ? &*node->value : nullptr;
    for (unsigned i = 0; i < ip.width(); ++i) {
      const auto& child = ip.bit(i) ? node->one : node->zero;
      if (!child) break;
      node = child.get();
      if (node->value) best = &*node->value;
    }
    return best;
  }

  /// Exact-prefix probe (no LPM); nullptr if that prefix is absent.
  [[nodiscard]] const T* exact(const IpPrefix& prefix) const noexcept {
    const Node* node = &root(prefix.family());
    for (unsigned i = 0; i < prefix.length(); ++i) {
      const auto& child = prefix.base().bit(i) ? node->one : node->zero;
      if (!child) return nullptr;
      node = child.get();
    }
    return node->value ? &*node->value : nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visits every stored (prefix, value) pair in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(v4_root_, IpAddress::v4(0), 0, IpFamily::v4, fn);
    walk(v6_root_, IpAddress::v6(0, 0), 0, IpFamily::v6, fn);
  }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    std::optional<T> value;
  };

  [[nodiscard]] Node& root(IpFamily family) noexcept {
    return family == IpFamily::v4 ? v4_root_ : v6_root_;
  }
  [[nodiscard]] const Node& root(IpFamily family) const noexcept {
    return family == IpFamily::v4 ? v4_root_ : v6_root_;
  }

  static IpAddress with_bit(const IpAddress& base, unsigned index, IpFamily family) noexcept {
    if (family == IpFamily::v4) {
      return IpAddress::v4(base.v4_value() | (1U << (31U - index)));
    }
    if (index < 64) return IpAddress::v6(base.hi() | (1ULL << (63U - index)), base.lo());
    return IpAddress::v6(base.hi(), base.lo() | (1ULL << (127U - index)));
  }

  template <typename Fn>
  static void walk(const Node& node, IpAddress base, unsigned depth, IpFamily family, Fn& fn) {
    if (node.value) fn(IpPrefix{base, depth}, *node.value);
    if (node.zero) walk(*node.zero, base, depth + 1, family, fn);
    if (node.one) walk(*node.one, with_bit(base, depth, family), depth + 1, family, fn);
  }

  Node v4_root_;
  Node v6_root_;
  std::size_t size_ = 0;
};

}  // namespace cbwt::net
