#include "net/domain.h"

#include <algorithm>
#include <array>

#include "util/contract.h"
#include "util/strings.h"

namespace cbwt::net {

namespace {

// Embedded public-suffix subset: the generic TLDs plus the multi-label
// country suffixes the synthetic world and tests use. Kept sorted so
// membership is a binary search.
constexpr std::array<std::string_view, 58> kSuffixes = {
    "ac.uk",  "ad",    "at",     "be",     "bg",    "biz",   "ch",    "co",
    "co.jp",  "co.uk", "com",    "com.au", "com.br", "com.cy", "com.gr",
    "com.mt", "com.pl", "com.ro", "cz",    "de",    "dk",    "ee",    "es",
    "eu",     "fi",    "fr",     "gov.uk", "gr",    "hr",    "hu",    "ie",
    "info",   "io",    "it",     "jp",     "lt",    "lu",    "lv",    "me",
    "mt",     "net",   "net.gr", "nl",     "no",    "org",   "org.uk", "pl",
    "pt",     "ro",    "rs",     "ru",     "se",    "si",    "sk",    "tv",
    "uk",     "us",    "xyz"};

CBWT_STATIC_EXPECT(std::is_sorted(kSuffixes.begin(), kSuffixes.end()),
                   "suffix table must stay sorted for binary_search");

}  // namespace

std::vector<std::string_view> domain_labels(std::string_view fqdn) {
  if (fqdn.empty()) return {};
  return util::split(fqdn, '.');
}

bool is_public_suffix(std::string_view suffix) noexcept {
  return std::binary_search(kSuffixes.begin(), kSuffixes.end(), suffix);
}

std::string_view public_suffix(std::string_view fqdn) noexcept {
  // Try progressively shorter suffixes from the left; the first (longest)
  // hit wins, so "co.uk" beats "uk".
  std::string_view rest = fqdn;
  while (!rest.empty()) {
    if (is_public_suffix(rest)) {
      CBWT_ENSURES(fqdn.ends_with(rest));
      return rest;
    }
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) return {};
    rest = rest.substr(dot + 1);
  }
  return {};
}

std::string_view registrable_domain(std::string_view fqdn) noexcept {
  const std::string_view suffix = public_suffix(fqdn);
  if (suffix.empty() || suffix.size() == fqdn.size()) return fqdn;
  // One more label to the left of the suffix.
  CBWT_ASSERT(fqdn.size() > suffix.size());
  const std::string_view head = fqdn.substr(0, fqdn.size() - suffix.size() - 1);
  const std::size_t dot = head.rfind('.');
  const std::string_view out =
      dot == std::string_view::npos ? fqdn : fqdn.substr(dot + 1);
  CBWT_ENSURES(fqdn.ends_with(out));
  return out;
}

bool is_subdomain_of(std::string_view fqdn, std::string_view domain) noexcept {
  if (fqdn == domain) return true;
  if (fqdn.size() <= domain.size()) return false;
  return fqdn.ends_with(domain) && fqdn[fqdn.size() - domain.size() - 1] == '.';
}

bool same_site(std::string_view host_a, std::string_view host_b) noexcept {
  return registrable_domain(host_a) == registrable_domain(host_b);
}

}  // namespace cbwt::net
