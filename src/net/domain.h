// Domain-name handling: FQDN labels, public-suffix recognition and
// registrable-domain extraction. The paper aggregates tracking flows per
// "TLD", by which it means the registrable domain (eTLD+1), e.g.
// "sync.ads.example.co.uk" -> "example.co.uk"; we follow that usage.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cbwt::net {

/// Splits an FQDN into labels; "a.b.c" -> {"a","b","c"}.
[[nodiscard]] std::vector<std::string_view> domain_labels(std::string_view fqdn);

/// True when `suffix` is a public suffix in the embedded list
/// (e.g. "com", "co.uk", "com.br"). Matching is exact, lower-case.
[[nodiscard]] bool is_public_suffix(std::string_view suffix) noexcept;

/// Longest public suffix of `fqdn`, or "" when none matches.
[[nodiscard]] std::string_view public_suffix(std::string_view fqdn) noexcept;

/// Registrable domain (public suffix + one label), or the input itself
/// when it is too short to have one. "sync.tracker.com" -> "tracker.com".
[[nodiscard]] std::string_view registrable_domain(std::string_view fqdn) noexcept;

/// True when `fqdn` equals `domain` or is a subdomain of it.
[[nodiscard]] bool is_subdomain_of(std::string_view fqdn, std::string_view domain) noexcept;

/// True when the two hosts share a registrable domain (used for the
/// first/third-party split: a request is third-party when this is false).
[[nodiscard]] bool same_site(std::string_view host_a, std::string_view host_b) noexcept;

}  // namespace cbwt::net
