// Minimal URL parser covering the subset that web-tracking requests use:
// scheme://host[:port]/path[?query]. The classifier inspects hosts, paths
// and query arguments; fragments and userinfo are out of scope.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbwt::net {

/// Parsed URL with value semantics; construct via Url::parse.
class Url {
 public:
  /// Parses an absolute http(s) URL; nullopt if scheme or host is missing.
  [[nodiscard]] static std::optional<Url> parse(std::string_view text);

  [[nodiscard]] const std::string& scheme() const noexcept { return scheme_; }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Path always begins with '/'.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& query() const noexcept { return query_; }

  [[nodiscard]] bool is_https() const noexcept { return scheme_ == "https"; }
  /// True when the URL carries query arguments ("?k=v&…"). The paper's
  /// stage-2 classifier keys on this.
  [[nodiscard]] bool has_arguments() const noexcept { return !query_.empty(); }

  /// Query key/value pairs in order of appearance (valueless keys allowed).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> arguments() const;

  /// Everything after the scheme separator: host[:port]/path[?query].
  [[nodiscard]] std::string host_and_rest() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::string scheme_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::string path_ = "/";
  std::string query_;
};

}  // namespace cbwt::net
