#include "filterlist/reference.h"

#include <string>

#include "util/contract.h"

namespace cbwt::filterlist {

void ReferenceEngine::index_rule(const Rule& rule, std::string_view list_name) {
  // parse_rule() guarantees this; an unanchored, literal-free rule would
  // otherwise match every request from the scan bucket.
  CBWT_EXPECTS(!rule.parts.empty() || rule.anchor != AnchorKind::None || rule.end_anchor);
  if (rule.exception) {
    exceptions_.push_back({&rule, list_name});
    return;
  }
  // Same key function as Engine, so both engines sort exactly the same
  // rules into the anchor index.
  const std::string_view key = anchor_index_key(rule);
  if (key.empty()) {
    scan_rules_.push_back({&rule, list_name});
  } else {
    by_anchor_[std::string(key)].push_back({&rule, list_name});
  }
}

void ReferenceEngine::add_list(FilterList list) {
  lists_.push_back(std::move(list));
  // Rebuild the whole index: rule storage is stable from here on, so all
  // pointers taken now stay valid.
  by_anchor_.clear();
  scan_rules_.clear();
  exceptions_.clear();
  for (const auto& stored : lists_) {
    for (const auto& rule : stored.rules()) index_rule(rule, stored.name());
  }
}

bool ReferenceEngine::exception_matches(const RequestContext& request) const {
  for (const auto& entry : exceptions_) {
    if (rule_matches(*entry.rule, request)) return true;
  }
  return false;
}

MatchResult ReferenceEngine::match(const RequestContext& request) const {
  CBWT_EXPECTS(request.host.find('/') == std::string_view::npos);
  const auto try_rules = [&](const std::vector<IndexedRule>& rules) -> MatchResult {
    for (const auto& entry : rules) {
      if (rule_matches(*entry.rule, request)) {
        return {true, entry.rule, entry.list};
      }
    }
    return {};
  };

  MatchResult hit;
  // Walk host suffixes: "a.b.c.com" probes a.b.c.com, b.c.com, c.com, com.
  std::string_view host = request.host;
  while (!hit.matched && !host.empty()) {
    if (const auto it = by_anchor_.find(std::string(host)); it != by_anchor_.end()) {
      hit = try_rules(it->second);
    }
    const std::size_t dot = host.find('.');
    if (dot == std::string_view::npos) break;
    host = host.substr(dot + 1);
  }
  if (!hit.matched) hit = try_rules(scan_rules_);
  if (!hit.matched) return {};
  if (exception_matches(request)) return {};
  return hit;
}

std::size_t ReferenceEngine::total_rules() const noexcept {
  std::size_t total = 0;
  for (const auto& list : lists_) total += list.rule_count();
  return total;
}

}  // namespace cbwt::filterlist
