// AdBlockPlus filter-rule model: the subset of the ABP syntax that
// easylist / easyprivacy rely on for request blocking — domain-anchored
// patterns (||host^), start/end anchors, '*' wildcards, the '^'
// separator class, $third-party and $domain= options, and @@ exception
// rules. Element-hiding rules (##) are out of scope: they never classify
// network requests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cbwt::filterlist {

enum class AnchorKind : std::uint8_t {
  None,        ///< plain substring rule
  Start,       ///< |http://... (match at URL start)
  DomainName,  ///< ||host... (match at a domain-label boundary)
};

/// Options parsed from the $-suffix of a rule.
struct RuleOptions {
  /// tri-state third-party constraint: unset = both
  std::optional<bool> third_party;
  /// $domain= include list (empty = any); entries are lower-case.
  std::vector<std::string> include_domains;
  /// $domain= ~excluded page domains.
  std::vector<std::string> exclude_domains;
};

/// One parsed filter rule.
struct Rule {
  std::string text;             ///< original line (for reporting)
  bool exception = false;       ///< @@ rule
  AnchorKind anchor = AnchorKind::None;
  bool end_anchor = false;      ///< trailing |
  /// Pattern split on '*': the literals must appear in order. '^' inside
  /// a literal is the separator class.
  std::vector<std::string> parts;
  RuleOptions options;
};

/// True for characters the ABP '^' separator class matches (anything but
/// [a-zA-Z0-9] and '_', '-', '.', '%').
[[nodiscard]] constexpr bool is_separator_char(char c) noexcept {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
    return false;
  }
  return c != '_' && c != '-' && c != '.' && c != '%';
}

/// Parses one filter line. Returns nullopt for comments ('!'), empty
/// lines, element-hiding rules and unsupported syntax.
[[nodiscard]] std::optional<Rule> parse_rule(std::string_view line);

/// Request context a rule is evaluated against.
struct RequestContext {
  std::string_view url;        ///< full request URL, lower-case expected
  std::string_view host;       ///< request host
  std::string_view page_host;  ///< first-party page host
  bool third_party = true;
};

/// Evaluates a single rule against a request (ignoring exception-ness;
/// the engine layers exceptions on top).
[[nodiscard]] bool rule_matches(const Rule& rule, const RequestContext& request);

}  // namespace cbwt::filterlist
