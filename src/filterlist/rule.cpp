#include "filterlist/rule.h"

#include "util/contract.h"
#include "util/strings.h"

namespace cbwt::filterlist {

namespace {

/// Attempts to match one literal (which may contain '^' class chars) at
/// position `pos`; returns the end position on success. A single '^' at
/// the end of the literal may also match the end of the URL.
std::optional<std::size_t> match_literal_at(std::string_view url, std::size_t pos,
                                            std::string_view literal) {
  CBWT_EXPECTS(pos <= url.size());
  std::size_t cursor = pos;
  for (std::size_t i = 0; i < literal.size(); ++i) {
    const char pattern_char = literal[i];
    if (cursor < url.size()) {
      const char url_char = url[cursor];
      const bool ok =
          pattern_char == '^' ? is_separator_char(url_char) : url_char == pattern_char;
      if (!ok) return std::nullopt;
      ++cursor;
    } else {
      // URL exhausted: only a trailing '^' may match "end of address".
      if (pattern_char == '^' && i + 1 == literal.size()) return cursor;
      return std::nullopt;
    }
  }
  return cursor;
}

/// Matches all parts in order starting at `pos`. When `first_exact`, the
/// first part must match exactly at `pos`; otherwise it may float.
std::optional<std::size_t> match_parts_from(std::string_view url, std::size_t pos,
                                            const std::vector<std::string>& parts,
                                            bool first_exact) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i == 0 && first_exact) {
      const auto end = match_literal_at(url, pos, parts[0]);
      if (!end) return std::nullopt;
      pos = *end;
      continue;
    }
    bool found = false;
    for (std::size_t p = pos; p <= url.size(); ++p) {
      if (const auto end = match_literal_at(url, p, parts[i])) {
        pos = *end;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return pos;
}

/// True when `host` is `domain` or a subdomain of it.
bool host_under(std::string_view host, std::string_view domain) {
  if (host == domain) return true;
  return host.size() > domain.size() && host.ends_with(domain) &&
         host[host.size() - domain.size() - 1] == '.';
}

bool options_allow(const RuleOptions& options, const RequestContext& request) {
  if (options.third_party && *options.third_party != request.third_party) return false;
  for (const auto& excluded : options.exclude_domains) {
    if (host_under(request.page_host, excluded)) return false;
  }
  if (!options.include_domains.empty()) {
    for (const auto& included : options.include_domains) {
      if (host_under(request.page_host, included)) return true;
    }
    return false;
  }
  return true;
}

}  // namespace

std::optional<Rule> parse_rule(std::string_view line) {
  std::string_view text = util::trim(line);
  if (text.empty() || text.front() == '!') return std::nullopt;
  if (text.find("##") != std::string_view::npos ||
      text.find("#@#") != std::string_view::npos) {
    return std::nullopt;  // element hiding: not a network rule
  }

  Rule rule;
  rule.text = std::string(text);
  if (text.starts_with("@@")) {
    rule.exception = true;
    text.remove_prefix(2);
  }

  // Split off the option suffix if present (heuristic: last '$' with no
  // '/' after it; URLs in patterns keep their '$' otherwise).
  const std::size_t dollar = text.rfind('$');
  std::string_view option_text;
  if (dollar != std::string_view::npos &&
      text.substr(dollar + 1).find('/') == std::string_view::npos && dollar > 0) {
    option_text = text.substr(dollar + 1);
    text = text.substr(0, dollar);
  }
  for (const auto raw_option : util::split(option_text, ',')) {
    const auto option = util::trim(raw_option);
    if (option.empty()) continue;
    if (option == "third-party") {
      rule.options.third_party = true;
    } else if (option == "~third-party") {
      rule.options.third_party = false;
    } else if (option.starts_with("domain=")) {
      for (const auto entry : util::split(option.substr(7), '|')) {
        if (entry.empty()) continue;
        if (entry.front() == '~') {
          rule.options.exclude_domains.emplace_back(util::to_lower(entry.substr(1)));
        } else {
          rule.options.include_domains.emplace_back(util::to_lower(entry));
        }
      }
    }
    // Resource-type options (script, image, ...) are accepted and ignored:
    // the model classifies requests, not resource loads.
  }

  if (text.starts_with("||")) {
    rule.anchor = AnchorKind::DomainName;
    text.remove_prefix(2);
  } else if (text.starts_with("|")) {
    rule.anchor = AnchorKind::Start;
    text.remove_prefix(1);
  }
  if (text.ends_with("|")) {
    rule.end_anchor = true;
    text.remove_suffix(1);
  }
  if (text.empty() && rule.anchor == AnchorKind::None && !rule.end_anchor) {
    return std::nullopt;  // nothing to match on
  }

  const std::string lowered = util::to_lower(text);
  for (const auto part : util::split(lowered, '*')) {
    if (!part.empty()) rule.parts.emplace_back(part);
  }
  if (rule.parts.empty() && rule.anchor == AnchorKind::None && !rule.end_anchor) {
    // Wildcards only ("*", "***"): unanchored with no literal, such a
    // rule would match every request — treat it as unparseable instead.
    return std::nullopt;
  }
  // A parsed rule is either anchored or carries at least one literal —
  // the matcher's case analysis depends on it.
  CBWT_ENSURES(!rule.parts.empty() || rule.anchor != AnchorKind::None || rule.end_anchor);
  CBWT_ENSURES(!rule.text.empty());
  return rule;
}

bool rule_matches(const Rule& rule, const RequestContext& request) {
  if (!options_allow(rule.options, request)) return false;
  const std::string_view url = request.url;

  const auto finish = [&](std::optional<std::size_t> end) {
    if (!end) return false;
    return !rule.end_anchor || *end == url.size();
  };

  if (rule.parts.empty()) {
    // Pure-anchor rules ("||", "*"): match anything (subject to options).
    return !rule.end_anchor || true;
  }

  switch (rule.anchor) {
    case AnchorKind::Start:
      return finish(match_parts_from(url, 0, rule.parts, /*first_exact=*/true));
    case AnchorKind::DomainName: {
      // Candidate positions: start of the host, and after each '.' label
      // boundary inside the host.
      const std::size_t scheme_end = url.find("://");
      if (scheme_end == std::string_view::npos) return false;
      const std::size_t host_start = scheme_end + 3;
      std::size_t host_end = url.find('/', host_start);
      if (host_end == std::string_view::npos) host_end = url.size();
      CBWT_ASSERT(host_start <= host_end);
      for (std::size_t pos = host_start; pos < host_end;) {
        if (finish(match_parts_from(url, pos, rule.parts, /*first_exact=*/true))) {
          return true;
        }
        const std::size_t dot = url.find('.', pos);
        if (dot == std::string_view::npos || dot >= host_end) break;
        pos = dot + 1;
      }
      return false;
    }
    case AnchorKind::None: {
      for (std::size_t pos = 0; pos <= url.size(); ++pos) {
        if (match_literal_at(url, pos, rule.parts[0])) {
          if (finish(match_parts_from(url, pos, rule.parts, /*first_exact=*/true))) {
            return true;
          }
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace cbwt::filterlist
