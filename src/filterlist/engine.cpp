#include "filterlist/engine.h"

#include <array>
#include <limits>
#include <optional>
#include <span>

#include "util/contract.h"

namespace cbwt::filterlist {

namespace {

/// Token alphabet: lower-case alphanumerics. URLs entering match() are
/// lower-case by contract and rule literals are lowered by the parser,
/// so both sides tokenize identically; every other byte (including '^',
/// '%', '_', '-', '.') is a token boundary on both sides.
[[nodiscard]] constexpr bool is_token_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
}

/// True when `host` is `domain` or a subdomain of it.
[[nodiscard]] bool host_under(std::string_view host, std::string_view domain) noexcept {
  if (host == domain) return true;
  return host.size() > domain.size() && host.ends_with(domain) &&
         host[host.size() - domain.size() - 1] == '.';
}

// --- pattern matching over compiled literal spans --------------------
// Byte-for-byte ports of the reference matcher in rule.cpp; the
// equivalence suite (test_filterlist_equivalence) pins them together.

/// Attempts to match one literal (which may contain '^' class chars) at
/// position `pos`; returns the end position on success. A single '^' at
/// the end of the literal may also match the end of the URL.
std::optional<std::size_t> match_literal_at(std::string_view url, std::size_t pos,
                                            std::string_view literal) {
  std::size_t cursor = pos;
  for (std::size_t i = 0; i < literal.size(); ++i) {
    const char pattern_char = literal[i];
    if (cursor < url.size()) {
      const char url_char = url[cursor];
      const bool ok =
          pattern_char == '^' ? is_separator_char(url_char) : url_char == pattern_char;
      if (!ok) return std::nullopt;
      ++cursor;
    } else {
      if (pattern_char == '^' && i + 1 == literal.size()) return cursor;
      return std::nullopt;
    }
  }
  return cursor;
}

/// Matches all parts in order starting at `pos`. When `first_exact`, the
/// first part must match exactly at `pos`; otherwise it may float.
std::optional<std::size_t> match_parts_from(std::string_view url, std::size_t pos,
                                            std::span<const std::string_view> parts,
                                            bool first_exact) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i == 0 && first_exact) {
      const auto end = match_literal_at(url, pos, parts[0]);
      if (!end) return std::nullopt;
      pos = *end;
      continue;
    }
    bool found = false;
    for (std::size_t p = pos; p <= url.size(); ++p) {
      if (const auto end = match_literal_at(url, p, parts[i])) {
        pos = *end;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return pos;
}

// --- compile-time token selection ------------------------------------

struct TokenCandidate {
  std::uint64_t hash = 0;
  std::uint32_t length = 0;
};

/// Collects the boundary-safe tokens of a rule's literals. A token is
/// safe when every URL the rule can match must contain it as a *whole*
/// URL token (maximal alphanumeric run): its left edge is interior to
/// the literal (the preceding literal byte is a token boundary) or sits
/// at an anchored match position (URL start for '|', a host-label
/// boundary for '||'), and its right edge is interior or covered by a
/// trailing end anchor. Tokens touching an open literal edge may be
/// extended by URL bytes ("ads" matching inside "loads"), so they are
/// not usable as index keys.
void collect_safe_tokens(const Rule& rule, std::vector<TokenCandidate>& out) {
  out.clear();
  for (std::size_t j = 0; j < rule.parts.size(); ++j) {
    const std::string_view part = rule.parts[j];
    std::size_t i = 0;
    while (i < part.size()) {
      if (!is_token_char(part[i])) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < part.size() && is_token_char(part[end])) ++end;
      const bool left_safe = i > 0 || (j == 0 && rule.anchor != AnchorKind::None);
      const bool right_safe =
          end < part.size() || (j + 1 == rule.parts.size() && rule.end_anchor);
      if (left_safe && right_safe) {
        out.push_back({util::fnv1a(part.substr(i, end - i)),
                       static_cast<std::uint32_t>(end - i)});
      }
      i = end;
    }
  }
}

}  // namespace

FilterList::FilterList(std::string name, const std::vector<std::string>& lines)
    : name_(std::move(name)) {
  rules_.reserve(lines.size());
  for (const auto& line : lines) {
    if (auto rule = parse_rule(line)) {
      rules_.push_back(std::move(*rule));
    } else {
      ++skipped_;
    }
  }
}

std::string_view anchor_index_key(const Rule& rule) noexcept {
  if (rule.anchor != AnchorKind::DomainName || rule.parts.empty()) return {};
  const std::string_view head = rule.parts.front();
  // The key is the host portion of the first literal: letters, digits,
  // dots, dashes and underscores up to the first separator-ish char.
  std::size_t len = 0;
  while (len < head.size()) {
    const char c = head[len];
    const bool host_char = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                           c == '.' || c == '-' || c == '_';
    if (!host_char) break;
    ++len;
  }
  const std::string_view key = head.substr(0, len);
  // Only index when the host head forms at least a
  // registrable-domain-looking key.
  if (key.size() < 3 || key.find('.') == std::string_view::npos) return {};
  return key;
}

// --- per-match scratch (stack only) ----------------------------------

/// Lazily computed per-request state: the URL's token hashes and the
/// $domain= ids covering the page host. Lives on match()'s stack; no
/// member allocates. Oversized inputs overflow gracefully — tokens
/// beyond the buffer are re-streamed from the URL, page hosts with more
/// labels than the id buffer fall back to direct suffix comparison — so
/// correctness never depends on the caps.
struct Engine::MatchScratch {
  static constexpr std::size_t kTokenCap = 128;
  static constexpr std::size_t kDomainCap = 128;
  static constexpr std::size_t kNpos = std::string_view::npos;

  explicit MatchScratch(const RequestContext& request_in) noexcept
      : request(request_in) {}

  const RequestContext& request;

  std::array<std::uint64_t, kTokenCap> tokens;
  std::size_t token_count = 0;
  std::size_t token_resume = kNpos;  ///< URL offset of the first unbuffered token
  bool tokens_filled = false;

  std::array<std::uint32_t, kDomainCap> domain_ids;
  std::size_t domain_count = 0;
  bool domains_overflowed = false;
  bool domains_filled = false;

  /// Hash of the next token at/after `pos`; advances `pos` past it.
  /// Returns false when the text is exhausted.
  static bool next_token(std::string_view text, std::size_t& pos,
                         std::uint64_t& hash) noexcept {
    while (pos < text.size() && !is_token_char(text[pos])) ++pos;
    if (pos >= text.size()) return false;
    std::uint64_t h = 0xCBF29CE484222325ULL;
    while (pos < text.size() && is_token_char(text[pos])) {
      h ^= static_cast<unsigned char>(text[pos]);
      h *= 0x100000001B3ULL;
      ++pos;
    }
    hash = h;
    return true;
  }

  /// Tokenizes the URL once into the stack buffer (overflow streams).
  void fill_tokens() noexcept {
    tokens_filled = true;
    const std::string_view url = request.url;
    std::size_t pos = 0;
    std::uint64_t hash = 0;
    while (next_token(url, pos, hash)) {
      if (token_count == kTokenCap) {
        // Rewind to the start of the token that did not fit.
        std::size_t start = pos;
        while (start > 0 && is_token_char(url[start - 1])) --start;
        token_resume = start;
        return;
      }
      tokens[token_count++] = hash;
    }
  }

  /// Applies `fn` to every URL token hash; `fn` returning false stops
  /// the walk early. Returns false iff stopped.
  template <typename Fn>
  bool for_each_token(Fn&& fn) noexcept {
    if (!tokens_filled) fill_tokens();
    for (std::size_t i = 0; i < token_count; ++i) {
      if (!fn(tokens[i])) return false;
    }
    if (token_resume != kNpos) {
      std::size_t pos = token_resume;
      std::uint64_t hash = 0;
      while (next_token(request.url, pos, hash)) {
        if (!fn(hash)) return false;
      }
    }
    return true;
  }

  /// Resolves the page host's label suffixes against the engine's
  /// $domain= table: afterwards `domain_ids[0..domain_count)` holds the
  /// ids of every configured domain the page host is under.
  void fill_domains(const util::StringMap<std::uint32_t>& ids) noexcept {
    domains_filled = true;
    if (ids.empty()) return;
    std::string_view host = request.page_host;
    while (!host.empty()) {
      if (const auto it = ids.find(host); it != ids.end()) {
        if (domain_count == kDomainCap) {
          domains_overflowed = true;
          return;
        }
        domain_ids[domain_count++] = it->second;
      }
      const std::size_t dot = host.find('.');
      if (dot == kNpos) break;
      host.remove_prefix(dot + 1);
    }
  }
};

// --- compilation -----------------------------------------------------

void Engine::add_list(FilterList list) {
  lists_.push_back(std::move(list));
  compile();
}

void Engine::compile() {
  arena_.clear();
  part_pool_.clear();
  domain_pool_.clear();
  domain_names_.clear();
  domain_ids_.clear();
  compiled_.clear();
  by_anchor_.clear();
  token_rules_.clear();
  token_exceptions_.clear();
  fallback_rules_.clear();
  fallback_exceptions_.clear();
  stats_ = {};

  // Pass 1: candidate tokens per rule and corpus-wide token frequency;
  // each rule is then indexed under its rarest token, which keeps the
  // buckets probed at match time small (uBlock's heuristic).
  std::vector<std::vector<TokenCandidate>> candidates;
  std::unordered_map<std::uint64_t, std::uint32_t> frequency;
  std::vector<TokenCandidate> scratch;
  for (const auto& stored : lists_) {
    for (const auto& rule : stored.rules()) {
      collect_safe_tokens(rule, scratch);
      for (const auto& candidate : scratch) ++frequency[candidate.hash];
      candidates.push_back(scratch);
    }
  }

  // Pass 2: lower every rule into the arena-backed compiled form and
  // route it to its index bucket.
  const auto intern_domains = [&](const std::vector<std::string>& domains,
                                  std::uint32_t& first, std::uint32_t& count) {
    first = static_cast<std::uint32_t>(domain_pool_.size());
    count = static_cast<std::uint32_t>(domains.size());
    for (const auto& domain : domains) {
      const auto it = domain_ids_.find(std::string_view(domain));
      if (it != domain_ids_.end()) {
        domain_pool_.push_back(it->second);
        continue;
      }
      const auto id = static_cast<std::uint32_t>(domain_names_.size());
      domain_names_.push_back(arena_.intern(domain));
      domain_ids_.emplace(domain, id);
      domain_pool_.push_back(id);
    }
  };

  std::size_t traversal = 0;
  std::uint32_t scan_order = 0;
  for (const auto& stored : lists_) {
    const std::string_view list_name = stored.name();
    for (const auto& rule : stored.rules()) {
      // parse_rule() guarantees this; an unanchored, literal-free rule
      // would otherwise match every request from the fallback bucket.
      CBWT_EXPECTS(!rule.parts.empty() || rule.anchor != AnchorKind::None ||
                   rule.end_anchor);
      CompiledRule compiled;
      compiled.source = &rule;
      compiled.list = list_name;
      compiled.first_part = static_cast<std::uint32_t>(part_pool_.size());
      compiled.part_count = static_cast<std::uint32_t>(rule.parts.size());
      for (const auto& part : rule.parts) part_pool_.push_back(arena_.intern(part));
      compiled.anchor = rule.anchor;
      compiled.end_anchor = rule.end_anchor;
      compiled.third_party = !rule.options.third_party.has_value()
                                 ? kAnyParty
                                 : static_cast<std::int8_t>(*rule.options.third_party);
      intern_domains(rule.options.include_domains, compiled.first_include,
                     compiled.include_count);
      intern_domains(rule.options.exclude_domains, compiled.first_exclude,
                     compiled.exclude_count);

      const auto& rule_tokens = candidates[traversal++];
      const TokenCandidate* best = nullptr;
      for (const auto& candidate : rule_tokens) {
        if (best == nullptr) {
          best = &candidate;
          continue;
        }
        const auto freq = frequency[candidate.hash];
        const auto best_freq = frequency[best->hash];
        if (freq < best_freq || (freq == best_freq && candidate.length > best->length)) {
          best = &candidate;
        }
      }

      const std::string_view anchor = anchor_index_key(rule);
      if (!rule.exception && !anchor.empty()) {
        const auto index = static_cast<std::uint32_t>(compiled_.size());
        compiled_.push_back(compiled);
        auto it = by_anchor_.find(anchor);
        if (it == by_anchor_.end()) {
          it = by_anchor_.emplace(std::string(anchor), std::vector<std::uint32_t>{})
                   .first;
        }
        it->second.push_back(index);
        ++stats_.anchored_rules;
        continue;
      }
      if (!rule.exception) compiled.order = scan_order++;
      const auto index = static_cast<std::uint32_t>(compiled_.size());
      compiled_.push_back(compiled);
      if (rule.exception) {
        if (best != nullptr) {
          token_exceptions_[best->hash].push_back(index);
          ++stats_.tokenized_exceptions;
        } else {
          fallback_exceptions_.push_back(index);
          ++stats_.fallback_exceptions;
        }
      } else {
        if (best != nullptr) {
          token_rules_[best->hash].push_back(index);
          ++stats_.tokenized_rules;
        } else {
          fallback_rules_.push_back(index);
          ++stats_.fallback_rules;
        }
      }
    }
  }
  stats_.literal_bytes = arena_.bytes_used();
}

// --- matching --------------------------------------------------------

bool Engine::evaluate(const CompiledRule& rule, const RequestContext& request,
                      MatchScratch& scratch) const {
  // Options first: they are one branch / a couple of id probes, and the
  // reference path (options_allow) checks them first as well.
  if (rule.third_party != kAnyParty &&
      (rule.third_party != 0) != request.third_party) {
    return false;
  }
  if (rule.include_count != 0 || rule.exclude_count != 0) {
    if (!scratch.domains_filled) scratch.fill_domains(domain_ids_);
    const auto page_under = [&](std::uint32_t id) {
      if (scratch.domains_overflowed) {
        return host_under(request.page_host, domain_names_[id]);
      }
      for (std::size_t i = 0; i < scratch.domain_count; ++i) {
        if (scratch.domain_ids[i] == id) return true;
      }
      return false;
    };
    for (std::uint32_t k = 0; k < rule.exclude_count; ++k) {
      if (page_under(domain_pool_[rule.first_exclude + k])) return false;
    }
    if (rule.include_count != 0) {
      bool included = false;
      for (std::uint32_t k = 0; k < rule.include_count && !included; ++k) {
        included = page_under(domain_pool_[rule.first_include + k]);
      }
      if (!included) return false;
    }
  }

  const std::string_view url = request.url;
  const std::span<const std::string_view> parts(part_pool_.data() + rule.first_part,
                                                rule.part_count);
  const auto finish = [&](std::optional<std::size_t> end) {
    if (!end) return false;
    return !rule.end_anchor || *end == url.size();
  };

  if (parts.empty()) {
    // Pure-anchor rules ("||", "|"): match anything (subject to options).
    return true;
  }

  switch (rule.anchor) {
    case AnchorKind::Start:
      return finish(match_parts_from(url, 0, parts, /*first_exact=*/true));
    case AnchorKind::DomainName: {
      // Candidate positions: start of the host, and after each '.' label
      // boundary inside the host.
      const std::size_t scheme_end = url.find("://");
      if (scheme_end == std::string_view::npos) return false;
      const std::size_t host_start = scheme_end + 3;
      std::size_t host_end = url.find('/', host_start);
      if (host_end == std::string_view::npos) host_end = url.size();
      for (std::size_t pos = host_start; pos < host_end;) {
        if (finish(match_parts_from(url, pos, parts, /*first_exact=*/true))) {
          return true;
        }
        const std::size_t dot = url.find('.', pos);
        if (dot == std::string_view::npos || dot >= host_end) break;
        pos = dot + 1;
      }
      return false;
    }
    case AnchorKind::None: {
      for (std::size_t pos = 0; pos <= url.size(); ++pos) {
        if (match_literal_at(url, pos, parts[0])) {
          if (finish(match_parts_from(url, pos, parts, /*first_exact=*/true))) {
            return true;
          }
        }
      }
      return false;
    }
  }
  return false;
}

MatchResult Engine::match(const RequestContext& request) const {
  // The host must be a bare host name (no scheme, no path): the anchor
  // index keys on host suffixes and would silently miss otherwise.
  CBWT_EXPECTS(request.host.find('/') == std::string_view::npos);
  MatchScratch scratch(request);

  // 1. Anchored rules: walk host suffixes ("a.b.c.com" probes
  //    a.b.c.com, b.c.com, c.com, com); first bucket hit wins, exactly
  //    like the reference walk.
  const CompiledRule* hit = nullptr;
  std::string_view host = request.host;
  while (hit == nullptr && !host.empty()) {
    if (const auto it = by_anchor_.find(host); it != by_anchor_.end()) {
      for (const auto index : it->second) {
        if (evaluate(compiled_[index], request, scratch)) {
          hit = &compiled_[index];
          break;
        }
      }
    }
    const std::size_t dot = host.find('.');
    if (dot == std::string_view::npos) break;
    host.remove_prefix(dot + 1);
  }

  // 2. The reference engine's linear-scan bucket, collapsed to token
  //    probes: only rules bucketed under a token occurring in the URL
  //    (plus the short no-safe-token fallback list) are evaluated. The
  //    lowest scan order among the matches wins, which is exactly the
  //    first hit of the reference scan.
  if (hit == nullptr) {
    std::uint32_t best_order = std::numeric_limits<std::uint32_t>::max();
    for (const auto index : fallback_rules_) {
      const CompiledRule& rule = compiled_[index];
      if (rule.order < best_order && evaluate(rule, request, scratch)) {
        best_order = rule.order;
        hit = &rule;
      }
    }
    scratch.for_each_token([&](std::uint64_t token) {
      if (const auto it = token_rules_.find(token); it != token_rules_.end()) {
        for (const auto index : it->second) {
          const CompiledRule& rule = compiled_[index];
          if (rule.order < best_order && evaluate(rule, request, scratch)) {
            best_order = rule.order;
            hit = &rule;
          }
        }
      }
      return true;  // keep walking: the *minimum* order must win
    });
  }
  if (hit == nullptr) return {};

  // 3. Exceptions, same token treatment; any match suppresses the hit.
  for (const auto index : fallback_exceptions_) {
    if (evaluate(compiled_[index], request, scratch)) return {};
  }
  const bool no_exception = scratch.for_each_token([&](std::uint64_t token) {
    if (const auto it = token_exceptions_.find(token); it != token_exceptions_.end()) {
      for (const auto index : it->second) {
        if (evaluate(compiled_[index], request, scratch)) return false;
      }
    }
    return true;
  });
  if (!no_exception) return {};
  return {true, hit->source, hit->list};
}

std::size_t Engine::total_rules() const noexcept {
  std::size_t total = 0;
  for (const auto& list : lists_) total += list.rule_count();
  return total;
}

}  // namespace cbwt::filterlist
