#include "filterlist/engine.h"

#include "net/domain.h"
#include "util/contract.h"

namespace cbwt::filterlist {

FilterList::FilterList(std::string name, const std::vector<std::string>& lines)
    : name_(std::move(name)) {
  rules_.reserve(lines.size());
  for (const auto& line : lines) {
    if (auto rule = parse_rule(line)) {
      rules_.push_back(std::move(*rule));
    } else {
      ++skipped_;
    }
  }
}

std::string Engine::anchor_key(const Rule& rule) {
  if (rule.anchor != AnchorKind::DomainName || rule.parts.empty()) return {};
  const std::string& head = rule.parts.front();
  // The key is the host portion of the first literal: letters, digits,
  // dots and dashes up to the first separator-ish char.
  std::string key;
  for (const char c : head) {
    const bool host_char = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
                           c == '-';
    if (!host_char) break;
    key += c;
  }
  // Only index when the whole host was a clean literal and forms at least
  // a registrable-domain-looking key.
  if (key.size() < 3 || key.find('.') == std::string::npos) return {};
  return key;
}

void Engine::index_rule(const Rule& rule, std::string_view list_name) {
  // parse_rule() guarantees this; an unanchored, literal-free rule would
  // otherwise match every request from the scan bucket.
  CBWT_EXPECTS(!rule.parts.empty() || rule.anchor != AnchorKind::None || rule.end_anchor);
  if (rule.exception) {
    exceptions_.push_back({&rule, list_name});
    return;
  }
  const std::string key = anchor_key(rule);
  if (key.empty()) {
    scan_rules_.push_back({&rule, list_name});
  } else {
    by_anchor_[key].push_back({&rule, list_name});
  }
}

void Engine::add_list(FilterList list) {
  lists_.push_back(std::move(list));
  // Rebuild the whole index: rule storage is stable from here on, so all
  // pointers taken now stay valid.
  by_anchor_.clear();
  scan_rules_.clear();
  exceptions_.clear();
  for (const auto& stored : lists_) {
    for (const auto& rule : stored.rules()) index_rule(rule, stored.name());
  }
}

bool Engine::exception_matches(const RequestContext& request) const {
  for (const auto& entry : exceptions_) {
    if (rule_matches(*entry.rule, request)) return true;
  }
  return false;
}

MatchResult Engine::match(const RequestContext& request) const {
  // The host must be a bare host name (no scheme, no path): the anchor
  // index keys on host suffixes and would silently miss otherwise.
  CBWT_EXPECTS(request.host.find('/') == std::string_view::npos);
  const auto try_rules = [&](const std::vector<IndexedRule>& rules) -> MatchResult {
    for (const auto& entry : rules) {
      if (rule_matches(*entry.rule, request)) {
        return {true, entry.rule, entry.list};
      }
    }
    return {};
  };

  MatchResult hit;
  // Walk host suffixes: "a.b.c.com" probes a.b.c.com, b.c.com, c.com, com.
  std::string_view host = request.host;
  while (!hit.matched && !host.empty()) {
    if (const auto it = by_anchor_.find(std::string(host)); it != by_anchor_.end()) {
      hit = try_rules(it->second);
    }
    const std::size_t dot = host.find('.');
    if (dot == std::string_view::npos) break;
    host = host.substr(dot + 1);
  }
  if (!hit.matched) hit = try_rules(scan_rules_);
  if (!hit.matched) return {};
  if (exception_matches(request)) return {};
  return hit;
}

std::size_t Engine::total_rules() const noexcept {
  std::size_t total = 0;
  for (const auto& list : lists_) total += list.rule_count();
  return total;
}

}  // namespace cbwt::filterlist
