// Filter-list engine: parses whole lists (easylist / easyprivacy) and
// matches requests against all of them with exception-rule semantics and
// a domain-anchor index for speed.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "filterlist/rule.h"

namespace cbwt::filterlist {

/// A named, parsed list.
class FilterList {
 public:
  FilterList(std::string name, const std::vector<std::string>& lines);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }
  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] std::size_t skipped_lines() const noexcept { return skipped_; }

 private:
  std::string name_;
  std::vector<Rule> rules_;
  std::size_t skipped_ = 0;
};

/// Result of matching one request against the engine.
struct MatchResult {
  bool matched = false;         ///< blocked by some rule, no exception won
  const Rule* rule = nullptr;   ///< the blocking rule (when matched)
  std::string_view list;        ///< name of the list the rule came from
};

/// Multi-list matcher. Blocking rules win unless an exception rule from
/// any list also matches (ABP semantics).
class Engine {
 public:
  /// Adds a list; the engine keeps its own copy and indexes it.
  void add_list(FilterList list);

  /// Matches a request; `url` must be lower-case (tracker URLs in this
  /// model always are).
  [[nodiscard]] MatchResult match(const RequestContext& request) const;

  [[nodiscard]] std::size_t total_rules() const noexcept;

 private:
  struct IndexedRule {
    const Rule* rule;
    std::string_view list;
  };

  /// Extracts the pure-hostname head of a domain-anchored rule (the index
  /// key); empty when the rule cannot be indexed.
  [[nodiscard]] static std::string anchor_key(const Rule& rule);

  void index_rule(const Rule& rule, std::string_view list_name);
  [[nodiscard]] bool exception_matches(const RequestContext& request) const;

  std::vector<FilterList> lists_;
  /// Domain-anchored blocking rules keyed by anchor host.
  std::unordered_map<std::string, std::vector<IndexedRule>> by_anchor_;
  /// Blocking rules that need a linear scan.
  std::vector<IndexedRule> scan_rules_;
  std::vector<IndexedRule> exceptions_;
};

}  // namespace cbwt::filterlist
