// Filter-list engine: parses whole lists (easylist / easyprivacy) and
// matches requests against all of them with exception-rule semantics.
//
// The engine is compile-once / match-many: add_list() lowers every
// parsed Rule into a flat CompiledRule (literals interned contiguously
// in an arena, option bitflags, $domain= lists pre-bucketed to integer
// ids) and builds two reverse indexes over the compiled set —
//
//   * a host-anchor index: ||host^ rules keyed by their host literal,
//     probed by walking the request host's label suffixes (heterogeneous
//     string hashing, so the walk never materializes a std::string);
//   * a token index (uBlock-style): every other rule — blocking *and*
//     exception — is keyed by the rarest alphanumeric token of its
//     literals that is guaranteed to appear as a whole token in any URL
//     the rule can match. At match time the URL is tokenized once into a
//     stack buffer and only the rules bucketed under one of its tokens
//     are evaluated; rules with no boundary-safe token fall back to a
//     (short) always-evaluated list.
//
// Engine::match is allocation-free and the verdict — including *which*
// rule wins — is bit-identical to ReferenceEngine (reference.h), the
// naive matcher kept as the executable specification; the equivalence is
// pinned by property tests and the fuzz harness.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "filterlist/rule.h"
#include "util/arena.h"
#include "util/transparent_hash.h"

namespace cbwt::filterlist {

/// A named, parsed list.
class FilterList {
 public:
  FilterList(std::string name, const std::vector<std::string>& lines);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }
  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] std::size_t skipped_lines() const noexcept { return skipped_; }

 private:
  std::string name_;
  std::vector<Rule> rules_;
  std::size_t skipped_ = 0;
};

/// Result of matching one request against the engine. `rule` and `list`
/// point into engine-owned storage and stay valid until the next
/// add_list() (or the engine's destruction).
struct MatchResult {
  bool matched = false;         ///< blocked by some rule, no exception won
  const Rule* rule = nullptr;   ///< the blocking rule (when matched)
  std::string_view list;        ///< name of the list the rule came from
};

/// Pure-hostname head of a domain-anchored rule, usable as an anchor
/// index key (a view into the rule's first literal); empty when the rule
/// cannot be host-indexed. Shared by Engine and ReferenceEngine so both
/// sort exactly the same rules into the anchor index. Underscores are
/// host characters here: real easylist carries rules like
/// ||ad_server.example^.
[[nodiscard]] std::string_view anchor_index_key(const Rule& rule) noexcept;

/// Shape of the compiled index; introspection for tests, benches and
/// docs. Every blocking rule lands in exactly one of the first three
/// buckets, every exception in one of the next two.
struct IndexStats {
  std::size_t anchored_rules = 0;         ///< host-keyed ||host^ blocking rules
  std::size_t tokenized_rules = 0;        ///< token-bucketed blocking rules
  std::size_t fallback_rules = 0;         ///< blocking rules always evaluated
  std::size_t tokenized_exceptions = 0;   ///< token-bucketed @@ rules
  std::size_t fallback_exceptions = 0;    ///< @@ rules always evaluated
  std::size_t literal_bytes = 0;          ///< arena bytes of compiled literals
};

/// Multi-list matcher. Blocking rules win unless an exception rule from
/// any list also matches (ABP semantics).
class Engine {
 public:
  /// Adds a list; the engine keeps its own copy and recompiles the
  /// whole index (rule storage is stable from then on).
  void add_list(FilterList list);

  /// Matches a request; `url` must be lower-case (tracker URLs in this
  /// model always are). Performs no heap allocation.
  [[nodiscard]] MatchResult match(const RequestContext& request) const;

  [[nodiscard]] std::size_t total_rules() const noexcept;
  [[nodiscard]] const IndexStats& index_stats() const noexcept { return stats_; }

 private:
  /// Unset third-party constraint ($third-party absent).
  static constexpr std::int8_t kAnyParty = -1;

  /// One rule lowered to flat, cache-friendly form: literal views into
  /// the arena, options as plain fields, $domain= entries as ids into
  /// the engine's domain table.
  struct CompiledRule {
    const Rule* source = nullptr;  ///< original rule (for MatchResult)
    std::string_view list;         ///< engine-owned list name
    std::uint32_t first_part = 0;  ///< span into part_pool_
    std::uint32_t part_count = 0;
    std::uint32_t first_include = 0;  ///< span into domain_pool_
    std::uint32_t include_count = 0;
    std::uint32_t first_exclude = 0;
    std::uint32_t exclude_count = 0;
    /// Position in the reference engine's linear-scan order; ties between
    /// token buckets are broken by it so the winning rule is identical.
    std::uint32_t order = 0;
    AnchorKind anchor = AnchorKind::None;
    bool end_anchor = false;
    std::int8_t third_party = kAnyParty;  ///< kAnyParty / 0 / 1
  };

  struct MatchScratch;  // per-call stack state; defined in engine.cpp

  void compile();
  [[nodiscard]] bool evaluate(const CompiledRule& rule, const RequestContext& request,
                              MatchScratch& scratch) const;

  std::vector<FilterList> lists_;

  // ---- compiled image (rebuilt by compile()) ----------------------
  util::Arena arena_;                         ///< literal + domain-name bytes
  std::vector<std::string_view> part_pool_;   ///< all rules' literals, flat
  std::vector<std::uint32_t> domain_pool_;    ///< all rules' $domain= ids, flat
  std::vector<std::string_view> domain_names_;  ///< id -> interned domain
  util::StringMap<std::uint32_t> domain_ids_;   ///< interned domain -> id
  std::vector<CompiledRule> compiled_;
  /// Domain-anchored blocking rules keyed by anchor host literal.
  util::StringMap<std::vector<std::uint32_t>> by_anchor_;
  /// Blocking rules / exceptions keyed by their rarest safe token hash.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> token_rules_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> token_exceptions_;
  /// Rules with no boundary-safe token: always evaluated.
  std::vector<std::uint32_t> fallback_rules_;
  std::vector<std::uint32_t> fallback_exceptions_;
  IndexStats stats_;
};

}  // namespace cbwt::filterlist
