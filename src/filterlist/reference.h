// Reference filter-list matcher: the pre-optimization naive engine kept
// verbatim as the executable specification of matching semantics. The
// indexed Engine (engine.h) must return bit-identical MatchResults —
// including *which* rule wins — on every input; the property suite
// (test_filterlist_equivalence) and fuzz_rule enforce that. Used by
// tests and benchmarks only; production code links Engine.
#pragma once

#include <string_view>
#include <unordered_map>
#include <vector>

#include "filterlist/engine.h"

namespace cbwt::filterlist {

/// Multi-list matcher with the same semantics as Engine, implemented as
/// a linear scan plus a host-anchor map: anchored rules are probed by
/// walking host suffixes (allocating a std::string per probe), all
/// other blocking rules are scanned in insertion order, and every
/// exception rule is scanned on each hit.
class ReferenceEngine {
 public:
  void add_list(FilterList list);

  [[nodiscard]] MatchResult match(const RequestContext& request) const;

  [[nodiscard]] std::size_t total_rules() const noexcept;

 private:
  struct IndexedRule {
    const Rule* rule;
    std::string_view list;
  };

  void index_rule(const Rule& rule, std::string_view list_name);
  [[nodiscard]] bool exception_matches(const RequestContext& request) const;

  std::vector<FilterList> lists_;
  /// Domain-anchored blocking rules keyed by anchor host.
  std::unordered_map<std::string, std::vector<IndexedRule>> by_anchor_;
  /// Blocking rules that need a linear scan.
  std::vector<IndexedRule> scan_rules_;
  std::vector<IndexedRule> exceptions_;
};

}  // namespace cbwt::filterlist
