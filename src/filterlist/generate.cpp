#include "filterlist/generate.h"

namespace cbwt::filterlist {

GeneratedLists generate_lists(const world::World& world, util::Rng& rng) {
  GeneratedLists lists;
  lists.easylist.push_back("! Title: synthetic easylist (cbwt)");
  lists.easyprivacy.push_back("! Title: synthetic easyprivacy (cbwt)");

  for (const auto& domain : world.domains()) {
    const auto& org = world.org(domain.org);
    if (domain.in_easylist) {
      // Ad/tracking blocking rules: mostly exact-FQDN anchors, some at
      // the registrable domain, some path-flavoured.
      const double roll = rng.next_double();
      if (roll < 0.55) {
        lists.easylist.push_back("||" + domain.fqdn + "^$third-party");
      } else if (roll < 0.80) {
        lists.easylist.push_back("||" + domain.registrable + "^$third-party");
      } else {
        lists.easylist.push_back("||" + domain.fqdn + "^*ad");
      }
    }
    if (domain.in_easyprivacy && org.role == world::OrgRole::Analytics) {
      if (rng.chance(0.7)) {
        lists.easyprivacy.push_back("||" + domain.fqdn + "^$third-party");
      } else {
        lists.easyprivacy.push_back("||" + domain.registrable + "^");
      }
    }
  }

  // Generic path rules, mirroring easylist's substring section. The
  // browser's URL shapes make entry ad requests hit these even when the
  // host rule above was not generated.
  lists.easylist.push_back("/adserve/");
  lists.easylist.push_back("/adframe/");
  lists.easylist.push_back("/banner/*/img^");
  lists.easylist.push_back("&ad_slot=");
  lists.easylist.push_back("-ad-unit/");
  lists.easylist.push_back("|https://ads.$third-party");

  lists.easyprivacy.push_back("/beacon?");
  lists.easyprivacy.push_back("/collect?");
  lists.easyprivacy.push_back("/telemetry/");
  lists.easyprivacy.push_back("/pageview?");

  // A couple of exception rules (acceptable-ads style): they keep the
  // exception code path honest.
  lists.easylist.push_back("@@||adserve.example-allowed.com/acceptable/$third-party");
  lists.easyprivacy.push_back("@@/collect?consent=optout");

  return lists;
}

}  // namespace cbwt::filterlist
