// Synthetic easylist / easyprivacy generation from the world model. The
// lists cover the well-known entry trackers (ad networks in easylist,
// analytics in easyprivacy) plus generic path rules, while chained
// DSP/sync endpoints are mostly absent — the deliberate coverage gap the
// paper's stage-2 classifier exists to close.
#pragma once

#include <string>
#include <vector>

#include "util/prng.h"
#include "world/world.h"

namespace cbwt::filterlist {

struct GeneratedLists {
  std::vector<std::string> easylist;
  std::vector<std::string> easyprivacy;
};

/// Emits both lists as raw text lines (comments included) so the parser
/// path is exercised end to end.
[[nodiscard]] GeneratedLists generate_lists(const world::World& world, util::Rng& rng);

}  // namespace cbwt::filterlist
