#include "classify/classifier.h"

#include <memory>
#include <unordered_set>

#include "classify/match_cache.h"
#include "net/domain.h"
#include "net/url.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "runtime/parallel.h"
#include "util/contract.h"
#include "util/prng.h"

namespace cbwt::classify {

namespace {

/// Cheap stable hash for URL-identity sets (collision odds are
/// negligible against dataset sizes here).
std::uint64_t hash_text(std::string_view text) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return util::mix64(h);
}

std::string_view host_of(std::string_view url) noexcept {
  const std::size_t scheme = url.find("://");
  if (scheme == std::string_view::npos) return {};
  const std::size_t start = scheme + 3;
  std::size_t end = url.find('/', start);
  if (end == std::string_view::npos) end = url.size();
  return url.substr(start, end - start);
}

bool url_has_arguments(std::string_view url) noexcept {
  const std::size_t q = url.find('?');
  return q != std::string_view::npos && q + 1 < url.size();
}

/// Match-cache key over the full engine input tuple. host/page_host are
/// derived from url/referrer today, but hashing all four keeps the key
/// honest if a caller ever widens the context.
std::uint64_t match_cache_key(const filterlist::RequestContext& context) noexcept {
  std::uint64_t h = hash_text(context.url);
  h = util::mix64(h ^ hash_text(context.host));
  h = util::mix64(h ^ hash_text(context.page_host));
  return util::mix64(h ^ (context.third_party ? 0x9E3779B97F4A7C15ULL : 0));
}

}  // namespace

std::string_view to_string(Method method) noexcept {
  switch (method) {
    case Method::None: return "none";
    case Method::AbpList: return "abp-list";
    case Method::Referrer: return "semi-referrer";
    case Method::Keyword: return "semi-keyword";
  }
  return "?";
}

Classifier::Classifier(filterlist::Engine engine, ClassifierConfig config)
    : engine_(std::move(engine)), config_(std::move(config)) {}

std::vector<Outcome> Classifier::run(const browser::ExtensionDataset& dataset,
                                     runtime::ThreadPool* pool,
                                     obs::Registry* registry) const {
  const auto& requests = dataset.requests;
  CBWT_EXPECTS(config_.max_iterations > 0 || !config_.enable_referrer_stage);
  std::vector<Outcome> outcomes(requests.size());

  // LTF identity: hashes of classified tracking URLs. Referrers of chained
  // requests carry the full parent URL, so exact identity suffices.
  std::unordered_set<std::uint64_t> ltf_urls;
  ltf_urls.reserve(requests.size() / 2);

  // Channel throughput of the sharded stages, surfaced after the run.
  runtime::ChannelStats channel_stats;

  // Optional stage-1 verdict cache; per-run so cached rule pointers can
  // never dangle across an add_list().
  std::unique_ptr<MatchCache> cache;
  if (config_.match_cache_capacity > 0) {
    cache = std::make_unique<MatchCache>(config_.match_cache_capacity,
                                         config_.match_cache_shards);
  }

  // ---- Stage 1: filter lists --------------------------------------
  // Request-local: each shard writes its own outcome slots and returns
  // the URL hashes it classified; hashes land in the LTF set in shard
  // order (set membership is order-free anyway).
  {
    obs::ScopedSpan span(registry, "classify/stage1_abp");
    span.set_items(requests.size());
    ltf_urls = runtime::sharded_reduce<std::unordered_set<std::uint64_t>>(
        pool, requests.size(), {.channel_stats = &channel_stats},
        /*seed=*/0, /*stage_label=*/0xC1A551F1,
        [&](runtime::ShardRange range, std::size_t shard, util::Rng& /*rng*/) {
          obs::ScopedTrace trace(registry, "classify/stage1/shard", shard);
          std::unordered_set<std::uint64_t> local;
          for (std::size_t i = range.begin; i < range.end; ++i) {
            const auto& request = requests[i];
            const std::string_view host = host_of(request.url);
            const std::string_view page_host = host_of(request.referrer).empty()
                                                   ? host  // defensive; referrer always set
                                                   : host_of(request.referrer);
            filterlist::RequestContext context;
            context.url = request.url;
            context.host = host;
            context.page_host = page_host;
            context.third_party = true;
            filterlist::MatchResult hit;
            if (cache != nullptr) {
              const std::uint64_t key = match_cache_key(context);
              if (const auto cached = cache->lookup(key)) {
                hit = *cached;
              } else {
                // Matching runs outside any shard lock; a racing thread
                // may redundantly match the same key, which only costs
                // one extra insert.
                hit = engine_.match(context);
                cache->insert(key, hit);
              }
            } else {
              hit = engine_.match(context);
            }
            if (hit.matched) {
              outcomes[i] = {Method::AbpList, hit.list};
              local.insert(hash_text(request.url));
            }
          }
          return local;
        },
        [](std::unordered_set<std::uint64_t>& acc,
           std::unordered_set<std::uint64_t>&& part) { acc.merge(part); },
        std::move(ltf_urls));
  }

  // ---- Stage 2: referrer chaining to fixpoint ----------------------
  if (config_.enable_referrer_stage) {
    obs::ScopedSpan span(registry, "classify/stage2_referrer");
    span.set_items(requests.size());
    bool changed = true;
    for (std::size_t pass = 0; changed && pass < config_.max_iterations; ++pass) {
      changed = false;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (outcomes[i].method != Method::None) continue;
        const auto& request = requests[i];
        if (!url_has_arguments(request.url)) continue;
        if (request.referrer.empty()) continue;
        if (ltf_urls.contains(hash_text(request.referrer))) {
          outcomes[i] = {Method::Referrer, {}};
          ltf_urls.insert(hash_text(request.url));
          changed = true;
        }
      }
    }
  }

  // ---- Stage 3: argument keywords ----------------------------------
  // Also request-local: nothing downstream reads the LTF set, so shards
  // only write their own outcome slots.
  if (config_.enable_keyword_stage) {
    obs::ScopedSpan span(registry, "classify/stage3_keyword");
    span.set_items(requests.size());
    runtime::parallel_for(pool, requests.size(), {},
                          [&](runtime::ShardRange range, std::size_t shard) {
      obs::ScopedTrace trace(registry, "classify/stage3/shard", shard);
      for (std::size_t i = range.begin; i < range.end; ++i) {
        if (outcomes[i].method != Method::None) continue;
        const auto& request = requests[i];
        if (!url_has_arguments(request.url)) continue;
        const auto url = net::Url::parse(request.url);
        if (!url) continue;
        for (const auto& [key, value] : url->arguments()) {
          bool hit = false;
          for (const auto& keyword : config_.keywords) {
            if (key == keyword) {
              hit = true;
              break;
            }
          }
          if (hit) {
            outcomes[i] = {Method::Keyword, {}};
            break;
          }
        }
      }
    });
  }

  // The Table 2 breakdown, live: one extra O(n) scan, only when someone
  // is watching. Purely observational — outcomes are already final.
  if (registry != nullptr) {
    std::uint64_t rule_hits = 0;
    std::uint64_t referrer_promotions = 0;
    std::uint64_t keyword_promotions = 0;
    for (const auto& outcome : outcomes) {
      switch (outcome.method) {
        case Method::AbpList: ++rule_hits; break;
        case Method::Referrer: ++referrer_promotions; break;
        case Method::Keyword: ++keyword_promotions; break;
        case Method::None: break;
      }
    }
    registry->counter("cbwt_classify_requests_total").add(requests.size());
    registry->counter("cbwt_classify_rule_hits_total").add(rule_hits);
    registry->counter("cbwt_classify_referrer_promotions_total")
        .add(referrer_promotions);
    registry->counter("cbwt_classify_keyword_promotions_total").add(keyword_promotions);
    if (cache != nullptr) {
      registry->counter("cbwt_classify_cache_hits_total").add(cache->hits());
      registry->counter("cbwt_classify_cache_misses_total").add(cache->misses());
    }
    obs::record_channel_stats(registry, channel_stats);
  }

  return outcomes;
}

ClassificationSummary summarize(const browser::ExtensionDataset& dataset,
                                const std::vector<Outcome>& outcomes) {
  CBWT_EXPECTS(outcomes.size() == dataset.requests.size());
  ClassificationSummary summary;
  struct Sets {
    std::unordered_set<std::string_view> fqdns;
    std::unordered_set<std::string_view> registrables;
    std::unordered_set<std::uint64_t> urls;
  };
  Sets abp_sets;
  Sets semi_sets;
  Sets total_sets;

  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    const auto& request = dataset.requests[i];
    const Method method = outcomes[i].method;
    if (!is_tracking(method)) {
      ++summary.untracked_requests;
      continue;
    }
    const std::string_view host = host_of(request.url);
    const std::string_view registrable = net::registrable_domain(host);
    const std::uint64_t url_hash = hash_text(request.url);

    Sets& sets = method == Method::AbpList ? abp_sets : semi_sets;
    StageStats& stats = method == Method::AbpList ? summary.abp : summary.semi;
    ++stats.total_requests;
    sets.fqdns.insert(host);
    sets.registrables.insert(registrable);
    sets.urls.insert(url_hash);

    ++summary.total.total_requests;
    total_sets.fqdns.insert(host);
    total_sets.registrables.insert(registrable);
    total_sets.urls.insert(url_hash);
  }

  const auto fill = [](StageStats& stats, const Sets& sets) {
    stats.fqdns = sets.fqdns.size();
    stats.registrables = sets.registrables.size();
    stats.unique_urls = sets.urls.size();
  };
  fill(summary.abp, abp_sets);
  fill(summary.semi, semi_sets);
  fill(summary.total, total_sets);
  return summary;
}

double Score::precision() const noexcept {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double Score::recall() const noexcept {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

Score score_against_truth(const world::World& world,
                          const browser::ExtensionDataset& dataset,
                          const std::vector<Outcome>& outcomes) {
  CBWT_EXPECTS(outcomes.size() == dataset.requests.size());
  Score score;
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    const auto& request = dataset.requests[i];
    const bool truly_tracking =
        world.org(world.domain(request.domain).org).role != world::OrgRole::CleanService;
    const bool flagged = is_tracking(outcomes[i].method);
    if (truly_tracking && flagged) ++score.true_positives;
    else if (truly_tracking) ++score.false_negatives;
    else if (flagged) ++score.false_positives;
    else ++score.true_negatives;
  }
  return score;
}

}  // namespace cbwt::classify
