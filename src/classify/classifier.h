// Tracking-flow classification, reproducing §3.2 of the paper:
//
//   Stage 1 ("ABP"):   match every third-party request against the
//                      easylist + easyprivacy engine -> LTF / NTF split.
//   Stage 2 ("SEMI-referrer"): promote NTF requests whose referrer points
//                      into the LTF *and* whose URL carries arguments —
//                      these are the chained requests an ad blocker would
//                      have prevented from ever firing. Runs to fixpoint
//                      so deep cookie-sync cascades are caught.
//   Stage 3 ("SEMI-keyword"): promote remaining NTF requests whose URL
//                      has arguments and a well-known tracking keyword
//                      (usermatch, cookiesync, rtb, ...).
//
// Ground truth from the world model is never consulted here; it is only
// used by tests and ablations to score the classifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "browser/extension.h"
#include "filterlist/engine.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace cbwt::classify {

/// How a request ended up classified as a tracking flow.
enum class Method : std::uint8_t {
  None,      ///< not classified as tracking (stays in NTF)
  AbpList,   ///< stage 1: easylist/easyprivacy rule hit
  Referrer,  ///< stage 2: referrer chained into the LTF + URL arguments
  Keyword,   ///< stage 3: URL arguments + tracking keyword
};

[[nodiscard]] std::string_view to_string(Method method) noexcept;

/// True when the method marks a tracking flow.
[[nodiscard]] constexpr bool is_tracking(Method method) noexcept {
  return method != Method::None;
}

struct ClassifierConfig {
  bool enable_referrer_stage = true;
  bool enable_keyword_stage = true;
  /// Query-argument keys treated as tracking keywords (paper: built
  /// empirically; "usermatch", "rtb", "cookiesync", etc.).
  std::vector<std::string> keywords = {"usermatch", "cookiesync", "uid_sync",
                                       "idsync",    "cm",         "rtb"};
  /// Maximum fixpoint iterations of the referrer stage.
  std::size_t max_iterations = 6;
  /// Stage-1 match-cache entry budget; 0 disables the cache. Off by
  /// default so determinism sweeps exercise the raw engine path (the
  /// cache's hit/miss *counter split* is timing-dependent across
  /// threads, though outcomes are identical either way).
  std::size_t match_cache_capacity = 0;
  /// Lock shards of the match cache (concurrency knob, not semantics).
  std::size_t match_cache_shards = 8;
};

/// Per-request classification outcome, parallel to the dataset. `list`
/// views the engine-owned list name (no per-request allocation), so
/// outcomes must not outlive the classifier that produced them.
struct Outcome {
  Method method = Method::None;
  std::string_view list;  ///< matching list name for Method::AbpList
};

/// The classifier owns its engine (matching is the hot path, so the
/// engine is moved in rather than re-parsed per run).
class Classifier {
 public:
  Classifier(filterlist::Engine engine, ClassifierConfig config = {});

  /// Classifies every request of the dataset. Output[i] corresponds to
  /// dataset.requests[i].
  ///
  /// Stages 1 and 3 are request-local and shard across `pool` (the
  /// referrer fixpoint of stage 2 stays serial — its passes are cheap and
  /// order-sensitive). Results are bit-identical for any pool size,
  /// including none.
  ///
  /// `registry` (optional) records one span per stage plus the Table 2
  /// breakdown counters (cbwt_classify_rule_hits_total, referrer /
  /// keyword promotions) and the sharded stages' channel throughput.
  /// Instrumentation never affects the outcomes.
  [[nodiscard]] std::vector<Outcome> run(const browser::ExtensionDataset& dataset,
                                         runtime::ThreadPool* pool = nullptr,
                                         obs::Registry* registry = nullptr) const;

  [[nodiscard]] const filterlist::Engine& engine() const noexcept { return engine_; }

 private:
  filterlist::Engine engine_;
  ClassifierConfig config_;
};

/// Aggregates for the paper's Table 2 rows.
struct StageStats {
  std::uint64_t fqdns = 0;        ///< distinct third-party FQDNs
  std::uint64_t registrables = 0; ///< distinct registrable domains ("TLD")
  std::uint64_t unique_urls = 0;
  std::uint64_t total_requests = 0;
};

struct ClassificationSummary {
  StageStats abp;    ///< stage 1
  StageStats semi;   ///< stages 2+3 combined
  StageStats total;  ///< union
  std::uint64_t untracked_requests = 0;  ///< NTF size
};

[[nodiscard]] ClassificationSummary summarize(const browser::ExtensionDataset& dataset,
                                              const std::vector<Outcome>& outcomes);

/// Scoring against world ground truth (tests / ablations only): a request
/// is truly tracking when its domain's org is not a CleanService.
struct Score {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t true_negatives = 0;

  [[nodiscard]] double precision() const noexcept;
  [[nodiscard]] double recall() const noexcept;
};

[[nodiscard]] Score score_against_truth(const world::World& world,
                                        const browser::ExtensionDataset& dataset,
                                        const std::vector<Outcome>& outcomes);

}  // namespace cbwt::classify
