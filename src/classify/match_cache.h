// Sharded LRU cache for filter-engine verdicts. The extension dataset
// repeats URLs heavily (the same tracker endpoints fire on every page),
// so Classifier::run can skip most Engine::match calls once a verdict
// for the same (url, host, page_host, third_party) tuple is cached.
//
// Cached values hold pointers/views into engine-owned storage
// (MatchResult::rule / ::list), so a cache must not outlive its engine
// or span an add_list(); Classifier::run creates one per run.
//
// Sharding: the key's top bits pick a shard, each with its own mutex,
// map and LRU list, so stage-1 worker threads rarely contend. Hit and
// miss totals are per-shard and aggregated on demand; with multiple
// threads the split between hits and misses is timing-dependent (two
// shards may race to insert the same key), which is why the cache is
// off by default wherever determinism sweeps compare metric values.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "filterlist/engine.h"
#include "util/contract.h"
#include "util/thread_annotations.h"

namespace cbwt::classify {

class MatchCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry).
  MatchCache(std::size_t capacity, std::size_t shards)
      : shards_(shards == 0 ? 1 : shards) {
    CBWT_EXPECTS(capacity > 0);
    const std::size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
    for (auto& shard : shards_) {
      shard.capacity = per_shard > 0 ? per_shard : 1;
    }
  }

  /// Returns the cached verdict for `key`, refreshing its LRU position.
  [[nodiscard]] std::optional<filterlist::MatchResult> lookup(std::uint64_t key) {
    Shard& shard = shard_of(key);
    const util::MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->second;
  }

  /// Inserts (or refreshes) a verdict, evicting the shard's least
  /// recently used entry when full.
  void insert(std::uint64_t key, const filterlist::MatchResult& result) {
    Shard& shard = shard_of(key);
    const util::MutexLock lock(shard.mutex);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      it->second->second = result;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
    }
    shard.lru.emplace_front(key, result);
    shard.index.emplace(key, shard.lru.begin());
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    std::uint64_t total = 0;
    for (auto& shard : shards_) {
      const util::MutexLock lock(shard.mutex);
      total += shard.hits;
    }
    return total;
  }

  [[nodiscard]] std::uint64_t misses() const noexcept {
    std::uint64_t total = 0;
    for (auto& shard : shards_) {
      const util::MutexLock lock(shard.mutex);
      total += shard.misses;
    }
    return total;
  }

 private:
  using LruList = std::list<std::pair<std::uint64_t, filterlist::MatchResult>>;

  struct Shard {
    mutable util::Mutex mutex;
    LruList lru CBWT_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, LruList::iterator> index CBWT_GUARDED_BY(mutex);
    std::size_t capacity = 0;  ///< immutable after construction
    std::uint64_t hits CBWT_GUARDED_BY(mutex) = 0;
    std::uint64_t misses CBWT_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) noexcept {
    // Keys are already well-mixed hashes; the top bits are independent
    // of unordered_map's use of the low bits.
    return shards_[(key >> 56) % shards_.size()];
  }

  // Never resized after construction (Shard is immovable: it holds a
  // mutex); Shard::mutex is mutable so hits()/misses() can lock from
  // const.
  std::vector<Shard> shards_;
};

}  // namespace cbwt::classify
