// Minimal streaming JSON writer: enough to export analysis artifacts
// (Sankey matrices, confinement tables) without a third-party
// dependency. Handles escaping and nesting bookkeeping; misuse (value
// without a key inside an object, unbalanced end) throws logic_error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cbwt::report {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  /// Non-finite doubles (NaN, ±Inf) emit null — JSON has no literal for
  /// them and a run report must stay machine-parseable.
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The finished document; throws if containers are still open.
  [[nodiscard]] std::string str() const;

  /// Escapes a string for embedding in JSON (quotes not included).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace cbwt::report
