#include "report/export.h"

#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>

#include "report/json.h"

namespace cbwt::report {

std::string flows_to_csv(const analysis::FlowAnalyzer& analyzer,
                         std::span<const analysis::Flow> flows) {
  std::string out = "origin_country,destination_country,weight\n";
  const auto matrix = analyzer.country_matrix(flows);
  for (const auto& [origin, row] : matrix) {
    for (const auto& [destination, weight] : row) {
      out += origin + "," + destination + "," + std::to_string(weight) + "\n";
    }
  }
  return out;
}

std::string sankey_to_json(
    const std::map<std::string, std::map<std::string, std::uint64_t>>& matrix) {
  // Collect node names: origins get an "src:" namespace so a country can
  // appear on both sides of the diagram, as in the paper's figures.
  std::vector<std::string> nodes;
  std::map<std::string, std::size_t> node_index;
  const auto intern = [&](const std::string& name) {
    const auto it = node_index.find(name);
    if (it != node_index.end()) return it->second;
    const std::size_t index = nodes.size();
    nodes.push_back(name);
    node_index.emplace(name, index);
    return index;
  };
  struct Link {
    std::size_t source;
    std::size_t target;
    std::uint64_t value;
  };
  std::vector<Link> links;
  for (const auto& [origin, row] : matrix) {
    const auto source = intern("src:" + origin);
    for (const auto& [destination, weight] : row) {
      links.push_back({source, intern("dst:" + destination), weight});
    }
  }

  JsonWriter json;
  json.begin_object();
  json.key("nodes").begin_array();
  for (const auto& node : nodes) {
    json.begin_object().key("name").value(node).end_object();
  }
  json.end_array();
  json.key("links").begin_array();
  for (const auto& link : links) {
    json.begin_object()
        .key("source").value(static_cast<std::uint64_t>(link.source))
        .key("target").value(static_cast<std::uint64_t>(link.target))
        .key("value").value(link.value)
        .end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string confinement_to_json(
    const std::map<std::string, analysis::Confinement>& per_origin) {
  JsonWriter json;
  json.begin_object();
  for (const auto& [origin, confinement] : per_origin) {
    json.key(origin).begin_object()
        .key("flows").value(confinement.total)
        .key("in_country_pct").value(confinement.in_country)
        .key("in_eu28_pct").value(confinement.in_eu28)
        .key("in_continent_pct").value(confinement.in_continent)
        .end_object();
  }
  json.end_object();
  return json.str();
}

std::string classification_to_json(const classify::ClassificationSummary& summary) {
  JsonWriter json;
  json.begin_object();
  const auto stage = [&](const char* name, const classify::StageStats& stats) {
    json.key(name).begin_object()
        .key("fqdns").value(stats.fqdns)
        .key("registrable_domains").value(stats.registrables)
        .key("unique_requests").value(stats.unique_urls)
        .key("total_requests").value(stats.total_requests)
        .end_object();
  };
  stage("abp_lists", summary.abp);
  stage("semi_automatic", summary.semi);
  stage("total", summary.total);
  json.key("non_tracking_requests").value(summary.untracked_requests);
  json.end_object();
  return json.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  if (std::fwrite(contents.data(), 1, contents.size(), file.get()) != contents.size()) {
    throw std::runtime_error("short write: " + path);
  }
}

}  // namespace cbwt::report
