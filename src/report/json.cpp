#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cbwt::report {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Frame::Object && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside object requires key()");
  }
  if (stack_.back() == Frame::Array) {
    if (!first_in_frame_.back()) out_ += ',';
    first_in_frame_.back() = false;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::Object) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: consecutive key()");
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::Object);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object()");
  }
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::Array);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw std::logic_error("JsonWriter: unbalanced end_array()");
  }
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  // JSON has no NaN/Infinity literals; null is the conventional carrier
  // (metrics exporters hit this with empty-histogram means and the like).
  if (!std::isfinite(number)) {
    out_ += "null";
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", number);
    out_ += buffer;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: document incomplete");
  return out_;
}

}  // namespace cbwt::report
