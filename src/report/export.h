// Export of analysis artifacts to interchange formats — the hooks a
// downstream user (a DPA dashboard, the paper's own Sankey plots) needs:
// flows as CSV, Sankey matrices and confinement tables as JSON.
#pragma once

#include <map>
#include <span>
#include <string>

#include "analysis/flows.h"
#include "classify/classifier.h"

namespace cbwt::report {

/// CSV of aggregated flows: origin_country,destination_country,weight.
/// Destinations are resolved through the analyzer's geolocation tool.
[[nodiscard]] std::string flows_to_csv(const analysis::FlowAnalyzer& analyzer,
                                       std::span<const analysis::Flow> flows);

/// JSON Sankey document: {"nodes":[...], "links":[{"source","target","value"}]}
/// from an origin->destination matrix (country- or region-level).
[[nodiscard]] std::string sankey_to_json(
    const std::map<std::string, std::map<std::string, std::uint64_t>>& matrix);

/// JSON per-origin confinement table (Fig. 8 / Fig. 11 data series).
[[nodiscard]] std::string confinement_to_json(
    const std::map<std::string, analysis::Confinement>& per_origin);

/// JSON of the Table-2 classification summary.
[[nodiscard]] std::string classification_to_json(
    const classify::ClassificationSummary& summary);

/// Writes text to a file; throws std::runtime_error on I/O failure.
void write_file(const std::string& path, std::string_view contents);

}  // namespace cbwt::report
