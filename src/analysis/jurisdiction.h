// Jurisdiction-scoped confinement — the generalization the paper's
// conclusion announces: "include the monitoring of other regulations in
// the future at different regional scope (e.g., USA)". A jurisdiction is
// any named set of countries; confinement of a flow set against it asks
// how much terminates inside the set, regardless of the user's own
// country.
#pragma once

#include <set>
#include <span>
#include <string>

#include "analysis/flows.h"

namespace cbwt::analysis {

/// A named data-protection scope.
struct Jurisdiction {
  std::string name;
  std::set<std::string> members;  ///< ISO country codes

  [[nodiscard]] bool contains(std::string_view country) const {
    return members.contains(std::string(country));
  }
};

/// The 2018 EU28 / GDPR scope (built from the country registry).
[[nodiscard]] Jurisdiction gdpr_jurisdiction();

/// Single-country scopes for national laws (e.g. telecom/minor-protection
/// rules the paper mentions have national scope only).
[[nodiscard]] Jurisdiction national_jurisdiction(std::string_view country);

/// A US scope (CCPA/COPPA-style monitoring).
[[nodiscard]] Jurisdiction us_jurisdiction();

/// EEA-ish scope: EU28 plus Norway/Switzerland, for what-if comparisons.
[[nodiscard]] Jurisdiction eea_plus_jurisdiction();

/// Confinement of a flow set against an arbitrary jurisdiction.
struct JurisdictionReport {
  std::string jurisdiction;
  std::uint64_t total = 0;
  std::uint64_t inside = 0;       ///< flows terminating inside the scope
  std::uint64_t from_inside = 0;  ///< flows originating inside the scope
  /// Flows that both originate and terminate inside (fully covered).
  std::uint64_t covered = 0;

  [[nodiscard]] double inside_pct() const noexcept {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(inside) / static_cast<double>(total);
  }
  [[nodiscard]] double covered_pct() const noexcept {
    return from_inside == 0 ? 0.0
                            : 100.0 * static_cast<double>(covered) /
                                  static_cast<double>(from_inside);
  }
};

[[nodiscard]] JurisdictionReport jurisdiction_confinement(
    const geoloc::GeoService& service, geoloc::Tool tool,
    const Jurisdiction& jurisdiction, std::span<const Flow> flows);

}  // namespace cbwt::analysis
