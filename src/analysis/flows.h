// Border-crossing analysis of tracking flows (§4): aggregates flows by
// origin country / destination location under a chosen geolocation tool,
// computes confinement at national, EU28 and continent level, and builds
// the origin->destination matrices behind the paper's Sankey diagrams.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "browser/extension.h"
#include "classify/classifier.h"
#include "geoloc/service.h"

namespace cbwt::analysis {

/// A (possibly aggregated) tracking flow: origin user country ->
/// destination server IP, with a request-count weight.
struct Flow {
  std::string origin_country;
  net::IpAddress destination;
  std::uint64_t weight = 1;
};

/// Extracts the classified tracking flows from an extension dataset
/// (the world maps each request's user to their country).
[[nodiscard]] std::vector<Flow> tracking_flows(const world::World& world,
                                               const browser::ExtensionDataset& dataset,
                                               const std::vector<classify::Outcome>& outcomes);

/// Keeps only flows originating in `region`.
[[nodiscard]] std::vector<Flow> flows_from_region(std::span<const Flow> flows,
                                                  geo::Region region);

/// Keeps only flows originating in `country`.
[[nodiscard]] std::vector<Flow> flows_from_country(std::span<const Flow> flows,
                                                   std::string_view country);

/// Weighted destination-region shares (Fig. 6 / Fig. 7 slices).
struct RegionBreakdown {
  std::map<geo::Region, double> share;      ///< sums to ~1 over located flows
  std::uint64_t located = 0;                ///< weight with a known location
  std::uint64_t unknown = 0;                ///< weight that failed to geolocate
};

/// Confinement percentages for a flow set (paper's headline metrics).
struct Confinement {
  std::uint64_t total = 0;
  double in_country = 0.0;     ///< % terminating in the origin country
  double in_eu28 = 0.0;        ///< % terminating inside EU28
  double in_continent = 0.0;   ///< % terminating on the origin's continent
};

/// Analyzer bound to one geolocation tool; swapping the tool is exactly
/// the paper's Fig. 7(a)-vs-7(b) experiment.
class FlowAnalyzer {
 public:
  FlowAnalyzer(const geoloc::GeoService& service, geoloc::Tool tool);

  [[nodiscard]] RegionBreakdown destination_regions(std::span<const Flow> flows) const;

  /// origin country -> destination country -> weight (Fig. 8 matrix).
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  country_matrix(std::span<const Flow> flows) const;

  /// origin region -> destination region -> weight (Fig. 6 matrix).
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  region_matrix(std::span<const Flow> flows) const;

  [[nodiscard]] Confinement confinement(std::span<const Flow> flows) const;

  /// Per-origin-country confinement (Fig. 8 / Fig. 11 rows).
  [[nodiscard]] std::map<std::string, Confinement> per_origin_confinement(
      std::span<const Flow> flows) const;

  /// Weighted destination-country shares of a flow set (Fig. 12 slices).
  [[nodiscard]] std::map<std::string, double> destination_countries(
      std::span<const Flow> flows) const;

  [[nodiscard]] geoloc::Tool tool() const noexcept { return tool_; }

 private:
  [[nodiscard]] std::string locate(const net::IpAddress& ip) const;
  /// Batch-measures the flows' destinations up front (active tool only):
  /// same verdicts as on-demand lookups, but sharded across the
  /// service's thread pool instead of serialized through the cache.
  void warm_cache(std::span<const Flow> flows) const;

  const geoloc::GeoService* service_;
  geoloc::Tool tool_;
};

}  // namespace cbwt::analysis
