#include "analysis/flows.h"

namespace cbwt::analysis {

std::vector<Flow> tracking_flows(const world::World& world,
                                 const browser::ExtensionDataset& dataset,
                                 const std::vector<classify::Outcome>& outcomes) {
  std::vector<Flow> flows;
  flows.reserve(dataset.requests.size() / 2);
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    const auto& request = dataset.requests[i];
    // The extension logs the user's country, never their IP (§3.1 ethics).
    Flow flow;
    flow.origin_country = world.users().at(request.user).country;
    flow.destination = request.server_ip;
    flow.weight = 1;
    flows.push_back(std::move(flow));
  }
  return flows;
}

std::vector<Flow> flows_from_region(std::span<const Flow> flows, geo::Region region) {
  std::vector<Flow> out;
  for (const auto& flow : flows) {
    const auto origin_region = geo::region_of_code(flow.origin_country);
    if (origin_region && *origin_region == region) out.push_back(flow);
  }
  return out;
}

std::vector<Flow> flows_from_country(std::span<const Flow> flows,
                                     std::string_view country) {
  std::vector<Flow> out;
  for (const auto& flow : flows) {
    if (flow.origin_country == country) out.push_back(flow);
  }
  return out;
}

FlowAnalyzer::FlowAnalyzer(const geoloc::GeoService& service, geoloc::Tool tool)
    : service_(&service), tool_(tool) {}

std::string FlowAnalyzer::locate(const net::IpAddress& ip) const {
  return service_->locate(ip, tool_);
}

void FlowAnalyzer::warm_cache(std::span<const Flow> flows) const {
  if (tool_ != geoloc::Tool::ActiveIpmap) return;  // other tools are cheap lookups
  std::vector<net::IpAddress> ips;
  ips.reserve(flows.size());
  for (const auto& flow : flows) ips.push_back(flow.destination);
  service_->prefetch(ips);
}

RegionBreakdown FlowAnalyzer::destination_regions(std::span<const Flow> flows) const {
  warm_cache(flows);
  RegionBreakdown breakdown;
  std::map<geo::Region, std::uint64_t> weights;
  for (const auto& flow : flows) {
    const auto region = service_->region(flow.destination, tool_);
    if (!region) {
      breakdown.unknown += flow.weight;
      continue;
    }
    weights[*region] += flow.weight;
    breakdown.located += flow.weight;
  }
  for (const auto& [region, weight] : weights) {
    breakdown.share[region] =
        static_cast<double>(weight) / static_cast<double>(breakdown.located);
  }
  return breakdown;
}

std::map<std::string, std::map<std::string, std::uint64_t>> FlowAnalyzer::country_matrix(
    std::span<const Flow> flows) const {
  warm_cache(flows);
  std::map<std::string, std::map<std::string, std::uint64_t>> matrix;
  for (const auto& flow : flows) {
    auto destination = locate(flow.destination);
    if (destination.empty()) destination = "unknown";
    matrix[flow.origin_country][destination] += flow.weight;
  }
  return matrix;
}

std::map<std::string, std::map<std::string, std::uint64_t>> FlowAnalyzer::region_matrix(
    std::span<const Flow> flows) const {
  warm_cache(flows);
  std::map<std::string, std::map<std::string, std::uint64_t>> matrix;
  for (const auto& flow : flows) {
    const auto origin_region = geo::region_of_code(flow.origin_country);
    const auto dest_region = service_->region(flow.destination, tool_);
    const std::string origin =
        origin_region ? std::string(geo::to_string(*origin_region)) : "unknown";
    const std::string destination =
        dest_region ? std::string(geo::to_string(*dest_region)) : "unknown";
    matrix[origin][destination] += flow.weight;
  }
  return matrix;
}

Confinement FlowAnalyzer::confinement(std::span<const Flow> flows) const {
  warm_cache(flows);
  Confinement result;
  std::uint64_t in_country = 0;
  std::uint64_t in_eu28 = 0;
  std::uint64_t in_continent = 0;
  for (const auto& flow : flows) {
    result.total += flow.weight;
    const auto destination = locate(flow.destination);
    if (destination.empty()) continue;
    if (destination == flow.origin_country) in_country += flow.weight;
    const geo::Country* dest = geo::find_country(destination);
    const geo::Country* origin = geo::find_country(flow.origin_country);
    if (dest != nullptr && dest->eu28) in_eu28 += flow.weight;
    if (dest != nullptr && origin != nullptr && dest->continent == origin->continent) {
      in_continent += flow.weight;
    }
  }
  if (result.total > 0) {
    const auto total = static_cast<double>(result.total);
    result.in_country = 100.0 * static_cast<double>(in_country) / total;
    result.in_eu28 = 100.0 * static_cast<double>(in_eu28) / total;
    result.in_continent = 100.0 * static_cast<double>(in_continent) / total;
  }
  return result;
}

std::map<std::string, Confinement> FlowAnalyzer::per_origin_confinement(
    std::span<const Flow> flows) const {
  std::map<std::string, std::vector<Flow>> by_origin;
  for (const auto& flow : flows) by_origin[flow.origin_country].push_back(flow);
  std::map<std::string, Confinement> out;
  for (const auto& [origin, subset] : by_origin) {
    out[origin] = confinement(subset);
  }
  return out;
}

std::map<std::string, double> FlowAnalyzer::destination_countries(
    std::span<const Flow> flows) const {
  warm_cache(flows);
  std::map<std::string, std::uint64_t> weights;
  std::uint64_t total = 0;
  for (const auto& flow : flows) {
    auto destination = locate(flow.destination);
    if (destination.empty()) destination = "unknown";
    weights[destination] += flow.weight;
    total += flow.weight;
  }
  std::map<std::string, double> shares;
  for (const auto& [country, weight] : weights) {
    shares[country] = total == 0 ? 0.0
                                 : static_cast<double>(weight) / static_cast<double>(total);
  }
  return shares;
}

}  // namespace cbwt::analysis
