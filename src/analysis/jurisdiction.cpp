#include "analysis/jurisdiction.h"

#include "geo/country.h"

namespace cbwt::analysis {

Jurisdiction gdpr_jurisdiction() {
  Jurisdiction jurisdiction;
  jurisdiction.name = "GDPR (EU28)";
  for (const auto& country : geo::all_countries()) {
    if (country.eu28) jurisdiction.members.insert(std::string(country.code));
  }
  return jurisdiction;
}

Jurisdiction national_jurisdiction(std::string_view country) {
  Jurisdiction jurisdiction;
  jurisdiction.name = "national (" + std::string(country) + ")";
  jurisdiction.members.insert(std::string(country));
  return jurisdiction;
}

Jurisdiction us_jurisdiction() {
  Jurisdiction jurisdiction;
  jurisdiction.name = "USA";
  jurisdiction.members.insert("US");
  return jurisdiction;
}

Jurisdiction eea_plus_jurisdiction() {
  Jurisdiction jurisdiction = gdpr_jurisdiction();
  jurisdiction.name = "EU28 + NO/CH";
  jurisdiction.members.insert("NO");
  jurisdiction.members.insert("CH");
  return jurisdiction;
}

JurisdictionReport jurisdiction_confinement(const geoloc::GeoService& service,
                                            geoloc::Tool tool,
                                            const Jurisdiction& jurisdiction,
                                            std::span<const Flow> flows) {
  JurisdictionReport report;
  report.jurisdiction = jurisdiction.name;
  for (const auto& flow : flows) {
    report.total += flow.weight;
    const bool origin_inside = jurisdiction.contains(flow.origin_country);
    if (origin_inside) report.from_inside += flow.weight;
    const auto destination = service.locate(flow.destination, tool);
    if (destination.empty()) continue;
    const bool destination_inside = jurisdiction.contains(destination);
    if (destination_inside) report.inside += flow.weight;
    if (origin_inside && destination_inside) report.covered += flow.weight;
  }
  return report;
}

}  // namespace cbwt::analysis
