// Deterministic data-parallel layer over the ThreadPool.
//
// The invariant every helper here upholds: **results are bit-identical
// to the serial execution at any worker count.** Three rules make that
// hold:
//
//   1. Shard boundaries depend only on the item count and ShardOptions —
//      never on how many threads happen to exist (plan_shards).
//   2. Randomized stages draw from one util::Rng *per shard*, derived
//      statelessly from (seed, stage label, shard index) — never from a
//      generator shared across shards (shard_rng).
//   3. Shard outputs are delivered in shard-index order, re-sequenced
//      through a reorder buffer when they arrive out of order
//      (ordered_stream, and sharded_reduce built on it).
//
// With those rules, `threads == 1` (run the shards inline, in order, on
// the calling thread) is the *definition* of the result, and the pool
// merely computes the same function faster.
#pragma once

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/channel.h"
#include "runtime/thread_pool.h"
#include "util/contract.h"
#include "util/prng.h"
#include "util/thread_annotations.h"

namespace cbwt::runtime {

/// Half-open index range [begin, end) owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

struct ShardOptions {
  /// Floor on items per shard; tiny inputs collapse to one shard rather
  /// than paying scheduling overhead per handful of items.
  std::size_t min_shard_items = 1024;
  /// Cap on the number of shards (bounds reorder-buffer memory and
  /// keeps the per-shard RNG label space small).
  std::size_t max_shards = 64;
  /// When non-null, sharded_reduce folds its streaming channel's
  /// counters in here after the stream drains (observability hook; the
  /// serial path uses no channel and leaves the sink untouched). Not
  /// consulted by plan_shards, so the shard plan — and determinism —
  /// is unaffected.
  ChannelStats* channel_stats = nullptr;
};

/// Splits [0, n) into contiguous shards. Pure function of (n, options):
/// the plan — and therefore every derived RNG stream — is identical no
/// matter how many workers later execute it.
[[nodiscard]] std::vector<ShardRange> plan_shards(std::size_t n,
                                                  const ShardOptions& options = {});

/// The per-shard generator of rule 2: stateless in (seed, label, shard),
/// so shard streams are independent and reproducible in isolation.
[[nodiscard]] inline util::Rng shard_rng(std::uint64_t seed, std::uint64_t stage_label,
                                         std::uint64_t shard) noexcept {
  return util::Rng(util::mix64(util::mix64(seed ^ util::mix64(stage_label)) ^
                               util::mix64(shard + 0x5A17ED5EEDULL)));
}

namespace detail {

/// Runs `task(shard_index)` for every shard index in [0, count).
/// Serial (pool == nullptr or single worker): in shard order, inline.
/// Parallel: workers claim indices from a shared cursor; the caller
/// participates, so progress never depends on pool availability. The
/// first exception wins and is rethrown on the caller after the batch
/// drains; remaining shards still run (their task must tolerate that).
///
/// Lifetime note: pool tasks may outlive this call by a few
/// instructions (loop-top re-check after the last shard finishes), so
/// everything they touch then lives in the shared Batch — the caller's
/// `task` is only ever entered for a claimed shard, and every claim
/// happens before the last finish.
template <typename Task>
void run_shards(ThreadPool* pool, std::size_t count, Task&& task) {
  if (count == 0) return;
  if (pool == nullptr || pool->size() <= 1 || count == 1) {
    for (std::size_t shard = 0; shard < count; ++shard) task(shard);
    return;
  }

  struct Batch {
    util::Mutex mutex;
    std::condition_variable done_cv;
    std::size_t count = 0;  ///< immutable once the batch is shared
    std::size_t next CBWT_GUARDED_BY(mutex) = 0;      ///< next unclaimed shard
    std::size_t finished CBWT_GUARDED_BY(mutex) = 0;  ///< shards fully executed
    std::exception_ptr error CBWT_GUARDED_BY(mutex);
  };
  auto batch = std::make_shared<Batch>();
  batch->count = count;

  const auto drive = [batch, &task] {
    for (;;) {
      std::size_t shard = 0;
      {
        util::MutexLock lock(batch->mutex);
        if (batch->next >= batch->count) return;
        shard = batch->next++;
      }
      try {
        task(shard);
      } catch (...) {
        util::MutexLock lock(batch->mutex);
        if (!batch->error) batch->error = std::current_exception();
      }
      util::MutexLock lock(batch->mutex);
      if (++batch->finished == batch->count) batch->done_cv.notify_all();
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(pool->size(), count) - 1;  // caller is a driver too
  for (std::size_t i = 0; i < helpers; ++i) pool->submit(drive);
  drive();

  util::MutexLock lock(batch->mutex);
  while (batch->finished != batch->count) batch->done_cv.wait(lock.native());
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace detail

/// Applies `body(range, shard_index)` to every shard of [0, n).
/// Shards must write disjoint state (typically out[i] for i in range).
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, const ShardOptions& options,
                  Body&& body) {
  const auto plan = plan_shards(n, options);
  detail::run_shards(pool, plan.size(),
                     [&](std::size_t shard) { body(plan[shard], shard); });
}

/// out[i] = fn(i) for i in [0, n), order-preserving by construction
/// (every element is written at its own index).
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool* pool, std::size_t n, const ShardOptions& options,
                            Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, options, [&](ShardRange range, std::size_t /*shard*/) {
    for (std::size_t i = range.begin; i < range.end; ++i) out[i] = fn(i);
  });
  return out;
}

/// Sharded producer / ordered-consumer pipeline: the compute/I-O
/// overlap primitive behind sharded_reduce and the NetFlow join's
/// parallel spill pass.
///
/// `shard_fn(range, shard_index, rng)` produces one Part per shard on
/// pool workers with a shard-local RNG (rule 2); `consume(shard_index,
/// part)` runs on the calling thread strictly in shard-index order
/// (rule 3) *while later shards are still producing* — a consumer that
/// writes to disk therefore overlaps its I/O with the producers'
/// compute. Parallel shards stream their parts through a bounded
/// Channel sized to the worker count — the backpressure keeps at most
/// O(threads) parts in flight — and the caller re-sequences early
/// arrivals in a reorder buffer, so a consumer with side effects (file
/// appends, stateful folds) observes the serial order bit for bit.
template <typename Part, typename ShardFn, typename Consume>
void ordered_stream(ThreadPool* pool, std::size_t n, const ShardOptions& options,
                    std::uint64_t seed, std::uint64_t stage_label, ShardFn&& shard_fn,
                    Consume&& consume) {
  const auto plan = plan_shards(n, options);
  if (plan.empty()) return;

  if (pool == nullptr || pool->size() <= 1 || plan.size() == 1) {
    for (std::size_t shard = 0; shard < plan.size(); ++shard) {
      auto rng = shard_rng(seed, stage_label, shard);
      consume(shard, shard_fn(plan[shard], shard, rng));
    }
    return;
  }

  using Keyed = std::pair<std::size_t, Part>;
  // Producer tasks can straggle past the caller's return by a loop-top
  // re-check and the tail of their final push, so the state they touch
  // there is shared-owned rather than on the caller's stack.
  struct Stream {
    explicit Stream(std::size_t channel_capacity, std::size_t shard_count)
        : parts(channel_capacity), count(shard_count) {}
    Channel<Keyed> parts;
    std::size_t count;  ///< immutable once the stream is shared
    util::Mutex mutex;
    std::size_t next CBWT_GUARDED_BY(mutex) = 0;  ///< next unclaimed shard
    std::exception_ptr error CBWT_GUARDED_BY(mutex);
  };
  auto stream =
      std::make_shared<Stream>(std::max<std::size_t>(2, pool->size()), plan.size());

  const auto produce = [stream, &plan, &shard_fn, seed, stage_label] {
    for (;;) {
      std::size_t shard = 0;
      {
        util::MutexLock lock(stream->mutex);
        if (stream->next >= stream->count) return;
        shard = stream->next++;
      }
      Part part{};
      try {
        auto rng = shard_rng(seed, stage_label, shard);
        part = shard_fn(plan[shard], shard, rng);
      } catch (...) {
        util::MutexLock lock(stream->mutex);
        if (!stream->error) stream->error = std::current_exception();
      }
      // Push even after an error so the consumer's count stays exact;
      // the error is rethrown once the stream drains.
      stream->parts.push(Keyed(shard, std::move(part)));
    }
  };

  const std::size_t workers = std::min<std::size_t>(pool->size(), plan.size());
  for (std::size_t i = 0; i < workers; ++i) pool->submit(produce);

  // Order-preserving delivery: consume parts strictly by shard index,
  // parking early arrivals until their turn comes.
  std::map<std::size_t, Part> parked;
  std::size_t next_to_consume = 0;
  std::size_t received = 0;
  try {
    while (received < plan.size()) {
      auto part = stream->parts.pop();
      CBWT_ASSERT(part.has_value());  // producers push exactly one part per shard
      ++received;
      if (part->first == next_to_consume) {
        consume(next_to_consume, std::move(part->second));
        ++next_to_consume;
        for (auto it = parked.begin();
             it != parked.end() && it->first == next_to_consume;) {
          consume(next_to_consume, std::move(it->second));
          it = parked.erase(it);
          ++next_to_consume;
        }
      } else {
        parked.emplace(part->first, std::move(part->second));
      }
    }
  } catch (...) {
    // A throwing consumer must still drain the stream: a producer
    // blocked on the full channel would otherwise never finish its pool
    // task.
    while (received < plan.size()) {
      if (stream->parts.pop()) ++received;
    }
    throw;
  }
  CBWT_ASSERT(parked.empty() && next_to_consume == plan.size());

  // Every part has been popped, so no producer touches the channel
  // again (stragglers only re-check the claim cursor and return) — the
  // stats are final here.
  if (options.channel_stats != nullptr) {
    options.channel_stats->accumulate(stream->parts.stats());
  }

  util::MutexLock lock(stream->mutex);
  if (stream->error) std::rethrow_exception(stream->error);
}

/// Sharded map-reduce with an order-preserving merge: ordered_stream
/// specialised to a stateful fold. `merge(acc, part)` folds parts
/// together strictly in shard-index order — the consumer contract above
/// is exactly rule 3.
template <typename Acc, typename ShardFn, typename Merge>
Acc sharded_reduce(ThreadPool* pool, std::size_t n, const ShardOptions& options,
                   std::uint64_t seed, std::uint64_t stage_label, ShardFn&& shard_fn,
                   Merge&& merge, Acc acc = {}) {
  ordered_stream<Acc>(pool, n, options, seed, stage_label,
                      std::forward<ShardFn>(shard_fn),
                      [&](std::size_t /*shard*/, Acc&& part) {
                        merge(acc, std::move(part));
                      });
  return acc;
}

}  // namespace cbwt::runtime
