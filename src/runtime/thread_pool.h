// Fixed-size worker pool with per-worker task deques and work stealing.
//
// The pool is the execution substrate of cbwt::runtime: callers submit
// opaque tasks; each worker services its own deque front-to-back and,
// when empty, steals from the back of a sibling's deque (classic
// Chase-Lev discipline, here with a per-queue mutex — the tasks this
// library runs are shard-sized, so queue traffic is never the hot path).
//
// The pool executes tasks; it makes no ordering or determinism promises
// of its own. Determinism is the job of the parallel.h layer above,
// which fixes shard boundaries and per-shard RNGs independently of the
// worker count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cbwt::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks hardware_threads().
  explicit ThreadPool(unsigned threads = 0);

  /// Blocks until every submitted task has finished, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not block waiting for later submissions
  /// (the pool is fixed-size). Running tasks may submit follow-up work —
  /// even while the destructor drains; external threads must not submit
  /// concurrently with destruction.
  void submit(std::function<void()> task);

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Tasks queued but not yet started (instantaneous queue depth).
  [[nodiscard]] std::uint64_t pending() const;

  /// Hardware concurrency with a floor of 1 (the standard may report 0).
  [[nodiscard]] static unsigned hardware_threads() noexcept;

  /// Lifetime counters (observability; monotonic, racy reads are fine).
  struct Stats {
    std::uint64_t submitted = 0;  ///< tasks accepted by submit()
    std::uint64_t executed = 0;   ///< tasks run to completion
    std::uint64_t stolen = 0;     ///< tasks run by a worker that stole them
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(unsigned index);
  [[nodiscard]] bool try_run_one(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::uint64_t pending_ = 0;  ///< queued-but-not-started tasks (under sleep_mutex_)
  bool stopping_ = false;      ///< set by the destructor (under sleep_mutex_)

  std::uint64_t next_queue_ = 0;  ///< round-robin submit cursor (under sleep_mutex_)

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace cbwt::runtime
