// Fixed-size worker pool with per-worker task deques and work stealing.
//
// The pool is the execution substrate of cbwt::runtime: callers submit
// opaque tasks; each worker services its own deque front-to-back and,
// when empty, steals from the back of a sibling's deque (classic
// Chase-Lev discipline, here with a per-queue mutex — the tasks this
// library runs are shard-sized, so queue traffic is never the hot path).
//
// The pool executes tasks; it makes no ordering or determinism promises
// of its own. Determinism is the job of the parallel.h layer above,
// which fixes shard boundaries and per-shard RNGs independently of the
// worker count.
//
// This is the only file in the tree allowed to spawn std::thread
// (cbwt-lint rule raw-thread): every other module gets its parallelism
// through the pool, so worker count is the single threading knob.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace cbwt::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks hardware_threads().
  explicit ThreadPool(unsigned threads = 0);

  /// Blocks until every submitted task has finished, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not block waiting for later submissions
  /// (the pool is fixed-size). Running tasks may submit follow-up work —
  /// even while the destructor drains; external threads must not submit
  /// concurrently with destruction.
  void submit(std::function<void()> task) CBWT_EXCLUDES(sleep_mutex_);

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Tasks queued but not yet started (instantaneous queue depth).
  [[nodiscard]] std::uint64_t pending() const CBWT_EXCLUDES(sleep_mutex_);

  /// Hardware concurrency with a floor of 1 (the standard may report 0).
  [[nodiscard]] static unsigned hardware_threads() noexcept;

  /// Worker index of the calling thread, or -1 when called from a thread
  /// that is not a pool worker (the pipeline-driving thread, telemetry
  /// threads). Observability only: trace exporters use it to label
  /// per-thread event streams.
  [[nodiscard]] static int current_worker_index() noexcept;

  /// Lifetime counters (observability; monotonic, racy reads are fine).
  struct Stats {
    std::uint64_t submitted = 0;  ///< tasks accepted by submit()
    std::uint64_t executed = 0;   ///< tasks run to completion
    std::uint64_t stolen = 0;     ///< tasks run by a worker that stole them
  };
  [[nodiscard]] Stats stats() const CBWT_EXCLUDES(stats_mutex_);

 private:
  struct Worker {
    util::Mutex mutex;
    std::deque<std::function<void()>> queue CBWT_GUARDED_BY(mutex);
  };

  void worker_loop(unsigned index);
  [[nodiscard]] bool try_run_one(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable util::Mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  /// Queued-but-not-started tasks.
  std::uint64_t pending_ CBWT_GUARDED_BY(sleep_mutex_) = 0;
  /// Set by the destructor.
  bool stopping_ CBWT_GUARDED_BY(sleep_mutex_) = false;

  /// Round-robin submit cursor.
  std::uint64_t next_queue_ CBWT_GUARDED_BY(sleep_mutex_) = 0;

  mutable util::Mutex stats_mutex_;
  Stats stats_ CBWT_GUARDED_BY(stats_mutex_);
};

}  // namespace cbwt::runtime
