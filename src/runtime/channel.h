// Bounded MPMC channel with close semantics and backpressure counters.
//
// The channel is the runtime's streaming primitive: producers block (or
// fail fast with try_push) when the buffer is full, consumers block when
// it is empty, and close() lets producers signal end-of-stream — after
// which pushes are rejected and pops drain the remaining buffer before
// reporting exhaustion. Queue-depth high-water and stall counters are
// recorded for observability; they never feed back into results, so
// pipelines built on the channel stay deterministic.
//
// Thread-safety: every mutable member is guarded by mutex_ and the
// annotations below let clang's -Wthread-safety prove it; notify calls
// happen after the lock scope closes so woken threads never bounce.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "util/contract.h"
#include "util/thread_annotations.h"

namespace cbwt::runtime {

/// Outcome of a non-blocking push.
enum class TryPush : std::uint8_t { Ok, Full, Closed };

/// Backpressure / throughput counters of one channel (monotonic).
/// Hoisted out of Channel<T> so observers (ShardOptions::channel_stats,
/// obs::record_channel_stats) can handle stats without knowing T.
struct ChannelStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::size_t high_water = 0;            ///< max queue depth observed
  std::uint64_t producer_stalls = 0;     ///< pushes that had to block
  std::uint64_t consumer_stalls = 0;     ///< pops that had to block
  std::uint64_t producer_stall_ns = 0;   ///< total time producers blocked
  std::uint64_t consumer_stall_ns = 0;   ///< total time consumers blocked

  /// Folds another channel's counters in (sums; high_water takes max),
  /// for accumulating across a pipeline's many short-lived channels.
  void accumulate(const ChannelStats& other) noexcept {
    pushed += other.pushed;
    popped += other.popped;
    high_water = std::max(high_water, other.high_water);
    producer_stalls += other.producer_stalls;
    consumer_stalls += other.consumer_stalls;
    producer_stall_ns += other.producer_stall_ns;
    consumer_stall_ns += other.consumer_stall_ns;
  }
};

template <typename T>
class Channel {
 public:
  /// Capacity bounds the buffer; zero-capacity (rendezvous) channels are
  /// not supported, so a producer can always make progress once a
  /// consumer drains.
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    CBWT_EXPECTS(capacity >= 1);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns false (value dropped) iff the channel
  /// was closed before space appeared.
  bool push(T value) CBWT_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (buffer_.size() >= capacity_ && !closed_) {
        ++stats_.producer_stalls;
        const auto begin = stall_clock();
        while (buffer_.size() >= capacity_ && !closed_) not_full_.wait(lock.native());
        stats_.producer_stall_ns += ns_since(begin);
      }
      if (closed_) return false;
      put_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; Full leaves the value untouched for retry.
  TryPush try_push(T& value) CBWT_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (closed_) return TryPush::Closed;
      if (buffer_.size() >= capacity_) return TryPush::Full;
      put_back(std::move(value));
    }
    not_empty_.notify_one();
    return TryPush::Ok;
  }

  /// Blocks while empty. Empty optional iff the channel is closed and
  /// fully drained (end-of-stream).
  std::optional<T> pop() CBWT_EXCLUDES(mutex_) {
    std::optional<T> value;
    {
      util::MutexLock lock(mutex_);
      if (buffer_.empty() && !closed_) {
        ++stats_.consumer_stalls;
        const auto begin = stall_clock();
        while (buffer_.empty() && !closed_) not_empty_.wait(lock.native());
        stats_.consumer_stall_ns += ns_since(begin);
      }
      value = take_front();
    }
    if (value.has_value()) not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; empty optional when nothing is buffered (check
  /// closed() to distinguish "not yet" from end-of-stream).
  std::optional<T> try_pop() CBWT_EXCLUDES(mutex_) {
    std::optional<T> value;
    {
      util::MutexLock lock(mutex_);
      value = take_front();
    }
    if (value.has_value()) not_full_.notify_one();
    return value;
  }

  /// Idempotent. Wakes every blocked producer (their pushes fail) and
  /// consumer (they drain the buffer, then see end-of-stream).
  void close() CBWT_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const CBWT_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const CBWT_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return buffer_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Backpressure / throughput counters (monotonic).
  using Stats = ChannelStats;
  [[nodiscard]] Stats stats() const CBWT_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return stats_;
  }

 private:
  /// Stall timing is observational only (ChannelStats); it never feeds
  /// back into what the channel delivers, so determinism holds.
  [[nodiscard]] static auto stall_clock() noexcept {
    return std::chrono::steady_clock::now();  // cbwt-lint: allow(steady-clock)
  }

  [[nodiscard]] static std::uint64_t ns_since(
      std::chrono::time_point<std::chrono::steady_clock> begin) noexcept {  // cbwt-lint: allow(steady-clock)
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stall_clock() - begin)
            .count());
  }

  void put_back(T&& value) CBWT_REQUIRES(mutex_) {
    CBWT_ASSERT(buffer_.size() < capacity_);
    buffer_.push_back(std::move(value));
    ++stats_.pushed;
    stats_.high_water = std::max(stats_.high_water, buffer_.size());
  }

  [[nodiscard]] std::optional<T> take_front() CBWT_REQUIRES(mutex_) {
    if (buffer_.empty()) return std::nullopt;
    std::optional<T> value(std::move(buffer_.front()));
    buffer_.pop_front();
    ++stats_.popped;
    return value;
  }

  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> buffer_ CBWT_GUARDED_BY(mutex_);
  bool closed_ CBWT_GUARDED_BY(mutex_) = false;
  Stats stats_ CBWT_GUARDED_BY(mutex_);
};

}  // namespace cbwt::runtime
