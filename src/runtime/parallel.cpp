#include "runtime/parallel.h"

namespace cbwt::runtime {

std::vector<ShardRange> plan_shards(std::size_t n, const ShardOptions& options) {
  CBWT_EXPECTS(options.min_shard_items >= 1);
  CBWT_EXPECTS(options.max_shards >= 1);
  std::vector<ShardRange> plan;
  if (n == 0) return plan;
  // Shard size: at least the configured floor, and large enough that at
  // most max_shards shards exist. Depends only on (n, options) — rule 1.
  const std::size_t by_cap = (n + options.max_shards - 1) / options.max_shards;
  const std::size_t shard_size = std::max(options.min_shard_items, by_cap);
  plan.reserve((n + shard_size - 1) / shard_size);
  for (std::size_t begin = 0; begin < n; begin += shard_size) {
    plan.push_back({begin, std::min(begin + shard_size, n)});
  }
  CBWT_ENSURES(!plan.empty() && plan.size() <= options.max_shards);
  CBWT_ENSURES(plan.front().begin == 0 && plan.back().end == n);
  return plan;
}

}  // namespace cbwt::runtime
