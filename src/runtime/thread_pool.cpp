#include "runtime/thread_pool.h"

#include "util/contract.h"

namespace cbwt::runtime {

namespace {
/// -1 everywhere except on pool workers, which stamp their index at
/// worker_loop entry. Never reset: a worker's identity is fixed for its
/// whole lifetime and the thread exits with the pool.
thread_local int t_worker_index = -1;
}  // namespace

int ThreadPool::current_worker_index() noexcept { return t_worker_index; }

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1U : reported;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = threads == 0 ? hardware_threads() : threads;
  CBWT_EXPECTS(count >= 1);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(sleep_mutex_);
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
  // The destructor drains before joining: nothing may remain queued.
  // (Workers are gone; the lock is only for the analysis' benefit.)
  for (const auto& worker : workers_) {
    util::MutexLock lock(worker->mutex);
    CBWT_ASSERT(worker->queue.empty());
  }
}

void ThreadPool::submit(std::function<void()> task) {
  CBWT_EXPECTS(task != nullptr);
  std::size_t target = 0;
  {
    // No !stopping_ check: a task draining during shutdown may submit
    // follow-up work, and the workers' exit condition (stopping_ &&
    // pending_ == 0) drains it before the destructor joins. Submitting
    // from outside the pool once destruction has begun is a data race
    // the caller owns, as with any object being destroyed.
    util::MutexLock lock(sleep_mutex_);
    target = static_cast<std::size_t>(next_queue_++ % workers_.size());
    ++pending_;
  }
  {
    util::MutexLock lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.submitted;
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_run_one(unsigned index) {
  std::function<void()> task;
  bool stolen = false;
  // Own queue first (front: submission order), then steal from the back
  // of the busiest-looking sibling, scanning round-robin from our right.
  {
    auto& own = *workers_[index];
    util::MutexLock lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
    }
  }
  if (!task) {
    for (std::size_t offset = 1; offset < workers_.size() && !task; ++offset) {
      auto& victim = *workers_[(index + offset) % workers_.size()];
      util::MutexLock lock(victim.mutex);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.back());
        victim.queue.pop_back();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  {
    util::MutexLock lock(sleep_mutex_);
    CBWT_ASSERT(pending_ > 0);
    --pending_;
  }
  task();
  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.executed;
    if (stolen) ++stats_.stolen;
  }
  return true;
}

void ThreadPool::worker_loop(unsigned index) {
  t_worker_index = static_cast<int>(index);
  for (;;) {
    if (try_run_one(index)) continue;
    util::MutexLock lock(sleep_mutex_);
    while (!stopping_ && pending_ == 0) sleep_cv_.wait(lock.native());
    if (stopping_ && pending_ == 0) return;
  }
}

std::uint64_t ThreadPool::pending() const {
  util::MutexLock lock(sleep_mutex_);
  return pending_;
}

ThreadPool::Stats ThreadPool::stats() const {
  util::MutexLock lock(stats_mutex_);
  return stats_;
}

}  // namespace cbwt::runtime
