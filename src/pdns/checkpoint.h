// pDNS checkpointing: serializes a Store's record table to the columnar
// store as a fixed-width record file (windows, counts, IP) plus a blob
// file (FQDNs and registrable domains, interned — they repeat heavily).
// Loading rebuilds the table in insertion order, so the restored Store
// is indistinguishable from the one that was saved: identical query
// results, identical iteration order, and — because replication draws
// nothing further from saved state — identical downstream analyses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "pdns/store.h"
#include "store/blob_file.h"

namespace cbwt::pdns {

/// One serialized Record with its strings swapped for blob handles;
/// the fixed-width row the record file actually holds.
struct RecordRow {
  store::BlobRef fqdn;
  store::BlobRef registrable;
  net::IpAddress ip;
  Day first_seen = 0;
  Day last_seen = 0;
  std::uint64_t observations = 0;
};

/// store::RecordCodec for RecordRow. 57-byte layout, big-endian:
/// ip family u8 + hi u64 + lo u64, first_seen u32, last_seen u32,
/// observations u64, fqdn BlobRef, registrable BlobRef.
struct RecordRowCodec {
  using value_type = RecordRow;
  static constexpr std::size_t kRecordSize = 57;
  static constexpr std::uint16_t kKind = 2;  // store::RecordKind::PdnsRecord
  static void encode(const RecordRow& row, std::uint8_t* out);
  static std::optional<RecordRow> decode(const std::uint8_t* in);
};

/// Persists `store`'s record table to `records_path` + `blobs_path`.
void save_store(const Store& store, const std::string& records_path,
                const std::string& blobs_path);

/// Restores a Store saved by save_store. Throws store::StoreError on
/// validation failure (bad superblock, checksum, dangling blob ref).
[[nodiscard]] Store load_store(const std::string& records_path,
                               const std::string& blobs_path);

}  // namespace cbwt::pdns
