#include "pdns/replication.h"

#include <vector>

#include "geo/country.h"

namespace cbwt::pdns {

void replicate_background(Store& store, const dns::Resolver& resolver,
                          const ReplicationConfig& config, util::Rng& rng) {
  const world::World& world = resolver.world();

  // Query origins: any country, weighted by population (pDNS collectors
  // sit in production networks around the world).
  const auto countries = geo::all_countries();
  std::vector<double> country_weights;
  country_weights.reserve(countries.size());
  for (const auto& country : countries) country_weights.push_back(country.population_m);

  // Queried domains: tracking domains weighted by their org popularity.
  const auto tracking = world.tracking_domain_ids();
  std::vector<double> domain_weights;
  domain_weights.reserve(tracking.size());
  for (const auto id : tracking) {
    domain_weights.push_back(world.org(world.domain(id).org).popularity);
  }

  for (Day day = config.window_start; day <= config.window_end; day += config.sample_every) {
    for (std::uint32_t q = 0; q < config.queries_per_sample; ++q) {
      const auto& country = countries[util::sample_discrete(rng, country_weights)];
      const auto domain_id = tracking[util::sample_discrete(rng, domain_weights)];
      const bool third_party = rng.chance(0.25);
      const auto answer =
          resolver.resolve_from(domain_id, country.code, third_party, rng);
      const auto& domain = world.domain(domain_id);
      store.observe(domain.fqdn, domain.registrable, answer.ip, day);
    }
  }

  // Dynamic-IP churn noise: record pairs whose window closed before the
  // study window began; the pair's IP currently belongs to a different
  // organization's server.
  for (std::uint32_t i = 0; i < config.stale_pairs; ++i) {
    const auto victim_id = tracking[static_cast<std::size_t>(
        rng.next_below(tracking.size()))];
    const auto donor_id = tracking[static_cast<std::size_t>(
        rng.next_below(tracking.size()))];
    const auto& victim = world.domain(victim_id);
    const auto& donor = world.domain(donor_id);
    if (victim.org == donor.org || donor.servers.empty()) continue;
    const auto& donor_server = world.server(donor.servers.front());
    const Day stale_start = config.window_start - 400 + static_cast<Day>(rng.next_below(300));
    store.observe(victim.fqdn, victim.registrable, donor_server.ip, stale_start);
    store.observe(victim.fqdn, victim.registrable, donor_server.ip,
                  stale_start + static_cast<Day>(rng.next_below(60)));
  }
}

}  // namespace cbwt::pdns
