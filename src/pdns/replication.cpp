#include "pdns/replication.h"

#include <vector>

#include "geo/country.h"

namespace cbwt::pdns {

namespace {

/// Stale-window lag in days for a stale-data fault: 30..119, derived
/// statelessly from the query key so it is stable across runs.
Day stale_lag_days(const fault::FaultPlan& plan, const fault::Site& site,
                   std::uint64_t key) noexcept {
  const double u = fault::stateless_uniform(plan.seed, site.hash, key,
                                            /*salt=*/0x57A1E0000000000ULL);
  return 30 + static_cast<Day>(u * 90.0);
}

}  // namespace

void replicate_background(Store& store, const dns::Resolver& resolver,
                          const ReplicationConfig& config, util::Rng& rng,
                          const fault::FaultPlan* fault_plan, obs::Registry* registry) {
  const world::World& world = resolver.world();

  // Replication is one serial stage, so a single Retrier legitimately
  // owns the site's breaker state for the whole window.
  fault::Retrier retrier(fault_plan, fault::sites::kPdns, fault::RetryPolicy{},
                         fault::BreakerPolicy{}, registry);
  const fault::Site fault_site =
      fault_plan != nullptr ? fault_plan->site(fault::sites::kPdns) : fault::Site{};

  // Query origins: any country, weighted by population (pDNS collectors
  // sit in production networks around the world).
  const auto countries = geo::all_countries();
  std::vector<double> country_weights;
  country_weights.reserve(countries.size());
  for (const auto& country : countries) country_weights.push_back(country.population_m);

  // Queried domains: tracking domains weighted by their org popularity.
  const auto tracking = world.tracking_domain_ids();
  std::vector<double> domain_weights;
  domain_weights.reserve(tracking.size());
  for (const auto id : tracking) {
    domain_weights.push_back(world.org(world.domain(id).org).popularity);
  }

  for (Day day = config.window_start; day <= config.window_end; day += config.sample_every) {
    for (std::uint32_t q = 0; q < config.queries_per_sample; ++q) {
      const auto& country = countries[util::sample_discrete(rng, country_weights)];
      const auto domain_id = tracking[util::sample_discrete(rng, domain_weights)];
      const bool third_party = rng.chance(0.25);
      // Resolve unconditionally — the rng consumption must not depend on
      // the fault decision, or surviving observations would diverge from
      // the fault-free stream.
      const auto answer =
          resolver.resolve_from(domain_id, country.code, third_party, rng);
      const auto& domain = world.domain(domain_id);
      Day observed_day = day;
      if (retrier.enabled()) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(day)) << 32) | q;
        const fault::CallFate fate = retrier.call(/*endpoint=*/domain_id, key);
        if (!fate.ok()) {
          // The feed never delivered this observation to the collector.
          retrier.count_degraded();
          continue;
        }
        if (fate.stale) {
          // Stale-window fallback: the pair is real but its observation
          // timestamp lags, the churn failure mode validity windows absorb.
          observed_day = day - stale_lag_days(*fault_plan, fault_site, key);
          retrier.count_degraded();
        }
      }
      store.observe(domain.fqdn, domain.registrable, answer.ip, observed_day);
    }
  }

  // Dynamic-IP churn noise: record pairs whose window closed before the
  // study window began; the pair's IP currently belongs to a different
  // organization's server.
  for (std::uint32_t i = 0; i < config.stale_pairs; ++i) {
    const auto victim_id = tracking[static_cast<std::size_t>(
        rng.next_below(tracking.size()))];
    const auto donor_id = tracking[static_cast<std::size_t>(
        rng.next_below(tracking.size()))];
    const auto& victim = world.domain(victim_id);
    const auto& donor = world.domain(donor_id);
    if (victim.org == donor.org || donor.servers.empty()) continue;
    const auto& donor_server = world.server(donor.servers.front());
    const Day stale_start = config.window_start - 400 + static_cast<Day>(rng.next_below(300));
    store.observe(victim.fqdn, victim.registrable, donor_server.ip, stale_start);
    store.observe(victim.fqdn, victim.registrable, donor_server.ip,
                  stale_start + static_cast<Day>(rng.next_below(60)));
  }
}

}  // namespace cbwt::pdns
