// Feeds the pDNS store the way production replication does: a broad
// background population of resolvers (far larger than the 350 extension
// users) querying tracking domains over the whole study window. This is
// what lets the store return tracker IPs that the recruited users never
// happened to receive — the paper's §3.3 completeness step (+2.78% IPs).
#pragma once

#include <cstdint>

#include "dns/resolver.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "pdns/store.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::pdns {

struct ReplicationConfig {
  Day window_start = 0;
  /// Replication runs past the extension window: the paper kept collecting
  /// mid-Jan..July 2018 so the tracker-IP list stays fresh for the ISP
  /// snapshots (§7.2). Day 330 ~= end of July 2018.
  Day window_end = 330;
  Day sample_every = 3;          ///< replication granularity in days
  std::uint32_t queries_per_sample = 4000;
  /// Dynamic-IP noise: pairs observed with an out-of-date window whose IP
  /// later serves a different organization. Validity-window filtering in
  /// the analysis removes them.
  std::uint32_t stale_pairs = 50;
};

/// Runs the background population against the resolver, filling `store`.
///
/// `fault_plan` (optional) subjects each replication query to the
/// `pdns` injection site: a query that exhausts its retries is dropped
/// from the feed (the collector never saw it), and a query answered
/// with stale data is recorded with its observation day pushed back by
/// a deterministic stale window — the dynamic-IP-churn failure mode of
/// §3.3 that validity-window filtering is meant to absorb. The query's
/// rng draws happen either way, so the surviving observations are
/// bit-identical to the fault-free run's.
void replicate_background(Store& store, const dns::Resolver& resolver,
                          const ReplicationConfig& config, util::Rng& rng,
                          const fault::FaultPlan* fault_plan = nullptr,
                          obs::Registry* registry = nullptr);

}  // namespace cbwt::pdns
