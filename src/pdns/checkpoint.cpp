#include "pdns/checkpoint.h"

#include <utility>
#include <vector>

#include "store/bytes.h"
#include "store/record_file.h"
#include "store/superblock.h"

namespace cbwt::pdns {

static_assert(RecordRowCodec::kKind ==
                  static_cast<std::uint16_t>(store::RecordKind::PdnsRecord),
              "RecordRowCodec::kKind must track store::RecordKind::PdnsRecord");

void RecordRowCodec::encode(const RecordRow& row, std::uint8_t* out) {
  out[0] = row.ip.is_v4() ? 4 : 6;
  store::put_u64(out + 1, row.ip.hi());
  store::put_u64(out + 9, row.ip.lo());
  store::put_u32(out + 17, static_cast<std::uint32_t>(row.first_seen));
  store::put_u32(out + 21, static_cast<std::uint32_t>(row.last_seen));
  store::put_u64(out + 25, row.observations);
  store::put_blob_ref(out + 33, row.fqdn);
  store::put_blob_ref(out + 45, row.registrable);
}

std::optional<RecordRow> RecordRowCodec::decode(const std::uint8_t* in) {
  const std::uint8_t family = in[0];
  const std::uint64_t hi = store::get_u64(in + 1);
  const std::uint64_t lo = store::get_u64(in + 9);
  RecordRow row;
  if (family == 4) {
    if (hi != 0 || lo > 0xFFFFFFFFULL) return std::nullopt;
    row.ip = net::IpAddress::v4(static_cast<std::uint32_t>(lo));
  } else if (family == 6) {
    row.ip = net::IpAddress::v6(hi, lo);
  } else {
    return std::nullopt;
  }
  row.first_seen = static_cast<Day>(store::get_u32(in + 17));
  row.last_seen = static_cast<Day>(store::get_u32(in + 21));
  row.observations = store::get_u64(in + 25);
  row.fqdn = store::get_blob_ref(in + 33);
  row.registrable = store::get_blob_ref(in + 45);
  return row;
}

void save_store(const Store& store, const std::string& records_path,
                const std::string& blobs_path) {
  store::BlobFileWriter blobs(blobs_path);
  store::RecordFileWriter<RecordRowCodec> rows(records_path);
  for (const Record& record : store.records()) {
    RecordRow row;
    row.fqdn = blobs.intern(record.fqdn);
    row.registrable = blobs.intern(record.registrable);
    row.ip = record.ip;
    row.first_seen = record.first_seen;
    row.last_seen = record.last_seen;
    row.observations = record.observations;
    rows.append(row);
  }
  rows.finalize();
  blobs.finalize();
}

Store load_store(const std::string& records_path, const std::string& blobs_path) {
  const store::BlobFileReader blobs(blobs_path);
  const store::RecordFileReader<RecordRowCodec> rows(records_path);
  std::vector<Record> records;
  records.reserve(rows.size());
  rows.for_each_chunk(store::kDefaultChunkRecords,
                      [&](std::span<const RecordRow> chunk, std::uint64_t /*base*/) {
                        for (const RecordRow& row : chunk) {
                          Record record;
                          record.fqdn = std::string(blobs.view(row.fqdn));
                          record.registrable = std::string(blobs.view(row.registrable));
                          record.ip = row.ip;
                          record.first_seen = row.first_seen;
                          record.last_seen = row.last_seen;
                          record.observations = row.observations;
                          records.push_back(std::move(record));
                        }
                      });
  return Store::from_records(std::move(records));
}

}  // namespace cbwt::pdns
