// Passive DNS replication (Weimer-style): observed (fqdn, IP) pairs with
// first-seen / last-seen validity windows, queryable forward (domain ->
// IPs) and reverse (IP -> domains). The paper uses a pDNS database to
// (i) complete the tracker IP set beyond what its 350 users observed and
// (ii) bound the time window in which an IP actually served a tracking
// domain, removing dynamic-IP noise (§3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace cbwt::pdns {

/// Study time is measured in days since the start of the collection
/// window (Sep 1, 2017 in the paper).
using Day = std::int32_t;

/// One replicated association between an FQDN and an address.
struct Record {
  std::string fqdn;
  std::string registrable;  ///< the paper's "TLD" granularity
  net::IpAddress ip;
  Day first_seen = 0;
  Day last_seen = 0;
  std::uint64_t observations = 0;
};

/// Append-only pDNS database with forward and reverse indices.
class Store {
 public:
  /// Records one observation of `fqdn` resolving to `ip` on `day`.
  /// Windows extend monotonically; repeated observations are counted.
  void observe(const std::string& fqdn, const std::string& registrable,
               const net::IpAddress& ip, Day day);

  /// All records for an FQDN (forward lookup). Empty when unseen.
  [[nodiscard]] std::vector<const Record*> forward(const std::string& fqdn) const;

  /// All records for an IP (reverse lookup). Empty when unseen.
  [[nodiscard]] std::vector<const Record*> reverse(const net::IpAddress& ip) const;

  /// True when (fqdn, ip) was a valid pair on `day` (within the window).
  [[nodiscard]] bool valid_at(const std::string& fqdn, const net::IpAddress& ip,
                              Day day) const;

  /// Distinct registrable domains served by `ip` over its lifetime.
  [[nodiscard]] std::size_t registrable_count(const net::IpAddress& ip) const;

  /// Total observations recorded against `ip`.
  [[nodiscard]] std::uint64_t observations_of(const net::IpAddress& ip) const;

  /// Every distinct IP in the database.
  [[nodiscard]] std::vector<net::IpAddress> all_ips() const;

  /// Every distinct IP that served `registrable` at any time.
  [[nodiscard]] std::vector<net::IpAddress> ips_of_registrable(
      const std::string& registrable) const;

  /// Distinct IPs whose (registrable, IP) validity window covers `day` —
  /// the time-bounded variant the NetFlow join uses (§3.3, §7.2).
  [[nodiscard]] std::vector<net::IpAddress> ips_of_registrable_at(
      const std::string& registrable, Day day) const;

  [[nodiscard]] std::size_t record_count() const noexcept { return records_.size(); }

  /// The record table in insertion order — the store's canonical state
  /// (indices are derived). Checkpointing serializes exactly this.
  [[nodiscard]] const std::vector<Record>& records() const noexcept { return records_; }

  /// Rebuilds a store from a record table saved via records(): indices
  /// are reconstructed in insertion order, so the result is
  /// indistinguishable from the store that produced the table.
  [[nodiscard]] static Store from_records(std::vector<Record> records);

 private:
  std::vector<Record> records_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_fqdn_;
  std::unordered_map<net::IpAddress, std::vector<std::size_t>> by_ip_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_registrable_;
};

}  // namespace cbwt::pdns
