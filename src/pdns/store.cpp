#include "pdns/store.h"

#include <algorithm>

namespace cbwt::pdns {

void Store::observe(const std::string& fqdn, const std::string& registrable,
                    const net::IpAddress& ip, Day day) {
  // Try to extend an existing record for this exact (fqdn, ip) pair.
  if (const auto it = by_fqdn_.find(fqdn); it != by_fqdn_.end()) {
    for (const std::size_t idx : it->second) {
      Record& record = records_[idx];
      if (record.ip == ip) {
        record.first_seen = std::min(record.first_seen, day);
        record.last_seen = std::max(record.last_seen, day);
        ++record.observations;
        return;
      }
    }
  }
  const std::size_t idx = records_.size();
  records_.push_back(Record{fqdn, registrable, ip, day, day, 1});
  by_fqdn_[fqdn].push_back(idx);
  by_ip_[ip].push_back(idx);
  by_registrable_[registrable].push_back(idx);
}

Store Store::from_records(std::vector<Record> records) {
  Store store;
  store.records_ = std::move(records);
  for (std::size_t idx = 0; idx < store.records_.size(); ++idx) {
    const Record& record = store.records_[idx];
    store.by_fqdn_[record.fqdn].push_back(idx);
    store.by_ip_[record.ip].push_back(idx);
    store.by_registrable_[record.registrable].push_back(idx);
  }
  return store;
}

std::vector<const Record*> Store::forward(const std::string& fqdn) const {
  std::vector<const Record*> out;
  if (const auto it = by_fqdn_.find(fqdn); it != by_fqdn_.end()) {
    out.reserve(it->second.size());
    for (const std::size_t idx : it->second) out.push_back(&records_[idx]);
  }
  return out;
}

std::vector<const Record*> Store::reverse(const net::IpAddress& ip) const {
  std::vector<const Record*> out;
  if (const auto it = by_ip_.find(ip); it != by_ip_.end()) {
    out.reserve(it->second.size());
    for (const std::size_t idx : it->second) out.push_back(&records_[idx]);
  }
  return out;
}

bool Store::valid_at(const std::string& fqdn, const net::IpAddress& ip, Day day) const {
  if (const auto it = by_fqdn_.find(fqdn); it != by_fqdn_.end()) {
    for (const std::size_t idx : it->second) {
      const Record& record = records_[idx];
      if (record.ip == ip && record.first_seen <= day && day <= record.last_seen) {
        return true;
      }
    }
  }
  return false;
}

std::size_t Store::registrable_count(const net::IpAddress& ip) const {
  std::vector<std::string_view> seen;
  if (const auto it = by_ip_.find(ip); it != by_ip_.end()) {
    for (const std::size_t idx : it->second) {
      const std::string& reg = records_[idx].registrable;
      if (std::find(seen.begin(), seen.end(), reg) == seen.end()) seen.push_back(reg);
    }
  }
  return seen.size();
}

std::uint64_t Store::observations_of(const net::IpAddress& ip) const {
  std::uint64_t total = 0;
  if (const auto it = by_ip_.find(ip); it != by_ip_.end()) {
    for (const std::size_t idx : it->second) total += records_[idx].observations;
  }
  return total;
}

std::vector<net::IpAddress> Store::all_ips() const {
  std::vector<net::IpAddress> out;
  out.reserve(by_ip_.size());
  for (const auto& [ip, indices] : by_ip_) out.push_back(ip);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::IpAddress> Store::ips_of_registrable(const std::string& registrable) const {
  std::vector<net::IpAddress> out;
  if (const auto it = by_registrable_.find(registrable); it != by_registrable_.end()) {
    for (const std::size_t idx : it->second) out.push_back(records_[idx].ip);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<net::IpAddress> Store::ips_of_registrable_at(const std::string& registrable,
                                                         Day day) const {
  std::vector<net::IpAddress> out;
  if (const auto it = by_registrable_.find(registrable); it != by_registrable_.end()) {
    for (const std::size_t idx : it->second) {
      const Record& record = records_[idx];
      if (record.first_seen <= day && day <= record.last_seen) out.push_back(record.ip);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace cbwt::pdns
