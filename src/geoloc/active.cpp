#include "geoloc/active.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace cbwt::geoloc {

ProbeMesh::ProbeMesh(MeshConfig config, util::Rng& rng) {
  const auto countries = geo::all_countries();
  std::vector<double> weights;
  weights.reserve(countries.size());
  for (const auto& country : countries) weights.push_back(country.probe_share);
  probes_.reserve(config.probes);
  for (std::uint32_t i = 0; i < config.probes; ++i) {
    const auto& country = countries[util::sample_discrete(rng, weights)];
    Probe probe;
    probe.country = std::string(country.code);
    // Probes scatter around the population centroid; the scatter must
    // stay inside national scale or small-country probes leak abroad.
    probe.location = {country.centroid.lat + rng.next_double_in(-0.7, 0.7),
                      country.centroid.lon + rng.next_double_in(-0.9, 0.9)};
    probes_.push_back(std::move(probe));
  }
}

std::size_t ProbeMesh::count_in(std::string_view country) const {
  return static_cast<std::size_t>(
      std::count_if(probes_.begin(), probes_.end(),
                    [&](const Probe& probe) { return probe.country == country; }));
}

ActiveGeolocator::ActiveGeolocator(const world::World& world, const ProbeMesh& mesh,
                                   ActiveGeolocatorOptions options)
    : world_(&world), mesh_(&mesh), options_(options) {}

double ActiveGeolocator::measure_rtt(const Probe& probe, const geo::LatLon& target,
                                     util::Rng& rng) const {
  const double propagation = 2.0 * geo::propagation_delay_ms(probe.location, target);
  const double last_mile =
      rng.next_double_in(options_.last_mile_ms_min, options_.last_mile_ms_max);
  const double queueing = rng.next_exponential(options_.queue_noise_rate);
  return propagation + last_mile + queueing;
}

GeoEstimate ActiveGeolocator::locate(const net::IpAddress& ip, util::Rng& rng,
                                     const fault::FaultPlan* fault_plan) const {
  const world::Server* server = world_->find_server(ip);
  if (server == nullptr) return {};
  const auto& dc = world_->datacenter(server->datacenter);

  // Two measurement rounds, as the IPmap engine runs them: a worldwide
  // scouting panel first, then a panel concentrated around the scouting
  // round's lowest-RTT probe.
  const auto& probes = mesh_->probes();
  const std::size_t panel_size =
      std::min<std::size_t>(options_.probes_per_measurement, probes.size());
  const std::size_t scout_size = panel_size / 3;
  struct Sample {
    double rtt;
    const Probe* probe;
  };
  std::vector<Sample> samples;
  samples.reserve(panel_size);
  for (std::size_t i = 0; i < scout_size; ++i) {
    const auto& probe = probes[static_cast<std::size_t>(rng.next_below(probes.size()))];
    samples.push_back({measure_rtt(probe, dc.location, rng), &probe});
  }
  const auto best_scout =
      std::min_element(samples.begin(), samples.end(),
                       [](const Sample& a, const Sample& b) { return a.rtt < b.rtt; });
  const geo::LatLon focus = best_scout->probe->location;
  // Refinement round: sample probes with weight falling off in distance
  // from the scouting winner, so the local neighbourhood is represented.
  std::vector<double> refine_weights(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const double km = geo::distance_km(probes[i].location, focus);
    refine_weights[i] = 1.0 / ((km + 50.0) * (km + 50.0));
  }
  for (std::size_t i = scout_size; i < panel_size; ++i) {
    const auto& probe = probes[util::sample_discrete(rng, refine_weights)];
    samples.push_back({measure_rtt(probe, dc.location, rng), &probe});
  }
  GeoEstimate estimate;
  const fault::Site probe_site = fault_plan != nullptr
                                     ? fault_plan->site(fault::sites::kGeoProbe)
                                     : fault::Site{};
  if (probe_site.rates.any()) {
    // Faults are applied to the *collected* dataset: every probe above
    // was measured exactly as in the fault-free run (same rng draws),
    // and the loss decision per panel slot is stateless, so the
    // surviving samples at a low loss rate are a superset of those at
    // any higher rate. Located-or-not then depends only on whether the
    // survivors clear the quorum — the nesting that makes the located
    // count monotone in the loss rate.
    std::size_t kept = 0;
    for (std::size_t slot = 0; slot < samples.size(); ++slot) {
      const fault::FaultKind kind =
          fault::decide(fault_plan->seed, probe_site, ip.hash(),
                        static_cast<std::uint32_t>(slot));
      if (kind == fault::FaultKind::Timeout || kind == fault::FaultKind::Error) {
        ++estimate.lost_probes;
        continue;  // no response: the slot never enters the voting set
      }
      if (kind == fault::FaultKind::SlowResponse) {
        samples[slot].rtt += options_.slow_probe_penalty_ms;
      }
      samples[kept++] = samples[slot];
    }
    samples.resize(kept);
    if (samples.size() < options_.quorum) {
      return estimate;  // below quorum: refuse to locate, report the losses
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.rtt < b.rtt; });

  // The lowest-RTT probes vote with their own country; votes fall off
  // steeply with RTT so near probes dominate (delay-based location).
  const std::size_t voters = std::min<std::size_t>(options_.voters, samples.size());
  std::map<std::string, double> votes;
  std::map<std::string, std::size_t> headcount;
  for (std::size_t i = 0; i < voters; ++i) {
    const double weight =
        1.0 / std::pow(std::max(samples[i].rtt, 0.1), options_.vote_falloff);
    votes[samples[i].probe->country] += weight;
    ++headcount[samples[i].probe->country];
  }

  double best = 0.0;
  for (const auto& [country, weight] : votes) {
    if (weight > best) {
      best = weight;
      estimate.country = country;
    }
  }
  estimate.country_agreement =
      voters == 0 ? 0.0
                  : static_cast<double>(headcount[estimate.country]) /
                        static_cast<double>(voters);
  estimate.min_rtt_ms = samples.empty() ? 0.0 : samples.front().rtt;
  if (const geo::Country* country = geo::find_country(estimate.country)) {
    estimate.continent = country->continent;
  }
  return estimate;
}

}  // namespace cbwt::geoloc
