#include "geoloc/service.h"

#include <array>
#include <chrono>
#include <unordered_set>

#include "obs/trace_buffer.h"
#include "runtime/parallel.h"
#include "util/contract.h"

namespace cbwt::geoloc {

namespace {

/// Latency buckets for one active measurement (seconds). Simulated
/// probes are microsecond-scale; real RTT panels would fill the tail.
constexpr std::array<double, 6> kMeasureBounds = {1e-5, 1e-4, 1e-3,
                                                  1e-2, 1e-1, 1.0};

}  // namespace

std::string_view to_string(Tool tool) noexcept {
  switch (tool) {
    case Tool::GroundTruth: return "ground-truth";
    case Tool::MaxMindLike: return "maxmind-like";
    case Tool::IpApiLike: return "ip-api-like";
    case Tool::ActiveIpmap: return "ipmap-like";
    case Tool::LegalEntity: return "legal-entity";
  }
  return "?";
}

GeoService::GeoService(const world::World& world, CommercialDb maxmind_like,
                       CommercialDb ipapi_like, const ProbeMesh& mesh,
                       ActiveGeolocatorOptions active_options,
                       std::uint64_t measurement_seed, runtime::ThreadPool* pool,
                       obs::Registry* registry, const fault::FaultPlan* fault_plan)
    : world_(&world), maxmind_like_(std::move(maxmind_like)),
      ipapi_like_(std::move(ipapi_like)), active_(world, mesh, active_options),
      measurement_seed_(measurement_seed), pool_(pool) {
  if (fault_plan != nullptr && fault_plan->enabled()) {
    fault_plan_ = fault_plan;
    measure_site_ = fault_plan->site(fault::sites::kGeoMeasure);
    if (measure_site_.rates.any()) {
      measure_metrics_ = fault::SiteMetrics::resolve(registry, fault::sites::kGeoMeasure);
    }
    if (fault_plan->site(fault::sites::kGeoProbe).rates.any()) {
      probe_metrics_ = fault::SiteMetrics::resolve(registry, fault::sites::kGeoProbe);
    }
  }
  if (registry != nullptr) {
    registry_ = registry;
    batches_ = &registry->counter("cbwt_geoloc_probe_batches_total");
    batch_ips_ = &registry->counter("cbwt_geoloc_probe_batch_ips_total");
    cache_hits_ = &registry->counter("cbwt_geoloc_cache_hits_total");
    cache_misses_ = &registry->counter("cbwt_geoloc_cache_misses_total");
    located_ = &registry->counter("cbwt_geoloc_located_total");
    unlocated_ = &registry->counter("cbwt_geoloc_unlocated_total");
    measure_seconds_ =
        &registry->histogram("cbwt_geoloc_measure_seconds", kMeasureBounds);
  }
}

std::string GeoService::measure_active(const net::IpAddress& ip) const {
  std::uint32_t attempt = 0;
  if (fault_plan_ != nullptr && measure_site_.rates.any()) {
    // Whole-measurement fate: pure in (plan, ip), so concurrent and
    // repeated measurements of the same IP agree without coordination.
    const fault::CallFate fate =
        fault::fate_of(*fault_plan_, measure_site_, ip.hash(), measure_retry_);
    measure_metrics_.count(fate);
    if (!fate.ok()) {
      // The engine never returned a verdict: cache the IP as unlocated
      // and let the analysis tables degrade gracefully.
      measure_metrics_.count_degraded();
      if (located_ != nullptr) unlocated_->add(1);
      return {};
    }
    attempt = fate.attempts - 1;
  }
  auto rng = measurement_rng(ip, attempt);
  GeoEstimate estimate;
  if (measure_seconds_ != nullptr) {
    const auto begin = std::chrono::steady_clock::now();
    estimate = active_.locate(ip, rng, fault_plan_);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;
    measure_seconds_->observe(elapsed.count());
  } else {
    estimate = active_.locate(ip, rng, fault_plan_);
  }
  if (estimate.lost_probes > 0 && probe_metrics_.injected != nullptr) {
    probe_metrics_.injected->add(estimate.lost_probes);
    // An empty verdict here means the surviving panel missed quorum.
    if (estimate.country.empty()) probe_metrics_.count_degraded();
  }
  if (located_ != nullptr) {
    (estimate.country.empty() ? *unlocated_ : *located_).add(1);
  }
  return estimate.country;
}

util::Rng GeoService::measurement_rng(const net::IpAddress& ip,
                                      std::uint32_t attempt) const noexcept {
  std::uint64_t stream = util::mix64(measurement_seed_ ^ ip.hash());
  if (attempt > 0) {
    // Retried measurements schedule a fresh panel: salt the stream, but
    // keep attempt 0 on the legacy stream byte for byte.
    stream = util::mix64(stream + 0x9E3779B97F4A7C15ULL * attempt);
  }
  return util::Rng(stream);
}

std::string GeoService::locate_active(const net::IpAddress& ip) const {
  {
    util::MutexLock lock(cache_mutex_);
    if (const auto it = active_cache_.find(ip); it != active_cache_.end()) {
      if (cache_hits_ != nullptr) cache_hits_->add(1);
      return it->second;
    }
  }
  if (cache_misses_ != nullptr) cache_misses_->add(1);
  std::string country = measure_active(ip);
  util::MutexLock lock(cache_mutex_);
  // A racing lookup may have inserted first; both computed the same
  // per-IP verdict, so either insert wins harmlessly.
  active_cache_.emplace(ip, country);
  return country;
}

void GeoService::prefetch(std::span<const net::IpAddress> ips) const {
  std::vector<net::IpAddress> missing;
  {
    util::MutexLock lock(cache_mutex_);
    std::unordered_set<net::IpAddress> queued;
    for (const auto& ip : ips) {
      if (!active_cache_.contains(ip) && queued.insert(ip).second) {
        missing.push_back(ip);
      }
    }
  }
  if (missing.empty()) return;
  if (batches_ != nullptr) {
    batches_->add(1);
    batch_ips_->add(missing.size());
  }
  const auto countries = runtime::parallel_map<std::string>(
      pool_, missing.size(), {.min_shard_items = 8},
      [&](std::size_t i) {
        obs::ScopedTrace trace(registry_, "geoloc/active_probe", i);
        return measure_active(missing[i]);
      });
  util::MutexLock lock(cache_mutex_);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    active_cache_.emplace(missing[i], countries[i]);
  }
}

std::string GeoService::locate(const net::IpAddress& ip, Tool tool) const {
  CBWT_ASSERT(world_ != nullptr);
  switch (tool) {
    case Tool::GroundTruth:
      return world_->true_country_of(ip);
    case Tool::MaxMindLike:
      return maxmind_like_.locate(ip).value_or(std::string{});
    case Tool::IpApiLike:
      return ipapi_like_.locate(ip).value_or(std::string{});
    case Tool::ActiveIpmap:
      return locate_active(ip);
    case Tool::LegalEntity: {
      const world::Server* server = world_->find_server(ip);
      if (server == nullptr) return {};
      return world_->org(server->org).hq_country;
    }
  }
  return {};
}

std::optional<geo::Continent> GeoService::continent(const net::IpAddress& ip,
                                                    Tool tool) const {
  const auto code = locate(ip, tool);
  const geo::Country* country = geo::find_country(code);
  if (country == nullptr) return std::nullopt;
  return country->continent;
}

std::optional<geo::Region> GeoService::region(const net::IpAddress& ip, Tool tool) const {
  const auto code = locate(ip, tool);
  return geo::region_of_code(code);
}

Agreement pairwise_agreement(const GeoService& service,
                             const std::vector<net::IpAddress>& ips, Tool a, Tool b) {
  Agreement agreement;
  if (ips.empty()) return agreement;
  if (a == Tool::ActiveIpmap || b == Tool::ActiveIpmap) service.prefetch(ips);
  std::size_t same_country = 0;
  std::size_t same_continent = 0;
  for (const auto& ip : ips) {
    const auto country_a = service.locate(ip, a);
    const auto country_b = service.locate(ip, b);
    if (!country_a.empty() && country_a == country_b) ++same_country;
    const auto continent_a = service.continent(ip, a);
    const auto continent_b = service.continent(ip, b);
    if (continent_a && continent_b && *continent_a == *continent_b) ++same_continent;
  }
  agreement.country = static_cast<double>(same_country) / static_cast<double>(ips.size());
  agreement.continent =
      static_cast<double>(same_continent) / static_cast<double>(ips.size());
  CBWT_ENSURES(agreement.country >= 0.0 && agreement.country <= 1.0);
  CBWT_ENSURES(agreement.continent >= 0.0 && agreement.continent <= 1.0);
  return agreement;
}

}  // namespace cbwt::geoloc
