// Unified geolocation front-end over the three tools the paper compares
// (MaxMind-like, IP-API-like, IPmap-like active measurement) plus the
// hidden ground truth, with memoized active measurements and the
// pairwise-agreement computation behind Table 3.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/retry.h"
#include "geoloc/active.h"
#include "geoloc/commercial.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "util/thread_annotations.h"

namespace cbwt::geoloc {

enum class Tool : std::uint8_t {
  GroundTruth,   ///< the world's real server placement (validation only)
  MaxMindLike,
  IpApiLike,
  ActiveIpmap,
  LegalEntity,   ///< WHOIS-style: the operator's registered home country
                 ///< (what several related works call "geolocation",
                 ///< Table 9) — correct for liability, useless for routing
};

[[nodiscard]] std::string_view to_string(Tool tool) noexcept;

/// One-stop lookup: country (ISO code) per IP per tool. Active
/// measurements are lazy and cached (the paper also measures each IP
/// once and reuses the result).
///
/// Each IP's probe panel draws from its own RNG, derived statelessly
/// from (measurement seed, IP): the verdict for an IP is a pure function
/// of the seed, independent of lookup order, caching, and — via
/// prefetch() — of how many threads measured it.
class GeoService {
 public:
  /// `pool` (optional, not owned, must outlive the service) parallelizes
  /// prefetch(); lookups themselves stay single-IP. `registry` (optional,
  /// not owned, must outlive the service) counts active-measurement
  /// traffic: probe batches, cache hits/misses, located/unlocated
  /// verdicts, and a per-measurement latency histogram. Instrumentation
  /// never affects verdicts.
  ///
  /// `fault_plan` (optional, not owned, must outlive the service)
  /// subjects active measurements to injection: whole-measurement faults
  /// (`geoloc_measure` site, retried with the default policy; an
  /// exhausted measurement caches an empty = unlocated verdict) and
  /// per-probe loss inside the panel (`geoloc_probe` site, handled by
  /// ActiveGeolocator: survivors below quorum -> unlocated). Fates are
  /// pure functions of (plan, ip), never of lookup order or thread
  /// count, so the thread-invariance contract of the cache holds under
  /// injection too.
  GeoService(const world::World& world, CommercialDb maxmind_like, CommercialDb ipapi_like,
             const ProbeMesh& mesh, ActiveGeolocatorOptions active_options,
             std::uint64_t measurement_seed, runtime::ThreadPool* pool = nullptr,
             obs::Registry* registry = nullptr,
             const fault::FaultPlan* fault_plan = nullptr);

  /// Country code for `ip` under `tool`; empty string when unlocatable.
  /// Thread-safe (the active cache is internally synchronized).
  [[nodiscard]] std::string locate(const net::IpAddress& ip, Tool tool) const;

  /// Measures every not-yet-cached IP of `ips` with the active tool,
  /// sharded across the pool. Results are identical to looking each IP
  /// up on demand — this is purely a throughput lever.
  void prefetch(std::span<const net::IpAddress> ips) const;

  /// Continent/region helpers driven by locate().
  [[nodiscard]] std::optional<geo::Continent> continent(const net::IpAddress& ip,
                                                        Tool tool) const;
  [[nodiscard]] std::optional<geo::Region> region(const net::IpAddress& ip,
                                                  Tool tool) const;

  [[nodiscard]] const world::World& world() const noexcept { return *world_; }

 private:
  /// The per-IP generator: stateless in (seed, ip), the root of the
  /// order- and thread-count-independence of active verdicts. Attempt 0
  /// is the legacy stream (fault-free runs are byte-identical); retried
  /// measurements re-draw their panel from an attempt-salted stream, as
  /// a re-scheduled panel would.
  [[nodiscard]] util::Rng measurement_rng(const net::IpAddress& ip,
                                          std::uint32_t attempt) const noexcept;
  [[nodiscard]] std::string locate_active(const net::IpAddress& ip) const;

  /// Measures `ip` with the active tool, updating the measurement
  /// metrics when a registry is attached.
  [[nodiscard]] std::string measure_active(const net::IpAddress& ip) const;

  const world::World* world_;
  CommercialDb maxmind_like_;
  CommercialDb ipapi_like_;
  ActiveGeolocator active_;
  std::uint64_t measurement_seed_;
  runtime::ThreadPool* pool_;
  /// Null unless a live (enabled) plan was attached — one branch on the
  /// fault-free path. Fates use fate_of directly (no Retrier): lookups
  /// run concurrently and a per-IP fate must not depend on any shared
  /// breaker state.
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::Site measure_site_;
  fault::RetryPolicy measure_retry_;
  fault::SiteMetrics measure_metrics_;
  fault::SiteMetrics probe_metrics_;
  mutable util::Mutex cache_mutex_;
  mutable std::unordered_map<net::IpAddress, std::string> active_cache_
      CBWT_GUARDED_BY(cache_mutex_);

  // Metric handles, resolved once at construction; all null when no
  // registry is attached, so the instrumented paths cost one null check.
  // The registry itself is kept for flight-recorder (ScopedTrace) emits
  // from probe workers.
  obs::Registry* registry_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* batch_ips_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* located_ = nullptr;
  obs::Counter* unlocated_ = nullptr;
  obs::Histogram* measure_seconds_ = nullptr;
};

/// Pairwise agreement between two tools over an IP set (Table 3).
struct Agreement {
  double country = 0.0;    ///< share of IPs with identical country
  double continent = 0.0;  ///< share with identical continent
};

[[nodiscard]] Agreement pairwise_agreement(const GeoService& service,
                                           const std::vector<net::IpAddress>& ips,
                                           Tool a, Tool b);

/// Per-organization mis-geolocation stats under a commercial tool,
/// against the active tool as reference (Table 4).
struct MisgeolocationStats {
  std::uint64_t ips = 0;
  std::uint64_t wrong_country_ips = 0;
  std::uint64_t wrong_continent_ips = 0;
  std::uint64_t requests = 0;
  std::uint64_t wrong_country_requests = 0;
  std::uint64_t wrong_continent_requests = 0;
};

}  // namespace cbwt::geoloc
