// Unified geolocation front-end over the three tools the paper compares
// (MaxMind-like, IP-API-like, IPmap-like active measurement) plus the
// hidden ground truth, with memoized active measurements and the
// pairwise-agreement computation behind Table 3.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geoloc/active.h"
#include "geoloc/commercial.h"

namespace cbwt::geoloc {

enum class Tool : std::uint8_t {
  GroundTruth,   ///< the world's real server placement (validation only)
  MaxMindLike,
  IpApiLike,
  ActiveIpmap,
  LegalEntity,   ///< WHOIS-style: the operator's registered home country
                 ///< (what several related works call "geolocation",
                 ///< Table 9) — correct for liability, useless for routing
};

[[nodiscard]] std::string_view to_string(Tool tool) noexcept;

/// One-stop lookup: country (ISO code) per IP per tool. Active
/// measurements are lazy and cached (the paper also measures each IP
/// once and reuses the result).
class GeoService {
 public:
  GeoService(const world::World& world, CommercialDb maxmind_like, CommercialDb ipapi_like,
             const ProbeMesh& mesh, ActiveGeolocatorOptions active_options,
             std::uint64_t measurement_seed);

  /// Country code for `ip` under `tool`; empty string when unlocatable.
  [[nodiscard]] std::string locate(const net::IpAddress& ip, Tool tool) const;

  /// Continent/region helpers driven by locate().
  [[nodiscard]] std::optional<geo::Continent> continent(const net::IpAddress& ip,
                                                        Tool tool) const;
  [[nodiscard]] std::optional<geo::Region> region(const net::IpAddress& ip,
                                                  Tool tool) const;

  [[nodiscard]] const world::World& world() const noexcept { return *world_; }

 private:
  const world::World* world_;
  CommercialDb maxmind_like_;
  CommercialDb ipapi_like_;
  ActiveGeolocator active_;
  mutable util::Rng measurement_rng_;
  mutable std::unordered_map<net::IpAddress, std::string> active_cache_;
};

/// Pairwise agreement between two tools over an IP set (Table 3).
struct Agreement {
  double country = 0.0;    ///< share of IPs with identical country
  double continent = 0.0;  ///< share with identical continent
};

[[nodiscard]] Agreement pairwise_agreement(const GeoService& service,
                                           const std::vector<net::IpAddress>& ips,
                                           Tool a, Tool b);

/// Per-organization mis-geolocation stats under a commercial tool,
/// against the active tool as reference (Table 4).
struct MisgeolocationStats {
  std::uint64_t ips = 0;
  std::uint64_t wrong_country_ips = 0;
  std::uint64_t wrong_continent_ips = 0;
  std::uint64_t requests = 0;
  std::uint64_t wrong_country_requests = 0;
  std::uint64_t wrong_continent_requests = 0;
};

}  // namespace cbwt::geoloc
