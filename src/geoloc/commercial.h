// Commercial geolocation-database emulators (MaxMind-like, IP-API-like).
// Their documented failure mode for infrastructure is modelled directly:
// server IPs are filed under the *legal entity's* home country (Google's
// Frankfurt edge shows up in Mountain View), while end-user (eyeball)
// space is accurate — that is what these databases are sold for (§3.4).
#pragma once

#include <optional>
#include <string>

#include "net/ip.h"
#include "net/prefix_trie.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::geoloc {

/// A database snapshot: IP -> ISO country code.
class CommercialDb {
 public:
  CommercialDb() = default;

  /// Registers an exact address entry.
  void add_ip(const net::IpAddress& ip, std::string country);
  /// Registers a covering prefix entry (eyeball blocks).
  void add_prefix(const net::IpPrefix& prefix, std::string country);

  /// Longest-prefix lookup; nullopt for unmapped space.
  [[nodiscard]] std::optional<std::string> locate(const net::IpAddress& ip) const;

  [[nodiscard]] std::size_t entries() const noexcept { return trie_.size(); }

 private:
  net::PrefixTrie<std::string> trie_;
};

struct CommercialDbOptions {
  /// Probability an infrastructure IP is filed at the operator's HQ.
  double hq_bias = 0.82;
  /// Probability of outright garbage (random country) on infra IPs.
  double noise = 0.03;
};

/// Builds the MaxMind-like snapshot from the world: every server IP is
/// entered (HQ-biased), every eyeball block accurately.
[[nodiscard]] CommercialDb build_maxmind_like(const world::World& world,
                                              const CommercialDbOptions& options,
                                              util::Rng& rng);

/// Builds the IP-API-like snapshot as a high-agreement sibling of a
/// MaxMind-like one: it copies most entries and independently errs on
/// the rest (the paper measures 96%+ country agreement between the two).
[[nodiscard]] CommercialDb build_ipapi_like(const world::World& world,
                                            const CommercialDb& maxmind_like,
                                            double copy_probability, util::Rng& rng);

}  // namespace cbwt::geoloc
