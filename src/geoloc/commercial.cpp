#include "geoloc/commercial.h"

#include "geo/country.h"
#include "util/contract.h"

namespace cbwt::geoloc {

namespace {

std::string random_country(util::Rng& rng) {
  const auto countries = geo::all_countries();
  return std::string(
      countries[static_cast<std::size_t>(rng.next_below(countries.size()))].code);
}

unsigned host_prefix_length(const net::IpAddress& ip) {
  return ip.is_v4() ? 32U : 128U;
}

}  // namespace

void CommercialDb::add_ip(const net::IpAddress& ip, std::string country) {
  CBWT_EXPECTS(!country.empty());  // an empty answer means "unlocated", never stored
  trie_.insert(net::IpPrefix{ip, host_prefix_length(ip)}, std::move(country));
}

void CommercialDb::add_prefix(const net::IpPrefix& prefix, std::string country) {
  CBWT_EXPECTS(!country.empty());
  trie_.insert(prefix, std::move(country));
}

std::optional<std::string> CommercialDb::locate(const net::IpAddress& ip) const {
  const std::string* hit = trie_.lookup(ip);
  if (hit == nullptr) return std::nullopt;
  return *hit;
}

CommercialDb build_maxmind_like(const world::World& world,
                                const CommercialDbOptions& options, util::Rng& rng) {
  CommercialDb db;
  for (const auto& server : world.servers()) {
    const auto& org = world.org(server.org);
    const std::string truth = world.datacenter(server.datacenter).country;
    std::string reported;
    if (rng.chance(options.noise)) {
      reported = random_country(rng);
    } else if (rng.chance(options.hq_bias)) {
      reported = org.hq_country;
    } else {
      reported = truth;
    }
    db.add_ip(server.ip, std::move(reported));
  }
  // Eyeball space: accurate per-country blocks — this is the market these
  // databases optimize for.
  for (const auto& [country, prefix] : world.addresses().eyeball_blocks()) {
    db.add_prefix(prefix, country);
  }
  return db;
}

CommercialDb build_ipapi_like(const world::World& world, const CommercialDb& maxmind_like,
                              double copy_probability, util::Rng& rng) {
  CommercialDb db;
  for (const auto& server : world.servers()) {
    const auto& org = world.org(server.org);
    const auto sibling = maxmind_like.locate(server.ip);
    std::string reported;
    if (sibling && rng.chance(copy_probability)) {
      reported = *sibling;  // same upstream sources -> same answer
    } else if (rng.chance(0.7)) {
      reported = org.hq_country;
    } else {
      reported = world.datacenter(server.datacenter).country;
    }
    db.add_ip(server.ip, std::move(reported));
  }
  for (const auto& [country, prefix] : world.addresses().eyeball_blocks()) {
    db.add_prefix(prefix, country);
  }
  return db;
}

}  // namespace cbwt::geoloc
