// Active (RIPE-IPmap-style) geolocation: a global probe mesh measures
// RTT to the target; the lowest-RTT probes vote on the target's country
// and a majority decides. The mesh is Europe-dense like RIPE Atlas
// (5K+ of 11K probes in Europe), which is what makes the method reliable
// at country granularity for European infrastructure (§3.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "geo/country.h"
#include "geo/location.h"
#include "net/ip.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::geoloc {

struct Probe {
  std::string country;
  geo::LatLon location;
};

struct MeshConfig {
  std::uint32_t probes = 1100;  ///< scaled-down RIPE Atlas (11K in paper)
};

/// A deployed probe mesh (built once per study).
class ProbeMesh {
 public:
  ProbeMesh(MeshConfig config, util::Rng& rng);

  [[nodiscard]] const std::vector<Probe>& probes() const noexcept { return probes_; }
  /// Number of probes in a given country.
  [[nodiscard]] std::size_t count_in(std::string_view country) const;

 private:
  std::vector<Probe> probes_;
};

/// One geolocation verdict.
struct GeoEstimate {
  std::string country;          ///< majority country (empty = unlocatable)
  geo::Continent continent = geo::Continent::Europe;
  double country_agreement = 0; ///< share of voters backing the winner
  double min_rtt_ms = 0;
  std::uint32_t lost_probes = 0; ///< panel probes lost to injected faults
};

struct ActiveGeolocatorOptions {
  std::uint32_t probes_per_measurement = 100;  ///< paper: >100 probes per IP
  std::uint32_t voters = 12;                   ///< lowest-RTT probes that vote
  /// Probe-side access latency (min over repeated pings keeps this low).
  double last_mile_ms_min = 0.5;
  double last_mile_ms_max = 3.0;
  double queue_noise_rate = 2.0;               ///< exp-distributed queueing
  /// Votes are weighted by rtt^-vote_falloff: the probes closest to the
  /// target dominate, as in delay-based multilateration.
  double vote_falloff = 4.0;
  /// Minimum surviving panel for a verdict under fault injection: fewer
  /// than `quorum` responsive probes means the engine refuses to locate
  /// the IP (empty estimate). Only enforced when a live fault plan is
  /// passed to locate(), so the fault-free path is untouched.
  std::uint32_t quorum = 5;
  /// RTT penalty of a SlowResponse-faulted probe (congested path): the
  /// sample survives but drops down the low-RTT voter ranking.
  double slow_probe_penalty_ms = 150.0;
};

/// Measurement-driven geolocator over a World (the World provides the
/// hidden ground truth that RTTs are synthesized from; the estimator
/// itself never reads the true country).
class ActiveGeolocator {
 public:
  ActiveGeolocator(const world::World& world, const ProbeMesh& mesh,
                   ActiveGeolocatorOptions options = {});

  /// Locates a server IP. Unknown IPs (not in the world) return an empty
  /// estimate. Deterministic given the Rng.
  ///
  /// `fault_plan` (optional) subjects each panel slot to the
  /// `geoloc_probe` injection site: lost probes (Timeout/Error) are
  /// discarded from the voting set, slow probes are penalised down the
  /// RTT ranking, and a surviving panel below `quorum` yields an empty
  /// (unlocated) estimate. Probes are measured first and losses applied
  /// to the collected dataset, so the rng stream matches the fault-free
  /// run draw for draw and the surviving sample set at rate r is a
  /// superset of the one at any higher rate (nested-loss monotonicity,
  /// checked by tests/test_fault.cpp).
  [[nodiscard]] GeoEstimate locate(const net::IpAddress& ip, util::Rng& rng,
                                   const fault::FaultPlan* fault_plan = nullptr) const;

 private:
  [[nodiscard]] double measure_rtt(const Probe& probe, const geo::LatLon& target,
                                   util::Rng& rng) const;

  const world::World* world_;
  const ProbeMesh* mesh_;
  ActiveGeolocatorOptions options_;
};

}  // namespace cbwt::geoloc
