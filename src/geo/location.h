// Geographic primitives: latitude/longitude pairs and great-circle
// distance. The active-geolocation RTT model and the geo-DNS policies
// both run on these.
#pragma once

#include <compare>

namespace cbwt::geo {

/// A point on the globe in decimal degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  friend constexpr auto operator<=>(const LatLon&, const LatLon&) noexcept = default;
};

/// Great-circle (haversine) distance in kilometres.
[[nodiscard]] double distance_km(const LatLon& a, const LatLon& b) noexcept;

/// One-way propagation delay in milliseconds for light in fibre
/// (~2/3 c) along the great circle, with a path-stretch factor to model
/// that real routes are not geodesics.
[[nodiscard]] double propagation_delay_ms(const LatLon& a, const LatLon& b,
                                          double path_stretch = 1.6) noexcept;

}  // namespace cbwt::geo
