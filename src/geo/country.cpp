#include "geo/country.h"

#include <algorithm>
#include <array>

#include "util/contract.h"

namespace cbwt::geo {

namespace {

constexpr Continent EU = Continent::Europe;
constexpr Continent NA = Continent::NorthAmerica;
constexpr Continent SA = Continent::SouthAmerica;
constexpr Continent AS = Continent::Asia;
constexpr Continent AF = Continent::Africa;
constexpr Continent OC = Continent::Oceania;

// code, name, continent, EU28, centroid, population (millions),
// infra density 0..100 (datacenter/hosting proxy), probe share (relative).
// Infra density is calibrated so that the paper's qualitative ordering
// holds: NL/DE/IE/GB/FR are European hosting magnets; CY/GR/RO/DK are not.
constexpr std::array<Country, 60> kCountries = {{
    {"AR", "Argentina", SA, false, {-34.6, -58.4}, 44.5, 15, 0.004},
    {"AT", "Austria", EU, true, {48.2, 16.4}, 8.8, 42, 0.020},
    {"AU", "Australia", OC, false, {-33.9, 151.2}, 24.9, 45, 0.010},
    {"BE", "Belgium", EU, true, {50.8, 4.4}, 11.4, 45, 0.022},
    {"BG", "Bulgaria", EU, true, {42.7, 23.3}, 7.0, 12, 0.010},
    {"BR", "Brazil", SA, false, {-23.5, -46.6}, 209.5, 30, 0.008},
    {"CA", "Canada", NA, false, {43.7, -79.4}, 37.1, 55, 0.015},
    {"CH", "Switzerland", EU, false, {47.4, 8.5}, 8.5, 60, 0.025},
    {"CL", "Chile", SA, false, {-33.4, -70.6}, 18.7, 12, 0.002},
    {"CN", "China", AS, false, {31.2, 121.5}, 1392.7, 60, 0.004},
    {"CO", "Colombia", SA, false, {4.7, -74.1}, 49.7, 8, 0.002},
    {"CY", "Cyprus", EU, true, {35.2, 33.4}, 1.2, 3, 0.003},
    {"CZ", "Czechia", EU, true, {50.1, 14.4}, 10.6, 30, 0.020},
    {"DE", "Germany", EU, true, {50.1, 8.7}, 82.9, 85, 0.110},
    {"DK", "Denmark", EU, true, {55.7, 12.6}, 5.8, 38, 0.018},
    {"EE", "Estonia", EU, true, {59.4, 24.8}, 1.3, 15, 0.006},
    {"EG", "Egypt", AF, false, {30.0, 31.2}, 98.4, 8, 0.001},
    {"ES", "Spain", EU, true, {40.4, -3.7}, 46.7, 50, 0.040},
    {"FI", "Finland", EU, true, {60.2, 24.9}, 5.5, 35, 0.015},
    {"FR", "France", EU, true, {48.9, 2.4}, 67.0, 70, 0.070},
    {"GB", "United Kingdom", EU, true, {51.5, -0.1}, 66.5, 80, 0.085},
    {"GR", "Greece", EU, true, {38.0, 23.7}, 10.7, 13, 0.012},
    {"HK", "Hong Kong", AS, false, {22.3, 114.2}, 7.5, 50, 0.002},
    {"HR", "Croatia", EU, true, {45.8, 16.0}, 4.1, 8, 0.006},
    {"HU", "Hungary", EU, true, {47.5, 19.0}, 9.8, 20, 0.014},
    {"IE", "Ireland", EU, true, {53.3, -6.3}, 4.9, 75, 0.014},
    {"IN", "India", AS, false, {19.1, 72.9}, 1352.6, 25, 0.004},
    {"IT", "Italy", EU, true, {41.9, 12.5}, 60.4, 45, 0.040},
    {"JP", "Japan", AS, false, {35.7, 139.7}, 126.5, 70, 0.006},
    {"KE", "Kenya", AF, false, {-1.3, 36.8}, 51.4, 5, 0.001},
    {"KR", "South Korea", AS, false, {37.6, 127.0}, 51.6, 50, 0.003},
    {"LT", "Lithuania", EU, true, {54.7, 25.3}, 2.8, 12, 0.005},
    {"LU", "Luxembourg", EU, true, {49.6, 6.1}, 0.6, 35, 0.005},
    {"LV", "Latvia", EU, true, {56.9, 24.1}, 1.9, 10, 0.005},
    {"MD", "Moldova", EU, false, {47.0, 28.9}, 3.5, 3, 0.002},
    {"MT", "Malta", EU, true, {35.9, 14.5}, 0.5, 5, 0.002},
    {"MX", "Mexico", NA, false, {19.4, -99.1}, 126.2, 15, 0.003},
    {"MY", "Malaysia", AS, false, {3.1, 101.7}, 31.5, 15, 0.002},
    {"NG", "Nigeria", AF, false, {6.5, 3.4}, 195.9, 5, 0.001},
    {"NL", "Netherlands", EU, true, {52.4, 4.9}, 17.2, 90, 0.065},
    {"NO", "Norway", EU, false, {59.9, 10.7}, 5.3, 40, 0.012},
    {"NZ", "New Zealand", OC, false, {-36.8, 174.8}, 4.9, 15, 0.003},
    {"PA", "Panama", NA, false, {9.0, -79.5}, 4.2, 3, 0.001},
    {"PE", "Peru", SA, false, {-12.0, -77.0}, 32.0, 5, 0.001},
    {"PL", "Poland", EU, true, {52.2, 21.0}, 38.0, 30, 0.030},
    {"PT", "Portugal", EU, true, {38.7, -9.1}, 10.3, 20, 0.012},
    {"RO", "Romania", EU, true, {44.4, 26.1}, 19.5, 22, 0.015},
    {"RS", "Serbia", EU, false, {44.8, 20.5}, 7.0, 8, 0.004},
    {"RU", "Russia", EU, false, {55.8, 37.6}, 144.5, 35, 0.030},
    {"SE", "Sweden", EU, true, {59.3, 18.1}, 10.2, 55, 0.025},
    {"SG", "Singapore", AS, false, {1.3, 103.8}, 5.6, 65, 0.003},
    {"SI", "Slovenia", EU, true, {46.1, 14.5}, 2.1, 10, 0.005},
    {"SK", "Slovakia", EU, true, {48.1, 17.1}, 5.4, 15, 0.007},
    {"TH", "Thailand", AS, false, {13.8, 100.5}, 69.4, 12, 0.002},
    {"TN", "Tunisia", AF, false, {36.8, 10.2}, 11.6, 4, 0.001},
    {"TW", "Taiwan", AS, false, {25.0, 121.5}, 23.6, 35, 0.002},
    {"UA", "Ukraine", EU, false, {50.5, 30.5}, 44.6, 10, 0.008},
    {"US", "United States", NA, false, {39.0, -77.5}, 327.2, 100, 0.120},
    {"ZA", "South Africa", AF, false, {-26.2, 28.0}, 57.8, 18, 0.004},
    {"", "", EU, false, {0, 0}, 0, 0, 0},  // sentinel, not exposed
}};

constexpr std::size_t kCountryCount = kCountries.size() - 1;

constexpr bool codes_sorted() {
  for (std::size_t i = 1; i < kCountryCount; ++i) {
    if (!(kCountries[i - 1].code < kCountries[i].code)) return false;
  }
  return true;
}
CBWT_STATIC_EXPECT(codes_sorted(), "country table must stay sorted by code");
CBWT_STATIC_EXPECT(kCountries.back().code.empty(),
                   "last table entry must be the unexposed sentinel");

}  // namespace

std::string_view to_string(Continent continent) noexcept {
  switch (continent) {
    case Continent::Europe: return "Europe";
    case Continent::NorthAmerica: return "N. America";
    case Continent::SouthAmerica: return "S. America";
    case Continent::Asia: return "Asia";
    case Continent::Africa: return "Africa";
    case Continent::Oceania: return "Oceania";
  }
  return "?";
}

std::string_view to_string(Region region) noexcept {
  switch (region) {
    case Region::EU28: return "EU 28";
    case Region::RestOfEurope: return "Rest of Europe";
    case Region::NorthAmerica: return "N. America";
    case Region::SouthAmerica: return "S. America";
    case Region::Asia: return "Asia";
    case Region::Africa: return "Africa";
    case Region::Oceania: return "Oceania";
  }
  return "?";
}

std::span<const Country> all_countries() noexcept {
  CBWT_ASSERT(kCountryCount < kCountries.size());  // span excludes the sentinel
  return {kCountries.data(), kCountryCount};
}

const Country* find_country(std::string_view code) noexcept {
  const auto table = all_countries();
  const auto it = std::lower_bound(
      table.begin(), table.end(), code,
      [](const Country& c, std::string_view key) { return c.code < key; });
  if (it == table.end() || it->code != code) return nullptr;
  CBWT_ENSURES(!it->code.empty());  // the sentinel row is never returned
  return &*it;
}

Region region_of(const Country& country) noexcept {
  if (country.eu28) return Region::EU28;
  switch (country.continent) {
    case Continent::Europe: return Region::RestOfEurope;
    case Continent::NorthAmerica: return Region::NorthAmerica;
    case Continent::SouthAmerica: return Region::SouthAmerica;
    case Continent::Asia: return Region::Asia;
    case Continent::Africa: return Region::Africa;
    case Continent::Oceania: return Region::Oceania;
  }
  return Region::RestOfEurope;
}

std::optional<Region> region_of_code(std::string_view code) noexcept {
  const Country* country = find_country(code);
  if (country == nullptr) return std::nullopt;
  return region_of(*country);
}

std::size_t country_count() noexcept { return kCountryCount; }

}  // namespace cbwt::geo
