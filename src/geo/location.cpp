#include "geo/location.h"

#include <cmath>
#include <numbers>

namespace cbwt::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
// Speed of light in fibre (2/3 of c), in km per millisecond.
constexpr double kFibreSpeedKmPerMs = 299.792458 * 2.0 / 3.0;

double radians(double degrees) noexcept { return degrees * std::numbers::pi / 180.0; }
}  // namespace

double distance_km(const LatLon& a, const LatLon& b) noexcept {
  const double phi1 = radians(a.lat);
  const double phi2 = radians(b.lat);
  const double dphi = radians(b.lat - a.lat);
  const double dlambda = radians(b.lon - a.lon);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h =
      sin_dphi * sin_dphi + std::cos(phi1) * std::cos(phi2) * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(const LatLon& a, const LatLon& b, double path_stretch) noexcept {
  return distance_km(a, b) * path_stretch / kFibreSpeedKmPerMs;
}

}  // namespace cbwt::geo
