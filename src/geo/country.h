// Country registry: ISO-3166-alpha-2 codes, continents, EU28 membership,
// centroids, and the per-country attributes the synthetic world needs
// (population weight, IT-infrastructure density, RIPE-Atlas-like probe
// share). The paper's confinement analysis is keyed on countries and on
// the region partition {EU28, Rest of Europe, N./S. America, Asia,
// Africa, Oceania}.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "geo/location.h"

namespace cbwt::geo {

enum class Continent : std::uint8_t {
  Europe,
  NorthAmerica,
  SouthAmerica,
  Asia,
  Africa,
  Oceania,
};

[[nodiscard]] std::string_view to_string(Continent continent) noexcept;

/// The region partition used throughout the paper's Sankey diagrams:
/// Europe is split into the GDPR jurisdiction (EU28) and the rest.
enum class Region : std::uint8_t {
  EU28,
  RestOfEurope,
  NorthAmerica,
  SouthAmerica,
  Asia,
  Africa,
  Oceania,
};

[[nodiscard]] std::string_view to_string(Region region) noexcept;

/// Static per-country facts.
struct Country {
  std::string_view code;      ///< ISO alpha-2, upper-case ("DE")
  std::string_view name;      ///< English short name ("Germany")
  Continent continent;
  bool eu28;                  ///< member of EU28 as of 2018 (incl. UK)
  LatLon centroid;            ///< representative point for delay modelling
  double population_m;        ///< population in millions (user-base weight)
  double infra_density;       ///< relative datacenter/hosting density, 0..100
  double probe_share;         ///< share of the active-measurement probe mesh
};

/// All countries in the registry, ordered by code.
[[nodiscard]] std::span<const Country> all_countries() noexcept;

/// Lookup by ISO code; nullptr when unknown.
[[nodiscard]] const Country* find_country(std::string_view code) noexcept;

/// Region of a country (EU28 flag wins over plain continent).
[[nodiscard]] Region region_of(const Country& country) noexcept;
[[nodiscard]] std::optional<Region> region_of_code(std::string_view code) noexcept;

/// Number of countries in the registry (compile-time-ish constant).
[[nodiscard]] std::size_t country_count() noexcept;

}  // namespace cbwt::geo
