// Sensitive-category tracing (§6): find first-party domains that fall
// under GDPR-protected categories, then trace the tracking flows they
// induce. Detection mirrors the paper's multi-stage process: an
// AdWords-style automatic tagger (whose umbrella labels *hide* most
// sensitive categories — "pregnancy" shows up as "Health", "porn" as
// "Men's Interests"), followed by manual review where a domain counts as
// sensitive when at least two independent examiners agree.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/flows.h"
#include "browser/extension.h"
#include "classify/classifier.h"
#include "util/prng.h"
#include "world/topics.h"
#include "world/world.h"

namespace cbwt::sensitive {

/// AdWords-style automatic tags for a publisher: 5-15 umbrella interest
/// labels. Sensitive content mostly surfaces as its umbrella label only.
[[nodiscard]] std::vector<std::string> auto_tags(const world::Publisher& publisher,
                                                 util::Rng& rng);

struct DetectionConfig {
  std::uint32_t examiners = 3;
  /// Probability an examiner recognizes a truly sensitive domain.
  double examiner_sensitivity = 0.93;
  /// Probability an examiner wrongly flags a benign domain.
  double examiner_false_positive = 0.004;
  std::uint32_t required_agreement = 2;
};

/// Outcome of the multi-stage inspection.
struct Catalog {
  /// publisher -> detected sensitive topic id.
  std::unordered_map<world::PublisherId, world::TopicId> detected;
  std::uint64_t inspected_domains = 0;
  std::uint64_t auto_stage_hits = 0;  ///< caught by the automatic lookup alone
};

/// Runs automatic tagging + the examiner panel over every publisher.
[[nodiscard]] Catalog detect_sensitive_publishers(const world::World& world,
                                                  const DetectionConfig& config,
                                                  util::Rng& rng);

/// Per-category share of tracking flows (Fig. 9).
struct CategoryStats {
  std::string category;
  std::uint64_t flows = 0;
  std::uint64_t publishers = 0;
};

/// Tallies classified tracking flows against the catalog. Returns stats
/// per category plus the total sensitive / overall tracking flow counts.
struct SensitiveBreakdown {
  std::vector<CategoryStats> categories;     ///< sorted by flow count desc
  std::uint64_t sensitive_flows = 0;
  std::uint64_t tracking_flows = 0;
};

[[nodiscard]] SensitiveBreakdown sensitive_breakdown(
    const world::World& world, const Catalog& catalog,
    const browser::ExtensionDataset& dataset,
    const std::vector<classify::Outcome>& outcomes);

/// Tracking flows of one sensitive category (for Fig. 10 / Fig. 11 style
/// destination analysis); empty category selects all sensitive flows.
[[nodiscard]] std::vector<analysis::Flow> sensitive_flows(
    const world::World& world, const Catalog& catalog,
    const browser::ExtensionDataset& dataset,
    const std::vector<classify::Outcome>& outcomes, std::string_view category = {});

}  // namespace cbwt::sensitive
