#include "sensitive/detection.h"

#include <algorithm>
#include <array>

namespace cbwt::sensitive {

namespace {

using world::Topic;

/// Umbrella labels that an automatic GDPR-term lookup catches directly:
/// only categories whose umbrella itself reads as sensitive.
constexpr std::array<std::string_view, 1> kAutoDetectableUmbrellas = {"Health"};

bool truly_sensitive(const world::Publisher& publisher, world::TopicId* out_topic) {
  for (const auto topic_id : publisher.topics) {
    const Topic& topic = world::topic_by_id(topic_id);
    if (topic.sensitive) {
      if (out_topic != nullptr) *out_topic = topic_id;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> auto_tags(const world::Publisher& publisher, util::Rng& rng) {
  std::vector<std::string> tags;
  for (const auto topic_id : publisher.topics) {
    // The tagger reports the umbrella, not the precise (sensitive) topic.
    tags.emplace_back(world::topic_by_id(topic_id).umbrella);
  }
  // Pad with generic interest labels to the 5-15 range the paper reports.
  static constexpr std::array<std::string_view, 10> kFiller = {
      "Internet & Telecom", "Reference", "Science",   "Law & Government",
      "Online Communities", "Books",     "Hobbies",   "World Localities",
      "Business",           "People & Society"};
  const std::size_t target = 5 + static_cast<std::size_t>(rng.next_below(11));
  while (tags.size() < target) {
    tags.emplace_back(kFiller[static_cast<std::size_t>(rng.next_below(kFiller.size()))]);
  }
  return tags;
}

Catalog detect_sensitive_publishers(const world::World& world,
                                    const DetectionConfig& config, util::Rng& rng) {
  Catalog catalog;
  for (const auto& publisher : world.publishers()) {
    ++catalog.inspected_domains;
    world::TopicId true_topic = 0;
    const bool is_sensitive = truly_sensitive(publisher, &true_topic);

    // Stage A: automatic lookup over the AdWords-style tags.
    bool flagged = false;
    const auto tags = auto_tags(publisher, rng);
    if (is_sensitive) {
      for (const auto& tag : tags) {
        for (const auto umbrella : kAutoDetectableUmbrellas) {
          if (tag == umbrella) flagged = true;
        }
      }
      if (flagged) ++catalog.auto_stage_hits;
    }

    // Stage B: examiner panel on everything (the paper manually reviewed
    // all 5,698 domains over two weeks).
    if (!flagged) {
      std::uint32_t votes = 0;
      for (std::uint32_t e = 0; e < config.examiners; ++e) {
        const double hit_probability =
            is_sensitive ? config.examiner_sensitivity : config.examiner_false_positive;
        if (rng.chance(hit_probability)) ++votes;
      }
      flagged = votes >= config.required_agreement;
    }

    if (flagged) {
      world::TopicId detected_topic = true_topic;
      if (!is_sensitive) {
        // False positive: examiners agreed on some plausible category.
        const auto ids = world::sensitive_topic_ids();
        detected_topic = ids[static_cast<std::size_t>(rng.next_below(ids.size()))];
      }
      catalog.detected.emplace(publisher.id, detected_topic);
    }
  }
  return catalog;
}

SensitiveBreakdown sensitive_breakdown(const world::World& /*world*/, const Catalog& catalog,
                                       const browser::ExtensionDataset& dataset,
                                       const std::vector<classify::Outcome>& outcomes) {
  SensitiveBreakdown breakdown;
  std::map<world::TopicId, CategoryStats> by_topic;
  std::map<world::TopicId, std::vector<world::PublisherId>> publishers_by_topic;
  for (const auto& [publisher, topic] : catalog.detected) {
    publishers_by_topic[topic].push_back(publisher);
  }

  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    ++breakdown.tracking_flows;
    const auto& request = dataset.requests[i];
    const auto it = catalog.detected.find(request.publisher);
    if (it == catalog.detected.end()) continue;
    ++breakdown.sensitive_flows;
    auto& stats = by_topic[it->second];
    if (stats.category.empty()) {
      stats.category = std::string(world::topic_by_id(it->second).name);
    }
    ++stats.flows;
  }
  for (auto& [topic, stats] : by_topic) {
    stats.publishers = publishers_by_topic[topic].size();
    breakdown.categories.push_back(stats);
  }
  std::sort(breakdown.categories.begin(), breakdown.categories.end(),
            [](const CategoryStats& a, const CategoryStats& b) {
              if (a.flows != b.flows) return a.flows > b.flows;
              return a.category < b.category;
            });
  return breakdown;
}

std::vector<analysis::Flow> sensitive_flows(const world::World& world,
                                            const Catalog& catalog,
                                            const browser::ExtensionDataset& dataset,
                                            const std::vector<classify::Outcome>& outcomes,
                                            std::string_view category) {
  std::vector<analysis::Flow> flows;
  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    const auto& request = dataset.requests[i];
    const auto it = catalog.detected.find(request.publisher);
    if (it == catalog.detected.end()) continue;
    if (!category.empty() && world::topic_by_id(it->second).name != category) continue;
    analysis::Flow flow;
    flow.origin_country = world.users().at(request.user).country;
    flow.destination = request.server_ip;
    flow.weight = 1;
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace cbwt::sensitive
