#include "dns/resolver.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "geo/country.h"

namespace cbwt::dns {

namespace {

/// Public-resolver anycast sites (Google-DNS/Quad9-style): queries from
/// third-party-resolver clients effectively originate here.
struct AnycastSite {
  std::string_view country;
  geo::LatLon location;
};
constexpr std::array<AnycastSite, 4> kAnycastSites = {{
    {"NL", {52.4, 4.9}},    // Amsterdam
    {"US", {39.0, -77.5}},  // Ashburn
    {"SG", {1.3, 103.8}},   // Singapore
    {"BR", {-23.5, -46.6}}, // Sao Paulo
}};

}  // namespace

Resolver::Resolver(const world::World& world, ResolverOptions options)
    : world_(&world), options_(options) {}

QueryOrigin Resolver::origin_for(std::string_view country,
                                 bool third_party_resolver) const {
  const geo::Country* home = geo::find_country(country);
  if (home == nullptr) throw std::invalid_argument("unknown country code");
  QueryOrigin origin;
  origin.client_country = std::string(country);
  origin.via_third_party = third_party_resolver;
  if (!third_party_resolver) {
    origin.effective_location = home->centroid;
    return origin;
  }
  if (options_.ecs_adoption >= 1.0) {
    // Full EDNS-Client-Subnet deployment: the authoritative DNS sees the
    // client's own network even through the public resolver.
    origin.effective_location = home->centroid;
    return origin;
  }
  // Anycast routes the client to the nearest public-resolver site; the
  // authoritative side then only sees that site (no ECS).
  double best = 1e18;
  for (const auto& site : kAnycastSites) {
    const double d = geo::distance_km(home->centroid, site.location);
    if (d < best) {
      best = d;
      origin.effective_location = site.location;
    }
  }
  return origin;
}

Resolution Resolver::resolve(world::DomainId domain, const QueryOrigin& origin,
                             util::Rng& rng) const {
  const auto& dom = world_->domain(domain);
  if (dom.servers.empty()) throw std::logic_error("domain without deployments");
  const auto& org = world_->org(dom.org);

  // Partial ECS adoption: some queries through a public resolver still
  // reach the authoritative side with the client's subnet attached.
  QueryOrigin effective = origin;
  if (origin.via_third_party && options_.ecs_adoption > 0.0 &&
      options_.ecs_adoption < 1.0 && rng.chance(options_.ecs_adoption)) {
    if (const geo::Country* home = geo::find_country(origin.client_country)) {
      effective.effective_location = home->centroid;
    }
  }

  std::size_t chosen = 0;
  switch (org.dns_policy) {
    case world::DnsPolicy::RandomPop: {
      chosen = static_cast<std::size_t>(rng.next_below(dom.servers.size()));
      break;
    }
    case world::DnsPolicy::HqOnly: {
      // Prefer servers at the HQ; fall back to anything.
      std::vector<double> weights(dom.servers.size(), 0.0);
      bool any = false;
      for (std::size_t i = 0; i < dom.servers.size(); ++i) {
        const auto& server = world_->server(dom.servers[i]);
        if (world_->datacenter(server.datacenter).country == org.hq_country) {
          weights[i] = 1.0;
          any = true;
        }
      }
      if (!any) {
        for (auto& w : weights) w = 1.0;
      }
      chosen = util::sample_discrete(rng, weights);
      break;
    }
    case world::DnsPolicy::NearestPop: {
      // Two-level selection, the way geo-DNS load balancers work: pick a
      // *site* among the `serving_radius` nearest distinct datacenters
      // (latency-weighted, soft), then a server within the site.
      struct Site {
        world::DatacenterId dc;
        double delay = 0.0;
        bool exchange_only = true;
        std::vector<std::size_t> member_indices;
      };
      std::vector<Site> sites;
      for (std::size_t i = 0; i < dom.servers.size(); ++i) {
        const auto& server = world_->server(dom.servers[i]);
        auto it = std::find_if(sites.begin(), sites.end(), [&](const Site& site) {
          return site.dc == server.datacenter;
        });
        if (it == sites.end()) {
          Site site;
          site.dc = server.datacenter;
          site.delay = geo::propagation_delay_ms(
              effective.effective_location, world_->datacenter(server.datacenter).location);
          sites.push_back(std::move(site));
          it = sites.end() - 1;
        }
        it->member_indices.push_back(i);
        if (!server.shared_exchange) it->exchange_only = false;
      }
      std::sort(sites.begin(), sites.end(),
                [](const Site& a, const Site& b) { return a.delay < b.delay; });
      const std::size_t radius = std::min(options_.serving_radius, sites.size());
      std::vector<double> site_weights(radius, 0.0);
      for (std::size_t i = 0; i < radius; ++i) {
        site_weights[i] =
            1.0 / std::pow(sites[i].delay + options_.delay_floor_ms, options_.gamma);
        if (sites[i].exchange_only) site_weights[i] *= options_.exchange_damping;
      }
      const Site& picked = sites[util::sample_discrete(rng, site_weights)];
      chosen = picked.member_indices[static_cast<std::size_t>(
          rng.next_below(picked.member_indices.size()))];
      break;
    }
  }

  Resolution result;
  result.server = dom.servers[chosen];
  result.ip = world_->server(result.server).ip;
  result.ttl_s = ttl_for(org);
  return result;
}

Resolution Resolver::resolve_from(world::DomainId domain, std::string_view country,
                                  bool third_party_resolver, util::Rng& rng) const {
  return resolve(domain, origin_for(country, third_party_resolver), rng);
}

std::optional<Resolution> Resolver::resolve_with_faults(
    world::DomainId domain, const QueryOrigin& origin, util::Rng& rng,
    fault::Retrier& retrier, std::uint64_t key) const {
  if (!retrier.enabled()) return resolve(domain, origin, rng);
  const fault::CallFate fate = retrier.call(/*endpoint=*/domain, key);
  if (!fate.ok()) {
    retrier.count_degraded();
    return std::nullopt;
  }
  return resolve(domain, origin, rng);
}

std::uint32_t ttl_for(const world::Organization& org) noexcept {
  if (org.popularity > 0.02) return 300;
  if (org.popularity > 0.005) return 3600;
  return 7200;
}

}  // namespace cbwt::dns
