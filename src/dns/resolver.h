// DNS resolution model. Authoritative geo-DNS of each organization maps
// a client to one of the servers deployed for the queried FQDN,
// according to the org's DnsPolicy. Locality is deliberately imperfect:
// real operators balance load and cache coarse mappings, which is why
// the paper finds large headroom for "GDPR-friendly" DNS redirection
// (Table 5). Recursive-resolver choice is also modelled: clients on
// third-party resolvers (Google DNS-style anycast, no ECS) are mapped
// from the resolver's location, the paper's explanation for broadband
// users leaking more than mobile users (§7.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fault/retry.h"
#include "net/ip.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::dns {

/// Where a query "appears from" after recursive resolution.
struct QueryOrigin {
  std::string client_country;     ///< the actual user's country
  geo::LatLon effective_location; ///< client or resolver location
  bool via_third_party = false;   ///< true when a public resolver was used
};

/// One answer: which server (and thus IP) the FQDN resolved to.
struct Resolution {
  world::ServerId server = 0;
  net::IpAddress ip;
  std::uint32_t ttl_s = 300;
};

struct ResolverOptions {
  /// NearestPop only ever answers from the `serving_radius` nearest
  /// deployments (real geo-DNS maps a client to its serving region; it
  /// never hands a European eyeball a Tokyo replica). This is also what
  /// leaves remote replicas invisible to a geographically concentrated
  /// user base until pDNS replication surfaces them (§3.3).
  std::size_t serving_radius = 2;
  /// Softness of the latency preference inside the serving radius
  /// (weight ~ 1/(delay_ms + delay_floor)^gamma). Operators load-balance
  /// rather than strictly minimize distance, which is exactly the
  /// headroom the paper's DNS-redirection what-if exploits (§5.1).
  double gamma = 3.0;
  double delay_floor_ms = 2.0;
  /// Relative weight multiplier of shared ad-exchange servers, which
  /// answer for many domains but carry a minority of each one's traffic.
  double exchange_damping = 0.30;
  /// Share of public-resolver queries carrying EDNS-Client-Subnet: with
  /// ECS the authoritative side sees the *client's* network, restoring
  /// locality that anycast resolvers otherwise destroy (paper ref [59]).
  double ecs_adoption = 0.0;
};

/// Stateless view over a World performing policy-based server selection.
class Resolver {
 public:
  explicit Resolver(const world::World& world, ResolverOptions options = {});

  /// Computes the effective query origin for a user in `country`.
  /// Third-party-resolver clients appear from the nearest public-resolver
  /// anycast site instead of their own location.
  [[nodiscard]] QueryOrigin origin_for(std::string_view country,
                                       bool third_party_resolver) const;

  /// Resolves a tracker FQDN for the given origin. Deterministic given
  /// the Rng state.
  [[nodiscard]] Resolution resolve(world::DomainId domain, const QueryOrigin& origin,
                                   util::Rng& rng) const;

  /// Convenience: origin_for + resolve.
  [[nodiscard]] Resolution resolve_from(world::DomainId domain, std::string_view country,
                                        bool third_party_resolver, util::Rng& rng) const;

  /// Fault-aware resolve: consults `retrier` (endpoint = the queried
  /// domain, so breaker state tracks each zone) before answering. The
  /// call's fate — retries, backoff, breaker rejection — is decided
  /// first; only a surviving call performs resolve(), so its rng draws
  /// are exactly those of the fault-free path and a zero-rate plan
  /// leaves the stream untouched. nullopt = the lookup failed after all
  /// retries (or the zone's breaker is open) and the caller degrades;
  /// `key` must identify the logical query stably across thread counts
  /// (e.g. an absolute record index). A stale answer still resolves
  /// normally: in this model the zone data changes slower than the
  /// stale window, so staleness surfaces in the pDNS layer instead.
  [[nodiscard]] std::optional<Resolution> resolve_with_faults(
      world::DomainId domain, const QueryOrigin& origin, util::Rng& rng,
      fault::Retrier& retrier, std::uint64_t key) const;

  [[nodiscard]] const world::World& world() const noexcept { return *world_; }

 private:
  const world::World* world_;
  ResolverOptions options_;
};

/// TTL assignment: the busiest orgs re-map quickly (300 s, like Google),
/// the tail uses lazy multi-hour TTLs (like Facebook's 7200 s).
[[nodiscard]] std::uint32_t ttl_for(const world::Organization& org) noexcept;

}  // namespace cbwt::dns
