// Chunked byte arena for compile-once data structures: interned strings
// stay valid for the arena's lifetime (chunks are never reallocated or
// freed until clear()/destruction), so views handed out by intern() are
// stable keys for long-lived indexes. Not thread-safe; the intended use
// is build-the-index-once, read-concurrently-forever.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace cbwt::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) noexcept
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  /// Copies `text` into arena storage and returns a stable view of it.
  /// Oversized strings get a dedicated chunk, so any length works.
  [[nodiscard]] std::string_view intern(std::string_view text) {
    if (text.empty()) return {};
    char* dst = allocate(text.size());
    std::memcpy(dst, text.data(), text.size());
    return {dst, text.size()};
  }

  /// Total bytes handed out by intern()/allocate (not chunk capacity).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }

  /// Drops every chunk; all previously returned views become dangling.
  void clear() noexcept {
    chunks_.clear();
    cursor_ = 0;
    capacity_ = 0;
    used_ = 0;
  }

 private:
  [[nodiscard]] char* allocate(std::size_t bytes) {
    if (cursor_ + bytes > capacity_) {
      const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back(std::make_unique<char[]>(size));
      cursor_ = 0;
      capacity_ = size;
    }
    char* out = chunks_.back().get() + cursor_;
    cursor_ += bytes;
    used_ += bytes;
    return out;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t cursor_ = 0;    ///< offset into the last chunk
  std::size_t capacity_ = 0;  ///< size of the last chunk
  std::size_t used_ = 0;
};

}  // namespace cbwt::util
