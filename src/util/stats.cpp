#include "util/stats.h"

#include "util/prng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cbwt::util {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[idx] * (1.0 - frac) + sorted_[idx + 1] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = quantile(q);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  double pos = (x - lo_) / width_;
  if (pos < 0.0) pos = 0.0;
  auto bin = static_cast<std::size_t>(pos);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

std::size_t Histogram::bin_count(std::size_t bin) const noexcept {
  return bin < counts_.size() ? counts_[bin] : 0;
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const noexcept {
  const double start = lo_ + width_ * static_cast<double>(bin);
  return {start, start + width_};
}

void Tally::add(const std::string& key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

std::uint64_t Tally::count(const std::string& key) const noexcept {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double Tally::share(const std::string& key) const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::vector<std::pair<std::string, std::uint64_t>> Tally::top(std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> items(counts_.begin(), counts_.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (items.size() > n) items.resize(n);
  return items;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto n = static_cast<double>(xs.size());
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> ranks_of(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto rx = ranks_of(xs);
  const auto ry = ranks_of(ys);
  return pearson(rx, ry);
}

double percent(double part, double whole) noexcept {
  return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, double level,
                                     std::size_t resamples, Rng& rng) {
  ConfidenceInterval ci;
  if (sample.empty()) return ci;
  double total = 0.0;
  for (const double v : sample) total += v;
  ci.point = total / static_cast<double>(sample.size());
  if (sample.size() < 2 || resamples == 0) {
    ci.lower = ci.upper = ci.point;
    return ci;
  }
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      sum += sample[static_cast<std::size_t>(rng.next_below(sample.size()))];
    }
    means.push_back(sum / static_cast<double>(sample.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - std::clamp(level, 0.0, 1.0)) / 2.0;
  const auto pick = [&](double q) {
    const auto index = static_cast<std::size_t>(q * static_cast<double>(means.size() - 1));
    return means[index];
  };
  ci.lower = pick(alpha);
  ci.upper = pick(1.0 - alpha);
  return ci;
}

}  // namespace cbwt::util
