// Clang thread-safety-analysis annotations for the cbwt tree, plus the
// annotated mutex types every locked class uses.
//
// Under clang the macros expand to the capability attributes behind
// -Wthread-safety ("C/C++ Thread Safety Analysis", Hutchins et al.):
// a member declared CBWT_GUARDED_BY(mutex_) cannot be read or written
// without holding mutex_, and the build fails (CI compiles with
// -Werror=thread-safety-analysis). Under every other compiler the
// macros expand to nothing, so the annotated tree costs gcc builds
// zero bytes and zero diagnostics (proven by tests/test_annotations).
//
// std::mutex/std::lock_guard carry no capability attributes with
// libstdc++, so annotated classes hold a util::Mutex and lock it with a
// util::MutexLock instead — drop-in wrappers that the analysis can see.
// Condition variables keep working through MutexLock::native().
#pragma once

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define CBWT_THREAD_ANNOTATIONS_ENABLED 1
#define CBWT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CBWT_THREAD_ANNOTATIONS_ENABLED 0
#define CBWT_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a lockable capability ("mutex" names the kind).
#define CBWT_CAPABILITY(x) CBWT_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define CBWT_SCOPED_CAPABILITY CBWT_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define CBWT_GUARDED_BY(x) CBWT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define CBWT_PT_GUARDED_BY(x) CBWT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (or the listed capabilities).
#define CBWT_ACQUIRE(...) CBWT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (or the listed capabilities).
#define CBWT_RELEASE(...) CBWT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define CBWT_TRY_ACQUIRE(...) CBWT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define CBWT_REQUIRES(...) CBWT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (anti-deadlock documentation).
#define CBWT_EXCLUDES(...) CBWT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime-asserts the capability is held (trusted by the analysis).
#define CBWT_ASSERT_CAPABILITY(x) CBWT_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define CBWT_RETURN_CAPABILITY(x) CBWT_THREAD_ANNOTATION_(lock_returned(x))

/// Opts one function out of the analysis (last resort; justify inline).
#define CBWT_NO_THREAD_SAFETY_ANALYSIS CBWT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace cbwt::util {

/// std::mutex with the `capability` attribute the analysis needs.
/// Same size, same semantics; lock it with util::MutexLock.
class CBWT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CBWT_ACQUIRE() { inner_.lock(); }
  void unlock() CBWT_RELEASE() { inner_.unlock(); }
  [[nodiscard]] bool try_lock() CBWT_TRY_ACQUIRE(true) { return inner_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable plumbing.
  /// Lock state changes made through it are invisible to the analysis —
  /// only MutexLock should touch this.
  [[nodiscard]] std::mutex& native() noexcept { return inner_; }

 private:
  std::mutex inner_;
};

/// RAII lock over util::Mutex, visible to the analysis as a scoped
/// capability. native() exposes the underlying std::unique_lock so
/// std::condition_variable::wait can drop/reacquire the mutex; the
/// analysis treats the capability as held across the wait, which
/// matches the state at every point the waiting code can observe.
class CBWT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CBWT_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() CBWT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (scope-exit release then becomes a no-op).
  void unlock() CBWT_RELEASE() { lock_.unlock(); }
  /// Re-acquire after an early unlock().
  void lock() CBWT_ACQUIRE() { lock_.lock(); }

  /// For std::condition_variable::wait(native()).
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace cbwt::util
