// String helpers shared across cbwt modules. All functions are pure and
// allocation is avoided where a view suffices.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cbwt::util {

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lower-casing (tracking domains and URLs are ASCII in this model).
[[nodiscard]] std::string to_lower(std::string_view text);

/// Case-sensitive containment test.
[[nodiscard]] bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Case-insensitive (ASCII) containment test.
[[nodiscard]] bool icontains(std::string_view haystack, std::string_view needle);

[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// printf-style double formatting with fixed decimals, e.g. fmt_pct(84.93,2)
/// -> "84.93%".
[[nodiscard]] std::string fmt_fixed(double value, int decimals);
[[nodiscard]] std::string fmt_pct(double value, int decimals = 2);

/// Thousands-separated integer, e.g. 7172752 -> "7,172,752".
[[nodiscard]] std::string fmt_count(std::uint64_t value);

}  // namespace cbwt::util
