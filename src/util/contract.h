// Runtime contract checks for the parsing and geolocation hot paths.
//
// Three macros, mirroring the C++ contracts vocabulary:
//
//   CBWT_EXPECTS(cond)   precondition  — caller handed us bad state
//   CBWT_ENSURES(cond)   postcondition — we are about to return bad state
//   CBWT_ASSERT(cond)    invariant     — internal state is inconsistent
//
// Each macro captures the failing expression and its std::source_location
// and hands them to the active violation policy:
//
//   ContractPolicy::Abort  (default) print a diagnostic to stderr and
//                          std::abort() — what CI and sanitizer builds
//                          want, because it preserves the crashing stack.
//   ContractPolicy::Throw  raise ContractViolation — what fuzz harnesses
//                          and tests that probe the contracts themselves
//                          want, because the process survives.
//
// Checks compile away entirely when CBWT_CONTRACT_LEVEL is defined to 0
// (the release preset does this); any other value keeps them. The checks
// are a single predicted-true branch each, cheap enough for hot paths.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

#ifndef CBWT_CONTRACT_LEVEL
#define CBWT_CONTRACT_LEVEL 1
#endif

namespace cbwt::util {

enum class ContractKind { Precondition, Postcondition, Assertion };

enum class ContractPolicy { Abort, Throw };

/// Thrown by failed checks under ContractPolicy::Throw.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(ContractKind kind, std::string what) noexcept
      : std::logic_error(std::move(what)), kind_(kind) {}

  [[nodiscard]] ContractKind kind() const noexcept { return kind_; }

 private:
  ContractKind kind_;
};

/// Process-wide policy switch; defaults to Abort. Not thread-safe to
/// flip while checks are executing — set it once at startup (tests and
/// fuzz drivers do so before exercising any contract).
void set_contract_policy(ContractPolicy policy) noexcept;
[[nodiscard]] ContractPolicy contract_policy() noexcept;

[[nodiscard]] std::string_view to_string(ContractKind kind) noexcept;

/// Dispatches a failed check to the active policy. Returns only by
/// throwing; marked [[noreturn]] so the macros read as control flow.
[[noreturn]] void contract_violated(ContractKind kind, std::string_view expression,
                                    std::source_location where);

}  // namespace cbwt::util

#if CBWT_CONTRACT_LEVEL
#define CBWT_CONTRACT_CHECK_(kind, cond)                              \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::cbwt::util::contract_violated(::cbwt::util::ContractKind::kind, #cond, \
                                      ::std::source_location::current());      \
    }                                                                 \
  } while (false)
#else
// Checks disabled: the condition is still parsed (so it cannot bit-rot)
// but never evaluated.
#define CBWT_CONTRACT_CHECK_(kind, cond) \
  do {                                   \
    if (false) {                         \
      static_cast<void>(cond);           \
    }                                    \
  } while (false)
#endif

#define CBWT_EXPECTS(cond) CBWT_CONTRACT_CHECK_(Precondition, cond)
#define CBWT_ENSURES(cond) CBWT_CONTRACT_CHECK_(Postcondition, cond)
#define CBWT_ASSERT(cond) CBWT_CONTRACT_CHECK_(Assertion, cond)

/// Compile-time companion: use for table invariants that can be proven
/// at build time (sorted lookup tables and the like) so they share the
/// contract vocabulary without any runtime cost.
#define CBWT_STATIC_EXPECT(...) static_assert(__VA_ARGS__)
