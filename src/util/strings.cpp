#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace cbwt::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  return contains(to_lower(haystack), to_lower(needle));
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

std::string fmt_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string fmt_pct(double value, int decimals) {
  return fmt_fixed(value, decimals) + "%";
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace cbwt::util
