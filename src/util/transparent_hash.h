// Heterogeneous ("transparent") string hashing for unordered containers:
// lets a std::unordered_map with std::string keys be probed with a
// std::string_view without materializing a temporary std::string — the
// C++20 heterogeneous-lookup protocol (P1690). Hot paths that walk host
// suffixes or token spans stay allocation-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace cbwt::util {

/// FNV-1a over the bytes of the string; stable across platforms so data
/// structures keyed by it stay deterministic.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view text) const noexcept {
    return static_cast<std::size_t>(fnv1a(text));
  }
};

/// unordered_map<string, V> probeable with string_view keys.
template <typename V>
using StringMap = std::unordered_map<std::string, V, StringHash, std::equal_to<>>;

using StringSet = std::unordered_set<std::string, StringHash, std::equal_to<>>;

}  // namespace cbwt::util
