// Deterministic pseudo-random number generation for the cbwt library.
//
// Everything in cbwt that needs randomness takes an explicit Rng&; the
// library never touches global random state, so a Study run is fully
// reproducible from a single 64-bit seed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cbwt::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value into a well-distributed hash (stateless).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return splitmix64(x);
}

/// xoshiro256++ generator: fast, high-quality, 2^256-1 period.
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random>
/// distributions, though cbwt code uses the member helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from `seed` via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0xC0FFEE123456789ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& lane : state_) lane = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double_in(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching).
  [[nodiscard]] double next_normal() noexcept;

  /// Normal with given mean / stddev.
  [[nodiscard]] double next_normal(double mean, double stddev) noexcept;

  /// Exponential with given rate lambda (> 0).
  [[nodiscard]] double next_exponential(double lambda) noexcept;

  /// Bounded Pareto-ish heavy tail: x in [1, cap] with density ~ x^-(alpha+1).
  [[nodiscard]] double next_pareto(double alpha, double cap) noexcept;

  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  [[nodiscard]] std::uint64_t next_poisson(double mean) noexcept;

  /// Derives an independent child generator; stable given the same label.
  [[nodiscard]] Rng fork(std::uint64_t label) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Picks a uniformly random element; requires non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Samples an index from unnormalized non-negative weights.
///
/// Linear scan; intended for setup-time sampling over modest alphabets.
/// Returns weights.size() - 1 if rounding leaves residual mass; returns 0
/// for an all-zero weight vector.
[[nodiscard]] std::size_t sample_discrete(Rng& rng, std::span<const double> weights) noexcept;

/// Zipf sampler over ranks {0, ..., n-1} with exponent s (>= 0).
///
/// Precomputes the CDF once; sampling is O(log n). Used for publisher and
/// tracker popularity, which the measurement literature finds heavy-tailed.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of a given rank.
  [[nodiscard]] double mass(std::size_t rank) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace cbwt::util
