#include "util/table.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace cbwt::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::set_title(std::string title) { title_ = std::move(title); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line.append(widths[c] - row[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += render_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string render_bars(const std::vector<Bar>& bars, std::size_t width) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& bar : bars) {
    max_value = std::max(max_value, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  std::string out;
  for (const auto& bar : bars) {
    std::string line = bar.label;
    line.append(label_width - bar.label.size() + 2, ' ');
    const auto filled = max_value <= 0.0
                            ? std::size_t{0}
                            : static_cast<std::size_t>(
                                  std::lround(bar.value / max_value * static_cast<double>(width)));
    line.append(filled, '#');
    line += "  " + fmt_fixed(bar.value, 2);
    if (!bar.annotation.empty()) line += "  " + bar.annotation;
    out += line + '\n';
  }
  return out;
}

std::string render_cdf(const std::string& name,
                       const std::vector<std::pair<double, double>>& curve) {
  std::string out = name + " (x, CDF):\n";
  for (const auto& [x, f] : curve) {
    out += "  " + fmt_fixed(x, 2) + "\t" + fmt_fixed(f, 4) + "\n";
  }
  return out;
}

}  // namespace cbwt::util
