#include "util/prng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace cbwt::util {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(range));
}

double Rng::next_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_normal() noexcept {
  // Box-Muller; u1 is kept away from zero so log() stays finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::next_normal(double mean, double stddev) noexcept {
  return mean + stddev * next_normal();
}

double Rng::next_exponential(double lambda) noexcept {
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

double Rng::next_pareto(double alpha, double cap) noexcept {
  // Inverse-CDF sampling of a Pareto truncated at `cap`.
  const double u = next_double();
  const double h = 1.0 - std::pow(cap, -alpha);
  const double x = std::pow(1.0 - u * h, -1.0 / alpha);
  return std::min(x, cap);
}

std::uint64_t Rng::next_poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = next_normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = next_double();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= next_double();
  }
  return count;
}

Rng Rng::fork(std::uint64_t label) noexcept {
  std::uint64_t seed = (*this)() ^ mix64(label);
  return Rng{seed};
}

std::size_t sample_discrete(Rng& rng, std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = rng.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double running = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    running += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_.push_back(running);
  }
  for (double& value : cdf_) value /= running;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  if (cdf_.empty()) return 0;
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it) ==
                                          static_cast<std::ptrdiff_t>(cdf_.size())
                                      ? cdf_.size() - 1
                                      : std::distance(cdf_.begin(), it));
}

double ZipfSampler::mass(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cbwt::util
