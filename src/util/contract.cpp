#include "util/contract.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cbwt::util {

namespace {

std::atomic<ContractPolicy> g_policy{ContractPolicy::Abort};

}  // namespace

void set_contract_policy(ContractPolicy policy) noexcept {
  g_policy.store(policy, std::memory_order_relaxed);
}

ContractPolicy contract_policy() noexcept {
  return g_policy.load(std::memory_order_relaxed);
}

std::string_view to_string(ContractKind kind) noexcept {
  switch (kind) {
    case ContractKind::Precondition: return "precondition";
    case ContractKind::Postcondition: return "postcondition";
    case ContractKind::Assertion: return "assertion";
  }
  return "?";
}

void contract_violated(ContractKind kind, std::string_view expression,
                       std::source_location where) {
  std::string message;
  message += to_string(kind);
  message += " failed: ";
  message += expression;
  message += " at ";
  message += where.file_name();
  message += ":";
  message += std::to_string(where.line());
  message += " in ";
  message += where.function_name();
  if (contract_policy() == ContractPolicy::Throw) {
    throw ContractViolation(kind, std::move(message));
  }
  std::fprintf(stderr, "cbwt: %s\n", message.c_str());
  std::abort();
}

}  // namespace cbwt::util
