// Plain-text rendering of tables, bar charts and CDF curves. The bench
// harnesses use these to print paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace cbwt::util {

/// Column-aligned text table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void set_title(std::string title);

  /// Renders with a box-drawing-free ASCII layout (padded columns).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One labelled bar of a horizontal ASCII bar chart.
struct Bar {
  std::string label;
  double value = 0.0;
  std::string annotation;  ///< extra text appended after the bar
};

/// Renders labelled horizontal bars scaled to `width` characters.
[[nodiscard]] std::string render_bars(const std::vector<Bar>& bars, std::size_t width = 50);

/// Renders an (x, F(x)) CDF series as a fixed set of table rows.
[[nodiscard]] std::string render_cdf(const std::string& name,
                                     const std::vector<std::pair<double, double>>& curve);

}  // namespace cbwt::util
