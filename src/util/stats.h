// Small statistics toolkit used by the analysis and reporting layers:
// running moments, empirical CDFs, histograms, quantiles, correlation.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace cbwt::util {

/// Welford running mean / variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample; sorted once at construction.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const noexcept;
  /// Inverse CDF; q clamped to [0,1]. Empty CDF returns 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] std::span<const double> sorted() const noexcept { return sorted_; }

  /// Evaluates the CDF at `points` evenly spaced quantile knots, returning
  /// (x, F(x)) pairs suitable for plotting a figure-2-style curve.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin linear histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Inclusive-exclusive bounds of a bin.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Counter keyed by string: the workhorse for per-domain / per-country
/// tallies. Deterministic iteration (std::map) so reports are stable.
class Tally {
 public:
  void add(const std::string& key, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t count(const std::string& key) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  /// Share of the total mass held by `key`, in [0,1]; 0 when empty.
  [[nodiscard]] double share(const std::string& key) const noexcept;

  /// Keys sorted by descending count (ties broken lexicographically).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t n) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& items() const noexcept {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Pearson correlation of two equally-sized series; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Spearman rank correlation; 0 if degenerate.
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Percentage helper: 100 * part / whole, 0 when whole == 0.
[[nodiscard]] double percent(double part, double whole) noexcept;

/// Two-sided bootstrap confidence interval for the mean of a sample.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  ///< sample mean
};

/// Percentile bootstrap with `resamples` draws at confidence `level`
/// (e.g. 0.95). Degenerate inputs return a zero-width interval at the
/// mean. Deterministic given the rng.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                                   double level, std::size_t resamples,
                                                   class Rng& rng);

}  // namespace cbwt::util
