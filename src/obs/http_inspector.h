// Embedded live inspector: a dependency-free blocking HTTP/1.1 server
// (one poll + accept loop on its own thread, GET only) in the spirit of
// ExpressionMatrix2's embedded explorer. Serves:
//
//   /metrics  Prometheus text exposition (obs::to_prometheus)
//   /report   run_report JSON
//   /trace    Chrome trace-event JSON (flight recorder snapshot)
//   /healthz  liveness probe ("ok")
//
// Handlers are std::functions supplied by the embedding run; they are
// invoked on the inspector thread, so they must be safe to call
// concurrently with the pipeline (the registry/trace snapshots are).
// The server is observational only — it never writes to study state.
//
// This is the only file in the tree allowed to touch the socket API
// (cbwt-lint rule socket-api) and, with proc_stats, one of the two
// telemetry-thread exemptions to the raw-thread rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace cbwt::obs {

/// Embedders enable + point the inspector through this (StudyConfig
/// carries one).
struct InspectorConfig {
  bool enabled = false;
  std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad
  std::uint16_t port = 0;  ///< 0 = ephemeral; HttpInspector::port() tells
};

struct HttpRequest {
  std::string method;
  std::string target;  ///< path only; query string is stripped
};

/// Parses the request line of an HTTP/1.x request head ("GET /metrics
/// HTTP/1.1\r\n..."). Returns nullopt on malformed input. Pure.
[[nodiscard]] std::optional<HttpRequest> parse_http_request(std::string_view text);

/// Content generators for the three payload endpoints; null functions
/// answer 404. /healthz is built in.
struct InspectorHandlers {
  std::function<std::string()> metrics;
  std::function<std::string()> report;
  std::function<std::string()> trace;
};

class HttpInspector {
 public:
  /// Binds and starts serving immediately; throws std::runtime_error if
  /// the socket cannot be bound.
  HttpInspector(const InspectorConfig& config, InspectorHandlers handlers);
  ~HttpInspector();  ///< stop()
  HttpInspector(const HttpInspector&) = delete;
  HttpInspector& operator=(const HttpInspector&) = delete;

  /// The bound port (resolves config.port == 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops the accept loop and joins the server thread. Idempotent.
  void stop();

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve();
  void handle_connection(int client_fd);

  InspectorHandlers handlers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace cbwt::obs
