#include "obs/export.h"

#include <cmath>
#include <cstdio>

#include "report/json.h"

namespace cbwt::obs {

namespace {

/// Prometheus sample value: shortest round-trippable-ish decimal, with
/// the spec's spellings for non-finite values.
std::string prom_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

/// Label values escape \, " and newline per the text exposition format.
std::string prom_label(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void write_json(const Registry& registry, report::JsonWriter& json) {
  json.begin_object();

  json.key("counters").begin_object();
  for (const auto& [name, value] : registry.counters()) json.key(name).value(value);
  json.end_object();

  json.key("gauges").begin_object();
  for (const auto& [name, value] : registry.gauges()) json.key(name).value(value);
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& sample : registry.histograms()) {
    json.key(sample.name).begin_object();
    json.key("buckets").begin_array();
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      json.begin_object();
      json.key("le");
      if (i < sample.bounds.size()) {
        json.value(sample.bounds[i]);
      } else {
        json.value("+Inf");
      }
      json.key("count").value(sample.buckets[i]);
      json.end_object();
    }
    json.end_array();
    json.key("count").value(sample.count);
    json.key("sum").value(sample.sum);
    json.end_object();
  }
  json.end_object();

  json.key("spans").begin_array();
  for (const auto& span : registry.spans()) {
    json.begin_object();
    json.key("name").value(span.name);
    json.key("parent").value(span.parent);
    json.key("depth").value(span.depth);
    json.key("wall_seconds").value(span.wall_seconds);
    json.key("process_cpu_seconds").value(span.process_cpu_seconds);
    json.key("thread_cpu_seconds").value(span.thread_cpu_seconds);
    json.key("items").value(span.items);
    json.end_object();
  }
  json.end_array();

  json.end_object();
}

std::string to_prometheus(const Registry& registry) {
  std::string out;

  for (const auto& [name, value] : registry.counters()) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : registry.gauges()) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + prom_double(value) + "\n";
  }

  for (const auto& sample : registry.histograms()) {
    out += "# TYPE " + sample.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      cumulative += sample.buckets[i];
      const std::string le =
          i < sample.bounds.size() ? prom_double(sample.bounds[i]) : "+Inf";
      out += sample.name + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += sample.name + "_sum " + prom_double(sample.sum) + "\n";
    out += sample.name + "_count " + std::to_string(sample.count) + "\n";
  }

  const auto spans = registry.spans();
  if (!spans.empty()) {
    out += "# TYPE cbwt_obs_span_wall_seconds gauge\n";
    out += "# TYPE cbwt_obs_span_process_cpu_seconds gauge\n";
    out += "# TYPE cbwt_obs_span_thread_cpu_seconds gauge\n";
    out += "# TYPE cbwt_obs_span_items gauge\n";
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto& span = spans[i];
      // The index label keeps repeated stages (one span per ISP snapshot
      // run, say) distinct series.
      const std::string labels =
          "{index=\"" + std::to_string(i) + "\",name=\"" + prom_label(span.name) +
          "\",parent=\"" + prom_label(span.parent) + "\"}";
      out += "cbwt_obs_span_wall_seconds" + labels + " " +
             prom_double(span.wall_seconds) + "\n";
      out += "cbwt_obs_span_process_cpu_seconds" + labels + " " +
             prom_double(span.process_cpu_seconds) + "\n";
      out += "cbwt_obs_span_thread_cpu_seconds" + labels + " " +
             prom_double(span.thread_cpu_seconds) + "\n";
      out += "cbwt_obs_span_items" + labels + " " + std::to_string(span.items) + "\n";
    }
  }

  return out;
}

}  // namespace cbwt::obs
