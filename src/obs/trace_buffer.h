// Flight recorder: lock-free per-thread ring buffers for begin/end/
// instant trace events, exportable as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// Concurrency model: each emitting thread owns one single-writer ring;
// slots are seqlock-guarded (odd sequence while a write is in flight,
// even when stable) with every payload field an atomic, so a concurrent
// snapshot() from the inspector thread is race-free and simply skips
// slots it catches mid-write. Rings overwrite their oldest events on
// wrap and account the loss in dropped counts — emitting never blocks
// and never allocates after thread registration.
//
// Like the metrics registry, the recorder is observational only:
// nothing here feeds back into pipeline results, so arming a trace
// buffer never perturbs determinism.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace cbwt::report {
class JsonWriter;
}  // namespace cbwt::report

namespace cbwt::obs {

class Registry;

enum class TracePhase : std::uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

/// Event names are truncated to this many bytes (including NUL) when
/// copied into a slot; trace names are short stage labels by convention.
inline constexpr std::size_t kTraceNameBytes = 48;

/// One decoded event, as returned by TraceBuffer::snapshot().
struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  std::uint64_t ts_ns = 0;  ///< nanoseconds since the buffer's epoch
  std::uint64_t arg = 0;    ///< event-defined payload (shard index, items)
  std::string name;
};

class TraceBuffer {
 public:
  /// Rings hold this many events per thread by default (~320 KB/thread).
  static constexpr std::size_t kDefaultEventsPerThread = 4096;
  /// Distinct emitting threads a buffer can track; later threads drop.
  static constexpr std::size_t kMaxThreads = 64;

  /// `events_per_thread` is rounded up to a power of two. The
  /// constructing thread registers eagerly and is labelled "main".
  explicit TraceBuffer(std::size_t events_per_thread = kDefaultEventsPerThread);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Records one event on the calling thread's ring. Lock-free after the
  /// thread's first emit; never blocks, never fails (overflow drops).
  void emit(TracePhase phase, std::string_view name, std::uint64_t arg = 0);

  /// Events recorded for one thread, oldest first.
  struct ThreadTrace {
    std::string label;           ///< "main", "pool-worker-N", "thread-K"
    std::uint64_t dropped = 0;   ///< events overwritten before snapshot
    std::vector<TraceEvent> events;
  };

  /// Decodes every ring, oldest event first. Safe to call from any
  /// thread while emitters are active: events caught mid-write are
  /// skipped, not torn.
  [[nodiscard]] std::vector<ThreadTrace> snapshot() const;

  /// Events lost to ring wraparound plus events from threads beyond
  /// kMaxThreads.
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Ring capacity in events (post power-of-two rounding).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Threads that have registered a ring so far.
  [[nodiscard]] std::size_t thread_count() const;

 private:
  struct Slot {
    /// Seqlock: 2*(event_index+1) when slot holds event_index stably,
    /// odd while the owning thread is writing. The value doubles as a
    /// generation tag, so readers know which event occupies a reused
    /// slot.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint8_t> phase{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> arg{0};
    /// NUL-terminated; atomic chars keep concurrent snapshots race-free.
    std::atomic<char> name[kTraceNameBytes];
  };

  struct Ring {
    std::atomic<bool> used{false};  ///< published last, with release
    std::atomic<std::uint64_t> head{0};  ///< events written (monotonic)
    std::string label;  ///< written once before `used` is published
    std::unique_ptr<Slot[]> slots;
  };

  [[nodiscard]] Ring* ring_for_current_thread();
  [[nodiscard]] Ring* register_current_thread() CBWT_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t now_ns() const;

  const std::uint64_t id_;  ///< process-unique, keys the thread cache
  std::size_t capacity_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> unregistered_dropped_{0};

  mutable util::Mutex mutex_;
  std::size_t thread_count_ CBWT_GUARDED_BY(mutex_) = 0;
  /// Fixed array: ring addresses must stay stable for cached pointers.
  std::unique_ptr<Ring[]> rings_;
};

/// RAII begin/end pair against the registry's armed trace buffer; a null
/// registry or unarmed buffer makes it a no-op (one null check).
class ScopedTrace {
 public:
  ScopedTrace(Registry* registry, std::string_view name, std::uint64_t arg = 0);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceBuffer* trace_;
  std::string_view name_;  ///< callers pass string literals / stable names
};

/// Writes the buffer as one Chrome trace-event JSON object:
///   {"displayTimeUnit":"ms","droppedEvents":n,
///    "traceEvents":[{"ph":"M"...thread_name metadata...},
///                   {"ph":"B"|"E"|"i","pid":1,"tid":t,"ts":us,
///                    "name":...,"args":{"arg":n}},...]}
void write_chrome_trace(const TraceBuffer& trace, report::JsonWriter& json);

/// write_chrome_trace into a fresh document.
[[nodiscard]] std::string to_chrome_trace(const TraceBuffer& trace);

}  // namespace cbwt::obs
