#include "obs/runtime_metrics.h"

namespace cbwt::obs {

void record_channel_stats(Registry* registry, const runtime::ChannelStats& stats) {
  if (registry == nullptr) return;
  if (stats.pushed == 0 && stats.popped == 0 && stats.producer_stalls == 0 &&
      stats.consumer_stalls == 0) {
    return;  // serial path: no channel ever existed
  }
  registry->counter("cbwt_runtime_channel_pushed_total").add(stats.pushed);
  registry->counter("cbwt_runtime_channel_popped_total").add(stats.popped);
  registry->counter("cbwt_runtime_channel_producer_stalls_total")
      .add(stats.producer_stalls);
  registry->counter("cbwt_runtime_channel_consumer_stalls_total")
      .add(stats.consumer_stalls);
  registry->gauge("cbwt_runtime_channel_high_water")
      .max_of(static_cast<double>(stats.high_water));
  registry->gauge("cbwt_runtime_channel_producer_stall_seconds")
      .add(static_cast<double>(stats.producer_stall_ns) * 1e-9);
  registry->gauge("cbwt_runtime_channel_consumer_stall_seconds")
      .add(static_cast<double>(stats.consumer_stall_ns) * 1e-9);
}

void record_pool_stats(Registry* registry, const runtime::ThreadPool& pool) {
  if (registry == nullptr) return;
  const auto stats = pool.stats();
  registry->gauge("cbwt_runtime_pool_size").set(static_cast<double>(pool.size()));
  registry->gauge("cbwt_runtime_pool_queue_depth")
      .set(static_cast<double>(pool.pending()));
  registry->gauge("cbwt_runtime_pool_tasks_submitted")
      .set(static_cast<double>(stats.submitted));
  registry->gauge("cbwt_runtime_pool_tasks_executed")
      .set(static_cast<double>(stats.executed));
  registry->gauge("cbwt_runtime_pool_tasks_stolen").set(static_cast<double>(stats.stolen));
}

}  // namespace cbwt::obs
