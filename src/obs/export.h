// Exporters for the metrics registry: a JSON object (via the report
// module's streaming JsonWriter) for machine-readable run reports, and a
// Prometheus-style text exposition dump for scrape-and-diff workflows.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace cbwt::report {
class JsonWriter;
}  // namespace cbwt::report

namespace cbwt::obs {

/// Writes the registry as one JSON value:
///   {"counters":{name:value,...},
///    "gauges":{name:value,...},
///    "histograms":{name:{"buckets":[{"le":bound|"+Inf","count":n},...],
///                        "count":n,"sum":x},...},
///    "spans":[{"name","parent","depth","wall_seconds",
///              "process_cpu_seconds","thread_cpu_seconds","items"},...]}
/// The caller controls the surrounding structure (typically a key inside
/// a run-report object). Non-finite doubles export as null.
void write_json(const Registry& registry, report::JsonWriter& json);

/// Prometheus text format: counters/gauges/histograms with `# TYPE`
/// headers (histogram buckets cumulative, `le="+Inf"` last); spans
/// surface as cbwt_obs_span_{wall_seconds,process_cpu_seconds,
/// thread_cpu_seconds,items} gauges labelled by index/name/parent.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

}  // namespace cbwt::obs
