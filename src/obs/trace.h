// Stage tracing: ScopedSpan wraps one pipeline stage and records a
// SpanRecord (wall time, process + thread CPU time, item count, parent
// stage) into the registry on scope exit. A null registry makes the
// span a complete no-op, so instrumented stages cost one null check
// when observability is off.
//
// Spans nest through the registry's span stack; open/close must be LIFO
// per registry, which holds as long as spans are opened on the
// pipeline-driving thread (the Study call path). Worker threads never
// open spans — they emit flat begin/end events into the flight recorder
// (obs::ScopedTrace, trace_buffer.h) instead.
//
// When the registry has a TraceBuffer armed, every span additionally
// emits a begin/end event pair so main-thread stages appear on the
// Chrome trace timeline alongside the worker events.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>
#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace cbwt::obs {

class ScopedSpan {
 public:
  /// Opens the span; `registry == nullptr` disables it entirely.
  ScopedSpan(Registry* registry, std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Stage-defined item count (requests classified, records emitted...).
  void set_items(std::uint64_t items) noexcept { items_ = items; }
  void add_items(std::uint64_t items) noexcept { items_ += items; }

 private:
  Registry* registry_;
  std::string name_;
  std::string parent_;
  std::uint64_t depth_ = 0;
  std::uint64_t items_ = 0;
  std::chrono::steady_clock::time_point wall_begin_{};
  std::clock_t process_cpu_begin_{};
  double thread_cpu_begin_ = 0.0;
};

/// Observes the enclosing scope's wall time (seconds) into a registry
/// histogram on exit. Pairs with ScopedSpan when a stage's duration
/// should also surface as a Prometheus histogram — phase histograms
/// (e.g. cbwt_netflow_join_spill_seconds) make a speedup visible in
/// run_report() and on the live inspector's /metrics without diffing
/// span logs. Purely observational: the timing never feeds back into
/// results, and a null registry makes it a no-op. Timing lives here
/// because obs owns every clock read in the tree (cbwt-lint wall-clock
/// / steady-clock rules).
class ScopedHistogramTimer {
 public:
  /// `bounds` is consulted on the histogram's first creation only.
  ScopedHistogramTimer(Registry* registry, std::string_view name,
                       std::span<const double> bounds);
  ~ScopedHistogramTimer();
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point begin_{};
};

}  // namespace cbwt::obs
