// Stage tracing: ScopedSpan wraps one pipeline stage and records a
// SpanRecord (wall time, process + thread CPU time, item count, parent
// stage) into the registry on scope exit. A null registry makes the
// span a complete no-op, so instrumented stages cost one null check
// when observability is off.
//
// Spans nest through the registry's span stack; open/close must be LIFO
// per registry, which holds as long as spans are opened on the
// pipeline-driving thread (the Study call path). Worker threads never
// open spans — they emit flat begin/end events into the flight recorder
// (obs::ScopedTrace, trace_buffer.h) instead.
//
// When the registry has a TraceBuffer armed, every span additionally
// emits a begin/end event pair so main-thread stages appear on the
// Chrome trace timeline alongside the worker events.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace cbwt::obs {

class ScopedSpan {
 public:
  /// Opens the span; `registry == nullptr` disables it entirely.
  ScopedSpan(Registry* registry, std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Stage-defined item count (requests classified, records emitted...).
  void set_items(std::uint64_t items) noexcept { items_ = items; }
  void add_items(std::uint64_t items) noexcept { items_ += items; }

 private:
  Registry* registry_;
  std::string name_;
  std::string parent_;
  std::uint64_t depth_ = 0;
  std::uint64_t items_ = 0;
  std::chrono::steady_clock::time_point wall_begin_{};
  std::clock_t process_cpu_begin_{};
  double thread_cpu_begin_ = 0.0;
};

}  // namespace cbwt::obs
