// Low-overhead observability registry for the measurement pipeline:
// named counters, gauges, and fixed-bucket histograms, plus the span log
// the stage tracer (trace.h) records into.
//
// Concurrency model: metric handles (`Counter&` etc.) are created under
// the registry mutex but updated with per-metric atomics, so the hot
// path of an instrumented stage is one relaxed atomic op. Instrumented
// modules resolve their handles once (construction or stage entry) and
// keep a null pointer when no registry is attached — the uninstrumented
// cost is a single predicted-false null check.
//
// Metrics are observational only: nothing here feeds back into pipeline
// results, so attaching a registry never perturbs determinism.
//
// Naming convention: `cbwt_<module>_<name>`, with `_total` for monotonic
// counters and `_seconds` for durations (README "Observability").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace cbwt::obs {

class TraceBuffer;  // trace_buffer.h; registry holds only a raw pointer

/// Monotonic counter (events, items).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Settable level (queue depths, pool sizes, accumulated seconds).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  /// Accumulates (CAS loop; fetch_add on atomic<double> is not yet
  /// universally available).
  void add(double delta) noexcept;
  /// Raises the gauge to `value` if it is higher (high-water marks).
  void max_of(double value) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges
/// (Prometheus `le` semantics); one implicit overflow bucket catches the
/// rest. Bucket counts are per-bucket, not cumulative.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One completed pipeline stage, as recorded by obs::ScopedSpan.
struct SpanRecord {
  std::string name;
  std::string parent;        ///< empty for top-level stages
  std::uint64_t depth = 0;   ///< nesting depth at open time
  double wall_seconds = 0.0; ///< steady_clock elapsed
  /// Whole-process CPU elapsed (std::clock): includes every concurrent
  /// worker thread, so it exceeds wall under parallelism.
  double process_cpu_seconds = 0.0;
  /// CPU burned by the opening thread alone (CLOCK_THREAD_CPUTIME_ID).
  double thread_cpu_seconds = 0.0;
  std::uint64_t items = 0;   ///< stage-defined item count (requests, records, ...)
};

/// The registry: owns every metric and the span log. Metric references
/// stay valid for the registry's lifetime. One registry typically spans
/// one Study / one run.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates; thread-safe. Resolve once, update via the handle.
  [[nodiscard]] Counter& counter(std::string_view name) CBWT_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(std::string_view name) CBWT_EXCLUDES(mutex_);
  /// `bounds` is consulted on first creation only; later calls with the
  /// same name return the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name, std::span<const double> bounds)
      CBWT_EXCLUDES(mutex_);

  // --- snapshots (name-sorted, for the exporters and tests) -----------
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, last = overflow
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<HistogramSample> histograms() const;
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  /// Convenience for tests/benches: current counter value, 0 if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  // --- span bookkeeping (driven by ScopedSpan) ------------------------
  /// Spans nest per registry: open/close must be LIFO, which holds when
  /// stages open spans on the pipeline-driving thread (workers never do).
  struct SpanContext {
    std::string parent;
    std::uint64_t depth = 0;
  };
  [[nodiscard]] SpanContext begin_span(std::string_view name);
  void end_span(SpanRecord record);

  // --- flight recorder hook -------------------------------------------
  /// Arms (or disarms, with nullptr) the trace buffer instrumented
  /// stages emit into. Arm before the run starts: the pointer swap is
  /// atomic but not synchronized against in-flight emitters.
  void set_trace_buffer(TraceBuffer* trace) noexcept {
    trace_.store(trace, std::memory_order_release);
  }
  /// The armed buffer, or nullptr. One relaxed-ish load on the hot path.
  [[nodiscard]] TraceBuffer* trace_buffer() const noexcept {
    return trace_.load(std::memory_order_acquire);
  }

 private:
  mutable util::Mutex mutex_;
  // Node-based maps: handles must stay stable across later insertions.
  // The maps are guarded; the metrics inside them are lock-free and the
  // references handed out stay valid (and unguarded) by design.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CBWT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CBWT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CBWT_GUARDED_BY(mutex_);
  std::vector<std::string> span_stack_ CBWT_GUARDED_BY(mutex_);
  std::vector<SpanRecord> spans_ CBWT_GUARDED_BY(mutex_);
  std::atomic<TraceBuffer*> trace_{nullptr};
};

}  // namespace cbwt::obs
