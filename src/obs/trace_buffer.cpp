#include "obs/trace_buffer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "report/json.h"
#include "runtime/thread_pool.h"

namespace cbwt::obs {

namespace {

/// Process-unique buffer ids let the per-thread ring cache detect that
/// it belongs to a different (possibly destroyed) buffer without ever
/// dereferencing the stale pointer. Ids start at 1 so the zero-
/// initialized cache never matches.
std::atomic<std::uint64_t> g_next_buffer_id{1};

struct RingCache {
  std::uint64_t buffer_id = 0;
  void* ring = nullptr;  ///< may be null: thread overflowed kMaxThreads
};
thread_local RingCache t_ring_cache;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t events_per_thread)
    : id_(g_next_buffer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(round_up_pow2(std::max<std::size_t>(events_per_thread, 2))),
      epoch_(std::chrono::steady_clock::now()),
      rings_(std::make_unique<Ring[]>(kMaxThreads)) {
  // Register the constructing thread now: slot 0 is "main", and the
  // driving thread's first span emit stays allocation-free.
  (void)ring_for_current_thread();
}

std::uint64_t TraceBuffer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceBuffer::Ring* TraceBuffer::ring_for_current_thread() {
  if (t_ring_cache.buffer_id == id_) {
    return static_cast<Ring*>(t_ring_cache.ring);
  }
  Ring* ring = register_current_thread();
  t_ring_cache = {id_, ring};
  return ring;
}

TraceBuffer::Ring* TraceBuffer::register_current_thread() {
  util::MutexLock lock(mutex_);
  if (thread_count_ >= kMaxThreads) return nullptr;
  const std::size_t index = thread_count_++;
  Ring& ring = rings_[index];
  ring.slots = std::make_unique<Slot[]>(capacity_);
  const int worker = runtime::ThreadPool::current_worker_index();
  if (worker >= 0) {
    ring.label = "pool-worker-" + std::to_string(worker);
  } else if (index == 0) {
    ring.label = "main";
  } else {
    ring.label = "thread-" + std::to_string(index);
  }
  ring.used.store(true, std::memory_order_release);
  return &ring;
}

void TraceBuffer::emit(TracePhase phase, std::string_view name, std::uint64_t arg) {
  Ring* ring = ring_for_current_thread();
  if (ring == nullptr) {
    unregistered_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t index = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[index & (capacity_ - 1)];
  // Seqlock write: mark the slot in-flight (odd), publish the mark
  // before any payload store via the release fence, write the payload
  // with relaxed atomics, then stamp the stable generation (even).
  slot.seq.store(2 * index + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.phase.store(static_cast<std::uint8_t>(phase), std::memory_order_relaxed);
  slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  const std::size_t n = std::min(name.size(), kTraceNameBytes - 1);
  for (std::size_t i = 0; i < n; ++i) {
    slot.name[i].store(name[i], std::memory_order_relaxed);
  }
  slot.name[n].store('\0', std::memory_order_relaxed);
  slot.seq.store(2 * (index + 1), std::memory_order_release);
  ring->head.store(index + 1, std::memory_order_release);
}

std::vector<TraceBuffer::ThreadTrace> TraceBuffer::snapshot() const {
  std::vector<ThreadTrace> out;
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    const Ring& ring = rings_[t];
    if (!ring.used.load(std::memory_order_acquire)) continue;
    ThreadTrace trace;
    trace.label = ring.label;
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
    trace.dropped = begin;
    trace.events.reserve(static_cast<std::size_t>(head - begin));
    for (std::uint64_t i = begin; i < head; ++i) {
      const Slot& slot = ring.slots[i & (capacity_ - 1)];
      const std::uint64_t want = 2 * (i + 1);
      if (slot.seq.load(std::memory_order_acquire) != want) continue;
      TraceEvent event;
      event.phase = static_cast<TracePhase>(slot.phase.load(std::memory_order_relaxed));
      event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      event.arg = slot.arg.load(std::memory_order_relaxed);
      char name[kTraceNameBytes];
      for (std::size_t j = 0; j < kTraceNameBytes; ++j) {
        name[j] = slot.name[j].load(std::memory_order_relaxed);
        if (name[j] == '\0') break;
      }
      name[kTraceNameBytes - 1] = '\0';
      // Seqlock read validation: if the writer lapped us mid-read the
      // generation changed; drop the torn event.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != want) continue;
      event.name.assign(name);
      trace.events.push_back(std::move(event));
    }
    out.push_back(std::move(trace));
  }
  return out;
}

std::uint64_t TraceBuffer::total_dropped() const {
  std::uint64_t dropped = unregistered_dropped_.load(std::memory_order_relaxed);
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    const Ring& ring = rings_[t];
    if (!ring.used.load(std::memory_order_acquire)) continue;
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    if (head > capacity_) dropped += head - capacity_;
  }
  return dropped;
}

std::size_t TraceBuffer::thread_count() const {
  util::MutexLock lock(mutex_);
  return thread_count_;
}

ScopedTrace::ScopedTrace(Registry* registry, std::string_view name, std::uint64_t arg)
    : trace_(registry == nullptr ? nullptr : registry->trace_buffer()), name_(name) {
  if (trace_ != nullptr) trace_->emit(TracePhase::kBegin, name_, arg);
}

ScopedTrace::~ScopedTrace() {
  if (trace_ != nullptr) trace_->emit(TracePhase::kEnd, name_);
}

void write_chrome_trace(const TraceBuffer& trace, report::JsonWriter& json) {
  const auto threads = trace.snapshot();
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("droppedEvents").value(trace.total_dropped());
  json.key("traceEvents").begin_array();
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    json.begin_object();
    json.key("ph").value("M");
    json.key("pid").value(std::uint64_t{1});
    json.key("tid").value(static_cast<std::uint64_t>(tid));
    json.key("name").value("thread_name");
    json.key("args").begin_object();
    json.key("name").value(threads[tid].label);
    json.end_object();
    json.end_object();
  }
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    for (const auto& event : threads[tid].events) {
      json.begin_object();
      switch (event.phase) {
        case TracePhase::kBegin: json.key("ph").value("B"); break;
        case TracePhase::kEnd: json.key("ph").value("E"); break;
        case TracePhase::kInstant: json.key("ph").value("i"); break;
      }
      json.key("pid").value(std::uint64_t{1});
      json.key("tid").value(static_cast<std::uint64_t>(tid));
      // Chrome trace timestamps are microseconds; fractional is allowed.
      json.key("ts").value(static_cast<double>(event.ts_ns) / 1000.0);
      json.key("name").value(event.name);
      if (event.phase == TracePhase::kInstant) json.key("s").value("t");
      json.key("args").begin_object();
      json.key("arg").value(event.arg);
      json.end_object();
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
}

std::string to_chrome_trace(const TraceBuffer& trace) {
  report::JsonWriter json;
  write_chrome_trace(trace, json);
  return json.str();
}

}  // namespace cbwt::obs
