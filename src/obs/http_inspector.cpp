#include "obs/http_inspector.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

namespace cbwt::obs {

std::optional<HttpRequest> parse_http_request(std::string_view text) {
  // Request line only: METHOD SP TARGET SP HTTP/version CRLF.
  const std::size_t line_end = text.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? text : text.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) return std::nullopt;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos || target_end == method_end + 1) {
    return std::nullopt;
  }
  const std::string_view version = line.substr(target_end + 1);
  if (version.substr(0, 5) != "HTTP/") return std::nullopt;
  std::string_view target = line.substr(method_end + 1, target_end - method_end - 1);
  // Strip any query string: the endpoints take no parameters.
  if (const std::size_t query = target.find('?'); query != std::string_view::npos) {
    target = target.substr(0, query);
  }
  if (target.empty() || target[0] != '/') return std::nullopt;
  HttpRequest request;
  request.method = std::string(line.substr(0, method_end));
  request.target = std::string(target);
  return request;
}

namespace {

/// Serializes one response; keep-alive is never offered.
std::string http_response(int status, std::string_view reason,
                          std::string_view content_type, std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + std::string(reason) +
                    "\r\nContent-Type: " + std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpInspector::HttpInspector(const InspectorConfig& config, InspectorHandlers handlers)
    : handlers_(std::move(handlers)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("inspector: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("inspector: bad bind address '" + config.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("inspector: cannot bind " + config.bind_address + ":" +
                             std::to_string(config.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config.port;
  }
  thread_ = std::thread([this] { serve(); });
}

HttpInspector::~HttpInspector() { stop(); }

void HttpInspector::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpInspector::serve() {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // One connection at a time: the inspector is a debugging tap, not a
    // web server, and serial handling keeps it allocation-light.
    handle_connection(client);
    ::close(client);
  }
}

void HttpInspector::handle_connection(int client_fd) {
  // Bound the read: request head up to 8 KB or until CRLFCRLF. A client
  // that stalls mid-request is dropped via poll timeout so the accept
  // loop can never be wedged by a half-open connection.
  std::string head;
  char buffer[2048];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{};
    pfd.fd = client_fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) return;
    const ssize_t n = ::recv(client_fd, buffer, sizeof buffer, 0);
    if (n <= 0) return;
    head.append(buffer, static_cast<std::size_t>(n));
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const auto request = parse_http_request(head);
  if (!request) {
    send_all(client_fd, http_response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  if (request->method != "GET") {
    send_all(client_fd,
             http_response(405, "Method Not Allowed", "text/plain", "GET only\n"));
    return;
  }

  const std::function<std::string()>* handler = nullptr;
  std::string_view content_type = "text/plain; version=0.0.4";
  if (request->target == "/metrics") {
    handler = &handlers_.metrics;
  } else if (request->target == "/report") {
    handler = &handlers_.report;
    content_type = "application/json";
  } else if (request->target == "/trace") {
    handler = &handlers_.trace;
    content_type = "application/json";
  } else if (request->target == "/healthz") {
    send_all(client_fd, http_response(200, "OK", "text/plain", "ok\n"));
    return;
  }
  if (handler == nullptr || !*handler) {
    send_all(client_fd, http_response(404, "Not Found", "text/plain", "not found\n"));
    return;
  }
  try {
    const std::string body = (*handler)();
    send_all(client_fd, http_response(200, "OK", content_type, body));
  } catch (const std::exception& error) {
    send_all(client_fd, http_response(500, "Internal Server Error", "text/plain",
                                      std::string(error.what()) + "\n"));
  }
}

}  // namespace cbwt::obs
