#include "obs/proc_stats.h"

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "report/json.h"

namespace cbwt::obs {

namespace {

/// Parses the decimal run starting at text[pos]; empty run yields 0.
std::uint64_t parse_u64(std::string_view text, std::size_t pos) {
  std::uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    ++pos;
  }
  return value;
}

/// Value of a "Key:   1234 ..." line, or nullopt if the key is absent.
std::optional<std::uint64_t> line_value(std::string_view text, std::string_view key) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    if (line.size() > key.size() && line.substr(0, key.size()) == key &&
        line[key.size()] == ':') {
      std::size_t v = key.size() + 1;
      while (v < line.size() && (line[v] == ' ' || line[v] == '\t')) ++v;
      return parse_u64(line, v);
    }
    pos = end + 1;
  }
  return std::nullopt;
}

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

long ticks_per_second() {
  const long ticks = ::sysconf(_SC_CLK_TCK);
  return ticks > 0 ? ticks : 100;
}

}  // namespace

void parse_proc_status(std::string_view text, ProcSample& sample) {
  // Values are in kB per proc(5).
  if (const auto rss = line_value(text, "VmRSS")) sample.rss_bytes = *rss * 1024;
  if (const auto hwm = line_value(text, "VmHWM")) sample.vm_hwm_bytes = *hwm * 1024;
}

void parse_proc_io(std::string_view text, ProcSample& sample) {
  if (const auto r = line_value(text, "read_bytes")) sample.read_bytes = *r;
  if (const auto w = line_value(text, "write_bytes")) sample.write_bytes = *w;
}

void parse_proc_stat(std::string_view text, long ticks_per_sec, ProcSample& sample) {
  // "pid (comm) state ppid ... majflt(12) cmajflt utime(14) stime(15) ..."
  // comm may itself contain ')' — the real field 2 ends at the LAST one.
  const std::size_t close = text.rfind(')');
  if (close == std::string_view::npos || ticks_per_sec <= 0) return;
  std::string_view rest = text.substr(close + 1);
  // Tokenize the space-separated tail; rest[0] is field 3 (state).
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < rest.size() && fields.size() < 16) {
    while (pos < rest.size() && rest[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < rest.size() && rest[end] != ' ' && rest[end] != '\n') ++end;
    if (end > pos) fields.push_back(rest.substr(pos, end - pos));
    pos = end;
  }
  // fields[0] = state (3), so 1-indexed stat field N is fields[N - 3].
  if (fields.size() <= 12) return;
  sample.major_faults = parse_u64(fields[12 - 3], 0);
  sample.user_cpu_seconds =
      static_cast<double>(parse_u64(fields[14 - 3], 0)) / static_cast<double>(ticks_per_sec);
  sample.system_cpu_seconds =
      static_cast<double>(parse_u64(fields[15 - 3], 0)) / static_cast<double>(ticks_per_sec);
}

ProcSample sample_process() {
  ProcSample sample;
  parse_proc_status(slurp("/proc/self/status"), sample);
  parse_proc_io(slurp("/proc/self/io"), sample);
  parse_proc_stat(slurp("/proc/self/stat"), ticks_per_second(), sample);
  return sample;
}

std::uint64_t vm_hwm_kb() {
  ProcSample sample;
  parse_proc_status(slurp("/proc/self/status"), sample);
  return sample.vm_hwm_bytes / 1024;
}

ProcSampler::ProcSampler(Registry* registry, std::chrono::milliseconds interval,
                         std::size_t timeline_capacity)
    : registry_(registry),
      interval_(interval.count() > 0 ? interval : std::chrono::milliseconds(1)),
      capacity_(timeline_capacity > 0 ? timeline_capacity : 1),
      epoch_(std::chrono::steady_clock::now()) {
  timeline_.reserve(capacity_);
  thread_ = std::thread([this] { run(); });
}

ProcSampler::~ProcSampler() { stop(); }

void ProcSampler::stop() {
  if (joined_) return;
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  joined_ = true;
  // Final sample after the thread is gone: a run shorter than one
  // interval still records its envelope (and the true VmHWM).
  take_sample();
}

void ProcSampler::run() {
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      if (stopping_) return;
      // Spurious wakeups only cause an early sample; no predicate loop.
      cv_.wait_for(lock.native(), interval_);
      if (stopping_) return;
    }
    take_sample();
  }
}

void ProcSampler::take_sample() {
  ProcSample sample = sample_process();
  sample.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  if (registry_ != nullptr) {
    registry_->gauge("cbwt_obs_proc_rss_bytes").set(static_cast<double>(sample.rss_bytes));
    registry_->gauge("cbwt_obs_proc_vm_hwm_bytes")
        .set(static_cast<double>(sample.vm_hwm_bytes));
    registry_->gauge("cbwt_obs_proc_major_faults")
        .set(static_cast<double>(sample.major_faults));
    registry_->gauge("cbwt_obs_proc_read_bytes")
        .set(static_cast<double>(sample.read_bytes));
    registry_->gauge("cbwt_obs_proc_write_bytes")
        .set(static_cast<double>(sample.write_bytes));
    registry_->gauge("cbwt_obs_proc_user_cpu_seconds").set(sample.user_cpu_seconds);
    registry_->gauge("cbwt_obs_proc_system_cpu_seconds").set(sample.system_cpu_seconds);
    registry_->counter("cbwt_obs_proc_samples_total").add(1);
  }
  util::MutexLock lock(mutex_);
  record_locked(sample);
}

void ProcSampler::record_locked(ProcSample sample) {
  // Stride thinning: record every stride_-th sample; when the timeline
  // fills, keep every 2nd entry and double the stride. Total memory is
  // bounded while the recorded envelope always spans the full run.
  if (sample_index_++ % stride_ != 0) return;
  if (timeline_.size() >= capacity_) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < timeline_.size(); i += 2) timeline_[kept++] = timeline_[i];
    timeline_.resize(kept);
    stride_ *= 2;
    if ((sample_index_ - 1) % stride_ != 0) return;
  }
  timeline_.push_back(sample);
}

std::vector<ProcSample> ProcSampler::timeline() const {
  util::MutexLock lock(mutex_);
  return timeline_;
}

void write_proc_timeline(const std::vector<ProcSample>& timeline,
                         report::JsonWriter& json) {
  json.begin_array();
  for (const auto& sample : timeline) {
    json.begin_object();
    json.key("ts_seconds").value(static_cast<double>(sample.ts_ns) / 1e9);
    json.key("rss_bytes").value(sample.rss_bytes);
    json.key("vm_hwm_bytes").value(sample.vm_hwm_bytes);
    json.key("major_faults").value(sample.major_faults);
    json.key("read_bytes").value(sample.read_bytes);
    json.key("write_bytes").value(sample.write_bytes);
    json.key("user_cpu_seconds").value(sample.user_cpu_seconds);
    json.key("system_cpu_seconds").value(sample.system_cpu_seconds);
    json.end_object();
  }
  json.end_array();
}

}  // namespace cbwt::obs
