// Process telemetry: parsers for /proc/self/{status,io,stat}, a
// one-shot sampler, and a background ProcSampler thread that folds the
// process's memory/IO/CPU envelope into registry gauges plus a bounded
// timeline — so a store-backed run can watch its RSS live instead of
// checking VmHWM after the fact.
//
// The parsers are pure functions over file text (unit-tested against
// canned fixtures); only sample_process() touches the real /proc.
// The sampler thread reads kernel accounting and writes gauges — it
// never touches study RNG or pipeline state, so arming it cannot
// perturb determinism.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace cbwt::report {
class JsonWriter;
}  // namespace cbwt::report

namespace cbwt::obs {

class Registry;

/// One snapshot of the process's kernel-side accounting. Fields whose
/// source line (or file) is missing stay zero.
struct ProcSample {
  std::uint64_t ts_ns = 0;  ///< since sampler start; 0 for one-shots
  std::uint64_t rss_bytes = 0;         ///< VmRSS
  std::uint64_t vm_hwm_bytes = 0;      ///< VmHWM (peak RSS)
  std::uint64_t major_faults = 0;      ///< majflt (cumulative)
  std::uint64_t read_bytes = 0;        ///< storage-layer reads (cumulative)
  std::uint64_t write_bytes = 0;       ///< storage-layer writes (cumulative)
  double user_cpu_seconds = 0.0;       ///< utime (cumulative)
  double system_cpu_seconds = 0.0;     ///< stime (cumulative)
};

/// Parses /proc/self/status text: VmRSS / VmHWM ("VmRSS:  1234 kB").
void parse_proc_status(std::string_view text, ProcSample& sample);

/// Parses /proc/self/io text: read_bytes / write_bytes.
void parse_proc_io(std::string_view text, ProcSample& sample);

/// Parses /proc/self/stat: majflt, utime, stime. Handles comm fields
/// containing spaces/parens by scanning from the *last* ')'.
/// `ticks_per_second` converts utime/stime (sysconf(_SC_CLK_TCK) for
/// the live system; fixed in tests).
void parse_proc_stat(std::string_view text, long ticks_per_second, ProcSample& sample);

/// One-shot sample of the calling process (reads the real /proc/self).
[[nodiscard]] ProcSample sample_process();

/// Peak resident set (VmHWM) in KiB; 0 if /proc is unavailable.
[[nodiscard]] std::uint64_t vm_hwm_kb();

/// Background sampler: every `interval`, reads /proc/self and updates
///   cbwt_obs_proc_{rss_bytes,vm_hwm_bytes,major_faults,read_bytes,
///                  write_bytes,user_cpu_seconds,system_cpu_seconds}
/// gauges plus cbwt_obs_proc_samples_total, and appends to a bounded
/// timeline (when full, it thins to every 2nd sample and doubles the
/// recording stride — the envelope stays covered end to end).
class ProcSampler {
 public:
  explicit ProcSampler(Registry* registry,
                       std::chrono::milliseconds interval = std::chrono::milliseconds(200),
                       std::size_t timeline_capacity = 4096);
  ~ProcSampler();
  ProcSampler(const ProcSampler&) = delete;
  ProcSampler& operator=(const ProcSampler&) = delete;

  /// Stops and joins the sampler thread after one final sample, so a
  /// short run still records its envelope. Idempotent.
  void stop();

  /// Samples recorded so far, oldest first.
  [[nodiscard]] std::vector<ProcSample> timeline() const;

 private:
  void run();
  void record_locked(ProcSample sample) CBWT_REQUIRES(mutex_);
  void take_sample();

  Registry* registry_;
  std::chrono::milliseconds interval_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;

  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ CBWT_GUARDED_BY(mutex_) = false;
  bool joined_ = false;  ///< touched by stop() only (caller-serialized)
  std::uint64_t sample_index_ CBWT_GUARDED_BY(mutex_) = 0;
  std::uint64_t stride_ CBWT_GUARDED_BY(mutex_) = 1;
  std::vector<ProcSample> timeline_ CBWT_GUARDED_BY(mutex_);

  // Telemetry thread: confined to /proc reads and registry writes.
  std::thread thread_;
};

/// Writes a sampler timeline as a JSON array of sample objects.
void write_proc_timeline(const std::vector<ProcSample>& timeline,
                         report::JsonWriter& json);

}  // namespace cbwt::obs
