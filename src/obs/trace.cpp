#include "obs/trace.h"

namespace cbwt::obs {

ScopedSpan::ScopedSpan(Registry* registry, std::string_view name) : registry_(registry) {
  if (registry_ == nullptr) return;
  name_ = name;
  auto context = registry_->begin_span(name_);
  parent_ = std::move(context.parent);
  depth_ = context.depth;
  wall_begin_ = std::chrono::steady_clock::now();
  cpu_begin_ = std::clock();
}

ScopedSpan::~ScopedSpan() {
  if (registry_ == nullptr) return;
  SpanRecord record;
  record.name = std::move(name_);
  record.parent = std::move(parent_);
  record.depth = depth_;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin_)
          .count();
  record.cpu_seconds = static_cast<double>(std::clock() - cpu_begin_) /
                       static_cast<double>(CLOCKS_PER_SEC);
  record.items = items_;
  registry_->end_span(std::move(record));
}

}  // namespace cbwt::obs
