#include "obs/trace.h"

#include <ctime>

#include "obs/trace_buffer.h"

namespace cbwt::obs {

namespace {

/// CPU consumed by the calling thread alone. std::clock() cannot answer
/// this — POSIX pins it to *process* CPU — hence the explicit clockid.
double thread_cpu_seconds_now() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

ScopedSpan::ScopedSpan(Registry* registry, std::string_view name) : registry_(registry) {
  if (registry_ == nullptr) return;
  name_ = name;
  auto context = registry_->begin_span(name_);
  parent_ = std::move(context.parent);
  depth_ = context.depth;
  if (TraceBuffer* trace = registry_->trace_buffer()) {
    trace->emit(TracePhase::kBegin, name_);
  }
  wall_begin_ = std::chrono::steady_clock::now();
  process_cpu_begin_ = std::clock();
  thread_cpu_begin_ = thread_cpu_seconds_now();
}

ScopedHistogramTimer::ScopedHistogramTimer(Registry* registry, std::string_view name,
                                           std::span<const double> bounds) {
  if (registry == nullptr) return;
  histogram_ = &registry->histogram(name, bounds);
  begin_ = std::chrono::steady_clock::now();
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (histogram_ == nullptr) return;
  histogram_->observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin_).count());
}

ScopedSpan::~ScopedSpan() {
  if (registry_ == nullptr) return;
  if (TraceBuffer* trace = registry_->trace_buffer()) {
    trace->emit(TracePhase::kEnd, name_, items_);
  }
  SpanRecord record;
  record.name = std::move(name_);
  record.parent = std::move(parent_);
  record.depth = depth_;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin_)
          .count();
  record.process_cpu_seconds = static_cast<double>(std::clock() - process_cpu_begin_) /
                               static_cast<double>(CLOCKS_PER_SEC);
  record.thread_cpu_seconds = thread_cpu_seconds_now() - thread_cpu_begin_;
  record.items = items_;
  registry_->end_span(std::move(record));
}

}  // namespace cbwt::obs
