#include "obs/metrics.h"

#include <algorithm>

#include "util/contract.h"

namespace cbwt::obs {

void Gauge::add(double delta) noexcept {
  double expected = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::max_of(double value) noexcept {
  double expected = value_.load(std::memory_order_relaxed);
  while (expected < value &&
         !value_.compare_exchange_weak(expected, value, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds.size() + 1)) {
  CBWT_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Counter& Registry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> bounds) {
  util::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  util::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  util::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge->value());
  return out;
}

std::vector<Registry::HistogramSample> Registry::histograms() const {
  util::MutexLock lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.buckets = histogram->bucket_counts();
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<SpanRecord> Registry::spans() const {
  util::MutexLock lock(mutex_);
  return spans_;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

Registry::SpanContext Registry::begin_span(std::string_view name) {
  util::MutexLock lock(mutex_);
  SpanContext context;
  if (!span_stack_.empty()) context.parent = span_stack_.back();
  context.depth = span_stack_.size();
  span_stack_.emplace_back(name);
  return context;
}

void Registry::end_span(SpanRecord record) {
  util::MutexLock lock(mutex_);
  CBWT_ASSERT(!span_stack_.empty() && span_stack_.back() == record.name);
  span_stack_.pop_back();
  spans_.push_back(std::move(record));
}

}  // namespace cbwt::obs
