// Bridges cbwt::runtime's internal counters into the registry. The
// runtime layer stays observability-agnostic (it only exposes plain
// stats structs); instrumented modules call these helpers to surface
// what their parallel stages did.
#pragma once

#include "obs/metrics.h"
#include "runtime/channel.h"
#include "runtime/thread_pool.h"

namespace cbwt::obs {

/// Folds one stage's accumulated channel counters into
/// cbwt_runtime_channel_* (counters for throughput/stalls, gauges for
/// the high-water mark and accumulated stall seconds). No-op when
/// `registry` is null or the stats are all zero (serial path).
void record_channel_stats(Registry* registry, const runtime::ChannelStats& stats);

/// Snapshots the pool's lifetime counters and queue depth into
/// cbwt_runtime_pool_* gauges. No-op when `registry` is null.
void record_pool_stats(Registry* registry, const runtime::ThreadPool& pool);

}  // namespace cbwt::obs
