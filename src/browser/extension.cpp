#include "browser/extension.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "rtb/openrtb.h"
#include "world/topics.h"

namespace cbwt::browser {

namespace {

using world::OrgRole;

constexpr std::array<std::string_view, 5> kSyncKeywords = {
    "usermatch", "cookiesync", "uid_sync", "cm", "idsync"};

std::string scheme_for(bool https) { return https ? "https://" : "http://"; }

/// Builds the URL of a request to `domain`, shaped by the org role. Ad
/// paths carry the tokens easylist's generic rules look for; sync/DSP
/// URLs carry the argument keywords stage-2 classification keys on.
std::string build_url(const world::World& world, const world::TrackerDomain& domain,
                      const world::Publisher& publisher, bool https, util::Rng& rng) {
  const auto& org = world.org(domain.org);
  std::string url = scheme_for(https) + domain.fqdn;
  const auto id = rng.next_below(1'000'000);
  switch (org.role) {
    case OrgRole::AdNetwork: {
      const double roll = rng.next_double();
      if (roll < 0.4) {
        url += "/ads/display/" + std::to_string(id) + "?pub=" + publisher.domain +
               "&ad_slot=" + std::to_string(rng.next_below(8));
      } else if (roll < 0.7) {
        url += "/banner/" + std::to_string(id) + "/img?size=300x250";
      } else {
        url += "/adserve/tag.js?v=" + std::to_string(rng.next_below(100));
      }
      break;
    }
    case OrgRole::Analytics: {
      if (rng.chance(0.7)) {
        url += "/collect?sid=" + std::to_string(id) + "&ev=pageview";
      } else {
        url += "/beacon?t=" + std::to_string(id);
      }
      break;
    }
    case OrgRole::Dsp: {
      url += "/bid?auction=" + std::to_string(id) +
             "&price=" + std::to_string(rng.next_below(500));
      if (domain.keyword_urls) url += "&rtb=2.5";
      break;
    }
    case OrgRole::SyncService: {
      const auto keyword = kSyncKeywords[static_cast<std::size_t>(
          rng.next_below(kSyncKeywords.size()))];
      url += "/pixel?" + std::string(keyword) + "=1&uid=" + std::to_string(id);
      break;
    }
    case OrgRole::CleanService: {
      const double roll = rng.next_double();
      if (roll < 0.4) {
        url += "/widget/embed?site=" + publisher.domain;
      } else if (roll < 0.7) {
        url += "/assets/app-" + std::to_string(rng.next_below(50)) + ".js";
      } else {
        url += "/api/v1/messages?channel=" + std::to_string(id);
      }
      break;
    }
  }
  return url;
}

/// Samples a few distinct org ids of `role`, popularity-weighted, with a
/// boost for orgs whose home market is `local_country` (geo-targeted
/// campaigns pull local bidders and sync partners into the auction).
std::vector<world::OrgId> sample_orgs(const world::World& world, OrgRole role,
                                      std::size_t count, std::string_view local_country,
                                      util::Rng& rng) {
  std::vector<world::OrgId> pool;
  std::vector<double> weights;
  for (const auto& org : world.orgs()) {
    if (org.role == role) {
      pool.push_back(org.id);
      weights.push_back(org.popularity * (org.hq_country == local_country ? 4.0 : 1.0));
    }
  }
  std::vector<world::OrgId> out;
  for (std::size_t i = 0; i < count * 3 && out.size() < count; ++i) {
    const auto picked = pool[util::sample_discrete(rng, weights)];
    if (std::find(out.begin(), out.end(), picked) == out.end()) out.push_back(picked);
  }
  return out;
}

class VisitRenderer {
 public:
  VisitRenderer(const world::World& world, const dns::Resolver& resolver,
                const world::ExtensionUser& user, const world::Publisher& publisher,
                pdns::Day day, const CollectorConfig& config, util::Rng& rng,
                std::vector<ThirdPartyRequest>& out, pdns::Store* pdns_feed,
                rtb::CookieJar& jar)
      : world_(world), resolver_(resolver), user_(user), publisher_(publisher), day_(day),
        config_(config), rng_(rng), out_(out), pdns_feed_(pdns_feed), jar_(jar),
        engine_(world, resolver, config.auction),
        origin_(resolver.origin_for(user.country, user.third_party_resolver)) {}

  void run() {
    const std::string page_url = "https://" + publisher_.domain + "/";
    for (const auto tag_domain : publisher_.embedded_tags) {
      emit_tag(tag_domain, page_url);
    }
  }

 private:
  /// Issues `count` requests to one domain and returns the URL of the
  /// last one (the chain parent for children).
  std::string request_burst(world::DomainId domain_id, const std::string& referrer,
                            std::uint8_t depth, std::size_t count,
                            bool interaction_gated) {
    const auto& domain = world_.domain(domain_id);
    std::string last_url;
    for (std::size_t i = 0; i < count; ++i) {
      if (interaction_gated && !config_.user_interaction) continue;
      ThirdPartyRequest request;
      request.user = user_.id;
      request.publisher = publisher_.id;
      request.domain = domain_id;
      request.day = day_;
      request.chain_depth = depth;
      request.https = rng_.chance(config_.https_share);
      request.interaction_triggered = interaction_gated;
      request.url = build_url(world_, domain, publisher_, request.https, rng_);
      request.referrer = referrer;

      const auto answer = resolver_.resolve(domain_id, origin_, rng_);
      request.server_ip = answer.ip;
      if (pdns_feed_ != nullptr) {
        pdns_feed_->observe(domain.fqdn, domain.registrable, answer.ip, day_);
      }
      // Any contacted tracking org can set its own first-contact cookie.
      if (world_.org(domain.org).role != OrgRole::CleanService) {
        (void)jar_.ensure_id(domain.org, rng_);
      }
      last_url = request.url;
      out_.push_back(std::move(request));
    }
    return last_url;
  }

  void emit_tag(world::DomainId tag_domain, const std::string& page_url) {
    const auto& domain = world_.domain(tag_domain);
    const auto& org = world_.org(domain.org);
    switch (org.role) {
      case OrgRole::AdNetwork: {
        // Tag load + creative/static fetches, referrer = first party.
        const std::size_t burst = 3 + static_cast<std::size_t>(rng_.next_below(5));
        const std::string entry_url = request_burst(tag_domain, page_url, 0, burst, false);
        if (entry_url.empty()) break;
        run_auction(entry_url, org.id);
        break;
      }
      case OrgRole::Analytics: {
        request_burst(tag_domain, page_url, 0,
                      1 + static_cast<std::size_t>(rng_.next_below(3)), false);
        break;
      }
      case OrgRole::CleanService: {
        request_burst(tag_domain, page_url, 0,
                      2 + static_cast<std::size_t>(rng_.next_below(7)), false);
        break;
      }
      default:
        // DSP/sync domains are never embedded directly by publishers.
        request_burst(tag_domain, page_url, 0, 1, false);
        break;
    }
  }

  /// The RTB cascade behind one ad slot, run through the OpenRTB-style
  /// auction engine (client-side header bidding, so every bid request is
  /// a browser-visible flow). Winner fetches creative + win notice and,
  /// when unsynced, kicks off a cookie-sync cascade; a slice of the
  /// cascade only fires when the slot scrolls into view.
  void run_auction(const std::string& entry_url, world::OrgId ad_network) {
    rtb::BidRequest request;
    request.id = std::to_string(rng_());
    request.imp.id = "1";
    request.imp.bidfloor = 0.05 + rng_.next_double() * 0.3;
    request.site_domain = publisher_.domain;
    request.site_topics = publisher_.topics;
    request.user_country = user_.country;
    request.user = user_.id;
    for (const auto topic : publisher_.topics) {
      if (world::topic_by_id(topic).sensitive) request.sensitive_context = true;
    }

    const std::size_t n_bidders = 2 + static_cast<std::size_t>(rng_.next_below(5));
    const auto bidders = sample_orgs(world_, OrgRole::Dsp, n_bidders, user_.country, rng_);
    const auto outcome = engine_.run(request, bidders, jar_, rng_);

    // Every solicited DSP produced a browser-visible bid request.
    for (const auto dsp_id : outcome.participants) {
      const auto& dsp = world_.org(dsp_id);
      if (dsp.domains.empty()) continue;
      const auto dsp_domain = dsp.domains[static_cast<std::size_t>(
          rng_.next_below(dsp.domains.size()))];
      const bool gated = rng_.chance(0.18);
      request_burst(dsp_domain, entry_url, 1, 1, gated);
    }

    if (!outcome.winner) return;
    const auto& winner = world_.org(outcome.winner->dsp);
    if (winner.domains.empty()) return;
    const auto winner_domain = winner.domains.front();
    // Creative fetch + win notice, chained off the winner's bid URL.
    const std::string creative_url =
        request_burst(winner_domain, entry_url, 2, 2, false);
    jar_.record_sync(ad_network, winner.id);  // exchange <-> winner know each other
    if (outcome.winner->wants_sync && !creative_url.empty()) {
      sync_cascade(creative_url, 2, winner.id);
    }
  }

  void sync_cascade(const std::string& parent_url, std::uint8_t depth,
                    world::OrgId initiator) {
    if (depth > 4) return;
    const std::size_t n_syncs = 1 + static_cast<std::size_t>(rng_.next_below(3));
    const auto syncs = sample_orgs(world_, OrgRole::SyncService, n_syncs, user_.country, rng_);
    for (const auto sync_org : syncs) {
      const auto& org = world_.org(sync_org);
      if (org.domains.empty()) continue;
      const auto sync_domain = org.domains[static_cast<std::size_t>(
          rng_.next_below(org.domains.size()))];
      const bool gated = rng_.chance(0.10);
      const std::string sync_url =
          request_burst(sync_domain, parent_url, depth, 1, gated);
      if (sync_url.empty()) continue;
      jar_.record_sync(initiator, sync_org);
      if (rng_.chance(0.20)) {
        sync_cascade(sync_url, static_cast<std::uint8_t>(depth + 1), sync_org);
      }
    }
  }

  const world::World& world_;
  const dns::Resolver& resolver_;
  const world::ExtensionUser& user_;
  const world::Publisher& publisher_;
  pdns::Day day_;
  const CollectorConfig& config_;
  util::Rng& rng_;
  std::vector<ThirdPartyRequest>& out_;
  pdns::Store* pdns_feed_;
  rtb::CookieJar& jar_;
  rtb::AuctionEngine engine_;
  dns::QueryOrigin origin_;
};

/// Publisher choice: popularity-weighted with an interest boost.
world::PublisherId pick_publisher(const world::World& world,
                                  const world::ExtensionUser& user, util::Rng& rng,
                                  std::vector<double>& scratch) {
  const auto& publishers = world.publishers();
  scratch.resize(publishers.size());
  for (std::size_t i = 0; i < publishers.size(); ++i) {
    double weight = publishers[i].popularity;
    for (const auto topic : publishers[i].topics) {
      if (std::find(user.interests.begin(), user.interests.end(), topic) !=
          user.interests.end()) {
        weight *= 3.0;
        break;
      }
    }
    // Locality of attention: users over-visit sites of their own country.
    if (publishers[i].country == user.country) weight *= 5.0;
    scratch[i] = weight;
  }
  return static_cast<world::PublisherId>(util::sample_discrete(rng, scratch));
}

}  // namespace

void render_visit(const world::World& world, const dns::Resolver& resolver,
                  const world::ExtensionUser& user, const world::Publisher& publisher,
                  pdns::Day day, const CollectorConfig& config, util::Rng& rng,
                  std::vector<ThirdPartyRequest>& out, pdns::Store* pdns_feed,
                  rtb::CookieJar* jar) {
  rtb::CookieJar throwaway;
  VisitRenderer renderer(world, resolver, user, publisher, day, config, rng, out,
                         pdns_feed, jar != nullptr ? *jar : throwaway);
  renderer.run();
}

ExtensionDataset collect_extension_dataset(const world::World& world,
                                           const dns::Resolver& resolver,
                                           const CollectorConfig& config, util::Rng& rng,
                                           pdns::Store* pdns_feed) {
  ExtensionDataset dataset;
  std::unordered_set<world::PublisherId> visited;
  std::unordered_map<world::UserId, rtb::CookieJar> jars;  // user state persists
  std::vector<double> scratch;
  const double visits_mean = world.config().visits_per_user();
  const auto window = static_cast<double>(config.window_end - config.window_start + 1);

  for (const auto& user : world.users()) {
    const auto n_visits = rng.next_poisson(visits_mean * user.activity);
    for (std::uint64_t v = 0; v < n_visits; ++v) {
      const auto publisher_id = pick_publisher(world, user, rng, scratch);
      const auto day = static_cast<pdns::Day>(
          config.window_start +
          static_cast<pdns::Day>(rng.next_below(static_cast<std::uint64_t>(window))));
      render_visit(world, resolver, user, world.publisher(publisher_id), day, config, rng,
                   dataset.requests, pdns_feed, &jars[user.id]);
      ++dataset.first_party_visits;
      visited.insert(publisher_id);
    }
  }
  dataset.distinct_publishers = visited.size();
  return dataset;
}

}  // namespace cbwt::browser
