#include "browser/dataset_store.h"

#include <span>
#include <utility>

#include "store/bytes.h"
#include "store/record_file.h"
#include "store/superblock.h"

namespace cbwt::browser {

static_assert(RequestRowCodec::kKind ==
                  static_cast<std::uint16_t>(store::RecordKind::BrowseRecord),
              "RequestRowCodec::kKind must track store::RecordKind::BrowseRecord");

void RequestRowCodec::encode(const RequestRow& row, std::uint8_t* out) {
  store::put_u32(out + 0, row.user);
  store::put_u32(out + 4, row.publisher);
  store::put_u32(out + 8, row.domain);
  out[12] = row.server_ip.is_v4() ? 4 : 6;
  store::put_u64(out + 13, row.server_ip.hi());
  store::put_u64(out + 21, row.server_ip.lo());
  store::put_u32(out + 29, static_cast<std::uint32_t>(row.day));
  out[33] = row.chain_depth;
  out[34] = static_cast<std::uint8_t>((row.https ? 1 : 0) |
                                      (row.interaction_triggered ? 2 : 0));
  store::put_blob_ref(out + 35, row.url);
  store::put_blob_ref(out + 47, row.referrer);
}

std::optional<RequestRow> RequestRowCodec::decode(const std::uint8_t* in) {
  RequestRow row;
  row.user = store::get_u32(in + 0);
  row.publisher = store::get_u32(in + 4);
  row.domain = store::get_u32(in + 8);
  const std::uint8_t family = in[12];
  const std::uint64_t hi = store::get_u64(in + 13);
  const std::uint64_t lo = store::get_u64(in + 21);
  if (family == 4) {
    if (hi != 0 || lo > 0xFFFFFFFFULL) return std::nullopt;
    row.server_ip = net::IpAddress::v4(static_cast<std::uint32_t>(lo));
  } else if (family == 6) {
    row.server_ip = net::IpAddress::v6(hi, lo);
  } else {
    return std::nullopt;
  }
  row.day = static_cast<pdns::Day>(store::get_u32(in + 29));
  row.chain_depth = in[33];
  const std::uint8_t flags = in[34];
  if ((flags & ~std::uint8_t{3}) != 0) return std::nullopt;  // reserved bits
  row.https = (flags & 1) != 0;
  row.interaction_triggered = (flags & 2) != 0;
  row.url = store::get_blob_ref(in + 35);
  row.referrer = store::get_blob_ref(in + 47);
  return row;
}

void save_requests(const ExtensionDataset& dataset, const std::string& records_path,
                   const std::string& blobs_path) {
  store::BlobFileWriter blobs(blobs_path);
  store::RecordFileWriter<RequestRowCodec> rows(records_path);
  for (const ThirdPartyRequest& request : dataset.requests) {
    RequestRow row;
    row.url = blobs.intern(request.url);
    row.referrer = blobs.intern(request.referrer);
    row.user = request.user;
    row.publisher = request.publisher;
    row.domain = request.domain;
    row.server_ip = request.server_ip;
    row.day = request.day;
    row.chain_depth = request.chain_depth;
    row.https = request.https;
    row.interaction_triggered = request.interaction_triggered;
    rows.append(row);
  }
  rows.finalize();
  blobs.finalize();
}

std::vector<ThirdPartyRequest> load_requests(const std::string& records_path,
                                             const std::string& blobs_path) {
  const store::BlobFileReader blobs(blobs_path);
  const store::RecordFileReader<RequestRowCodec> rows(records_path);
  std::vector<ThirdPartyRequest> requests;
  requests.reserve(rows.size());
  rows.for_each_chunk(store::kDefaultChunkRecords,
                      [&](std::span<const RequestRow> chunk, std::uint64_t /*base*/) {
                        for (const RequestRow& row : chunk) {
                          ThirdPartyRequest request;
                          request.user = row.user;
                          request.publisher = row.publisher;
                          request.domain = row.domain;
                          request.url = std::string(blobs.view(row.url));
                          request.referrer = std::string(blobs.view(row.referrer));
                          request.server_ip = row.server_ip;
                          request.day = row.day;
                          request.chain_depth = row.chain_depth;
                          request.https = row.https;
                          request.interaction_triggered = row.interaction_triggered;
                          requests.push_back(std::move(request));
                        }
                      });
  return requests;
}

}  // namespace cbwt::browser
