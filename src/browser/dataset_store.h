// Extension-dataset checkpointing: the logged third-party requests as a
// fixed-width record file (ids, IP, day, flags) plus a blob file (URLs
// and referrers, interned — chain URLs repeat across users). Loading
// restores the request vector in logged order; the two dataset-level
// aggregates (first-party visits, distinct publishers) travel in the
// checkpoint manifest, which owns all scalar state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "browser/extension.h"
#include "store/blob_file.h"

namespace cbwt::browser {

/// One serialized ThirdPartyRequest with its strings swapped for blob
/// handles; the fixed-width row the record file actually holds.
struct RequestRow {
  store::BlobRef url;
  store::BlobRef referrer;
  world::UserId user = 0;
  world::PublisherId publisher = 0;
  world::DomainId domain = 0;
  net::IpAddress server_ip;
  pdns::Day day = 0;
  std::uint8_t chain_depth = 0;
  bool https = true;
  bool interaction_triggered = false;
};

/// store::RecordCodec for RequestRow. 59-byte layout, big-endian:
/// user u32, publisher u32, domain u32, ip family u8 + hi u64 + lo u64,
/// day u32, chain_depth u8, flags u8 (bit 0 https, bit 1
/// interaction_triggered), url BlobRef, referrer BlobRef.
struct RequestRowCodec {
  using value_type = RequestRow;
  static constexpr std::size_t kRecordSize = 59;
  static constexpr std::uint16_t kKind = 3;  // store::RecordKind::BrowseRecord
  static void encode(const RequestRow& row, std::uint8_t* out);
  static std::optional<RequestRow> decode(const std::uint8_t* in);
};

/// Persists `dataset.requests` to `records_path` + `blobs_path` (the
/// scalar aggregates are the caller's to persist — see the checkpoint
/// manifest).
void save_requests(const ExtensionDataset& dataset, const std::string& records_path,
                   const std::string& blobs_path);

/// Restores the request vector saved by save_requests, in logged order.
/// Throws store::StoreError on validation failure.
[[nodiscard]] std::vector<ThirdPartyRequest> load_requests(
    const std::string& records_path, const std::string& blobs_path);

}  // namespace cbwt::browser
