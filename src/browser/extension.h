// Browser-extension data collection. Simulates real users' browsers
// fully rendering publisher pages: entry tags (ad networks, analytics,
// clean widgets) fire first, then the ad-tech chain unfolds — RTB bid
// requests to DSPs, cookie-sync cascades between sync services — with
// the referrer header propagating down the chain. The collected record
// schema matches the paper's extension: user country, first-party
// domain, third-party URL, contacted server IP (§3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/resolver.h"
#include "net/ip.h"
#include "pdns/store.h"
#include "rtb/auction.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::browser {

/// One logged third-party request.
struct ThirdPartyRequest {
  world::UserId user = 0;
  world::PublisherId publisher = 0;
  world::DomainId domain = 0;     ///< ground-truth domain (hidden from classifier)
  std::string url;                ///< full third-party URL (lower-case)
  std::string referrer;           ///< "" | first-party URL | chain parent URL
  net::IpAddress server_ip;
  pdns::Day day = 0;
  std::uint8_t chain_depth = 0;   ///< 0 = embedded tag, 1+ = chained
  bool https = true;
  bool interaction_triggered = false;  ///< fired only because a real user
                                       ///< scrolled the slot into view
};

/// The full collection run of the recruited users.
struct ExtensionDataset {
  std::vector<ThirdPartyRequest> requests;
  std::uint64_t first_party_visits = 0;
  std::uint64_t distinct_publishers = 0;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
};

struct CollectorConfig {
  pdns::Day window_start = 0;
  pdns::Day window_end = 135;
  /// Exchange/auction behaviour (client-side header-bidding style, so
  /// every bid request is a browser-visible flow, §2.2).
  rtb::AuctionConfig auction;
  /// Real users interact with pages (scroll, view ads); scripted crawlers
  /// do not — flipping this off is the crawler-vs-real-user ablation.
  bool user_interaction = true;
  /// Share of tracking requests on HTTPS (paper: 83.14%).
  double https_share = 0.8314;
};

/// Renders pages for every extension user over the study window and
/// returns the dataset. When `pdns_feed` is non-null, every resolution
/// the users' browsers perform is also replicated into the store.
[[nodiscard]] ExtensionDataset collect_extension_dataset(const world::World& world,
                                                         const dns::Resolver& resolver,
                                                         const CollectorConfig& config,
                                                         util::Rng& rng,
                                                         pdns::Store* pdns_feed = nullptr);

/// Renders a single visit (exposed for tests and examples). `jar` holds
/// the user's cookie/sync state and persists across visits; pass nullptr
/// for a throwaway jar.
void render_visit(const world::World& world, const dns::Resolver& resolver,
                  const world::ExtensionUser& user, const world::Publisher& publisher,
                  pdns::Day day, const CollectorConfig& config, util::Rng& rng,
                  std::vector<ThirdPartyRequest>& out, pdns::Store* pdns_feed = nullptr,
                  rtb::CookieJar* jar = nullptr);

}  // namespace cbwt::browser
