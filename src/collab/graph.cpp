#include "collab/graph.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "geo/country.h"

namespace cbwt::collab {

namespace {

std::string_view host_of(std::string_view url) noexcept {
  const std::size_t scheme = url.find("://");
  if (scheme == std::string_view::npos) return {};
  const std::size_t start = scheme + 3;
  std::size_t end = url.find('/', start);
  if (end == std::string_view::npos) end = url.size();
  return url.substr(start, end - start);
}

}  // namespace

CollabGraph CollabGraph::from_dataset(const world::World& world,
                                      const browser::ExtensionDataset& dataset,
                                      const std::vector<classify::Outcome>& outcomes) {
  struct EdgeAccumulator {
    std::uint64_t weight = 0;
    std::set<world::UserId> users;
  };
  std::map<std::pair<world::OrgId, world::OrgId>, EdgeAccumulator> accumulators;

  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    const auto& request = dataset.requests[i];
    if (request.chain_depth == 0) continue;  // entry tags have first-party parents
    const auto parent_host = host_of(request.referrer);
    if (parent_host.empty()) continue;
    const auto* parent_domain = world.find_domain(std::string(parent_host));
    if (parent_domain == nullptr) continue;
    const auto child_org = world.domain(request.domain).org;
    const auto parent_org = parent_domain->org;
    if (child_org == parent_org) continue;  // internal chains are not collaboration
    const auto key = parent_org < child_org ? std::pair{parent_org, child_org}
                                            : std::pair{child_org, parent_org};
    auto& accumulator = accumulators[key];
    ++accumulator.weight;
    accumulator.users.insert(request.user);
  }

  CollabGraph graph;
  graph.edges_.reserve(accumulators.size());
  for (const auto& [key, accumulator] : accumulators) {
    Edge edge;
    edge.a = key.first;
    edge.b = key.second;
    edge.weight = accumulator.weight;
    edge.users = accumulator.users.size();
    const std::size_t index = graph.edges_.size();
    graph.edges_.push_back(edge);
    graph.by_org_[edge.a].push_back(index);
    graph.by_org_[edge.b].push_back(index);
    ++graph.degree_[edge.a];
    ++graph.degree_[edge.b];
  }
  return graph;
}

std::size_t CollabGraph::degree(world::OrgId org) const {
  const auto it = degree_.find(org);
  return it == degree_.end() ? 0 : it->second;
}

std::vector<Edge> CollabGraph::partners_of(world::OrgId org) const {
  std::vector<Edge> out;
  if (const auto it = by_org_.find(org); it != by_org_.end()) {
    for (const auto index : it->second) out.push_back(edges_[index]);
  }
  std::sort(out.begin(), out.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
  return out;
}

std::vector<Edge> CollabGraph::top_edges(std::size_t n) const {
  std::vector<Edge> out = edges_;
  std::sort(out.begin(), out.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
  if (out.size() > n) out.resize(n);
  return out;
}

std::map<world::OrgId, std::uint32_t> CollabGraph::communities(std::size_t iterations,
                                                               util::Rng& rng) const {
  // Asynchronous label propagation with weighted votes.
  std::map<world::OrgId, std::uint32_t> label;
  std::vector<world::OrgId> nodes;
  for (const auto& [org, indices] : by_org_) {
    label[org] = static_cast<std::uint32_t>(org);
    nodes.push_back(org);
  }
  for (std::size_t pass = 0; pass < iterations; ++pass) {
    rng.shuffle(std::span<world::OrgId>(nodes));
    bool changed = false;
    for (const auto node : nodes) {
      std::unordered_map<std::uint32_t, std::uint64_t> votes;
      for (const auto index : by_org_.at(node)) {
        const Edge& edge = edges_[index];
        const auto neighbour = edge.a == node ? edge.b : edge.a;
        votes[label[neighbour]] += edge.weight;
      }
      if (votes.empty()) continue;
      std::uint32_t best_label = label[node];
      std::uint64_t best_weight = 0;
      for (const auto& [candidate, weight] : votes) {
        if (weight > best_weight ||
            (weight == best_weight && candidate < best_label)) {
          best_weight = weight;
          best_label = candidate;
        }
      }
      if (best_label != label[node]) {
        label[node] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return label;
}

double CollabGraph::cross_border_weight_share(const geoloc::GeoService& service,
                                              geoloc::Tool tool,
                                              const world::World& world) const {
  // An org is "EU-hosted" when the majority of its serving infrastructure
  // geolocates inside EU28.
  const auto org_in_eu = [&](world::OrgId org_id) {
    std::size_t eu = 0;
    std::size_t total = 0;
    for (const auto sid : world.org(org_id).servers) {
      const auto country = service.locate(world.server(sid).ip, tool);
      const geo::Country* info = geo::find_country(country);
      if (info == nullptr) continue;
      ++total;
      if (info->eu28) ++eu;
    }
    return total > 0 && eu * 2 > total;
  };

  std::map<world::OrgId, bool> eu_cache;
  std::uint64_t total_weight = 0;
  std::uint64_t crossing_weight = 0;
  for (const auto& edge : edges_) {
    for (const auto org : {edge.a, edge.b}) {
      if (!eu_cache.contains(org)) eu_cache[org] = org_in_eu(org);
    }
    total_weight += edge.weight;
    if (eu_cache[edge.a] != eu_cache[edge.b]) crossing_weight += edge.weight;
  }
  return total_weight == 0
             ? 0.0
             : static_cast<double>(crossing_weight) / static_cast<double>(total_weight);
}

}  // namespace cbwt::collab
