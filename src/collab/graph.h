// Inter-tracker collaboration analysis — the extension the paper's
// conclusion announces as future work: "capture inter-tracker
// collaboration and data exchange". The graph is reconstructed from the
// extension dataset alone: an edge between two organizations means the
// browser was observed carrying data from one to the other (a chained
// request — cookie-sync or bid chain — whose referrer belongs to the
// other org). Edge weights count observations; jurisdictions of the two
// endpoints' serving infrastructure tell us when the *collaboration
// itself* crosses the GDPR border.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "browser/extension.h"
#include "classify/classifier.h"
#include "geoloc/service.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::collab {

/// One collaboration edge between two organizations (a < b by id).
struct Edge {
  world::OrgId a = 0;
  world::OrgId b = 0;
  std::uint64_t weight = 0;     ///< observed data-carrying requests
  std::uint64_t users = 0;      ///< distinct users whose browsers carried it
};

/// The undirected, weighted collaboration graph.
class CollabGraph {
 public:
  /// Builds the graph from classified tracking flows: every chained
  /// tracking request whose referrer resolves to a different org's
  /// domain adds weight to the (parent org, child org) edge.
  [[nodiscard]] static CollabGraph from_dataset(
      const world::World& world, const browser::ExtensionDataset& dataset,
      const std::vector<classify::Outcome>& outcomes);

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return degree_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Number of distinct partners of an org (0 if absent).
  [[nodiscard]] std::size_t degree(world::OrgId org) const;

  /// Partners of `org`, heaviest edge first.
  [[nodiscard]] std::vector<Edge> partners_of(world::OrgId org) const;

  /// Edges sorted by weight, heaviest first.
  [[nodiscard]] std::vector<Edge> top_edges(std::size_t n) const;

  /// Label-propagation community detection (deterministic given rng).
  /// Returns the community id per org (only orgs present in the graph).
  [[nodiscard]] std::map<world::OrgId, std::uint32_t> communities(
      std::size_t iterations, util::Rng& rng) const;

  /// Share of edge weight whose two endpoints are served from different
  /// jurisdictions (EU28 vs outside), under the given geolocation tool:
  /// data exchanged over those edges crosses the GDPR border even when
  /// each individual flow looked confined.
  [[nodiscard]] double cross_border_weight_share(const geoloc::GeoService& service,
                                                 geoloc::Tool tool,
                                                 const world::World& world) const;

 private:
  std::vector<Edge> edges_;
  std::map<world::OrgId, std::vector<std::size_t>> by_org_;  // org -> edge indices
  std::map<world::OrgId, std::size_t> degree_;
};

}  // namespace cbwt::collab
