#include "fault/fault.h"

#include <cstdlib>

#include "util/contract.h"
#include "util/prng.h"

namespace cbwt::fault {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Timeout: return "timeout";
    case FaultKind::Error: return "error";
    case FaultKind::SlowResponse: return "slow";
    case FaultKind::StaleData: return "stale";
  }
  return "?";
}

bool FaultPlan::enabled() const noexcept {
  if (default_rates.any()) return true;
  for (const auto& [label, rates] : site_rates) {
    if (rates.any()) return true;
  }
  return false;
}

const SiteRates& FaultPlan::rates_for(std::string_view label) const noexcept {
  const auto it = site_rates.find(label);
  return it != site_rates.end() ? it->second : default_rates;
}

Site FaultPlan::site(std::string_view label) const noexcept {
  return Site{site_hash(label), rates_for(label)};
}

FaultPlan FaultPlan::uniform(std::uint64_t seed, double rate) {
  CBWT_EXPECTS(rate >= 0.0 && rate <= 1.0);
  FaultPlan plan;
  plan.seed = seed;
  plan.default_rates = {rate / 4.0, rate / 4.0, rate / 4.0, rate / 4.0};
  return plan;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;  // default: disabled (all rates zero)
  // from_env() runs once at startup before any worker exists; nothing
  // mutates the environment concurrently.
  const char* rate_env = std::getenv("CBWT_FAULT_RATE");  // NOLINT(concurrency-mt-unsafe)
  if (rate_env == nullptr) return plan;
  const double rate = std::atof(rate_env);
  if (rate <= 0.0) return plan;
  std::uint64_t seed = plan.seed;
  if (const char* seed_env = std::getenv("CBWT_FAULT_SEED")) {  // NOLINT(concurrency-mt-unsafe)
    seed = std::strtoull(seed_env, nullptr, 10);
  }
  return uniform(seed, rate < 1.0 ? rate : 1.0);
}

std::uint64_t site_hash(std::string_view label) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return util::mix64(h);
}

double stateless_uniform(std::uint64_t seed, std::uint64_t site_hash,
                         std::uint64_t key, std::uint64_t salt) noexcept {
  const std::uint64_t mixed = util::mix64(
      util::mix64(seed ^ site_hash) ^ util::mix64(key ^ util::mix64(salt)));
  // Top 53 bits -> [0, 1), the standard double construction.
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

FaultKind decide(std::uint64_t plan_seed, const Site& site, std::uint64_t key,
                 std::uint32_t attempt) noexcept {
  const SiteRates& rates = site.rates;
  if (!rates.any()) return FaultKind::None;
  const double u = stateless_uniform(plan_seed, site.hash, key, attempt);
  // Cumulative thresholds: u is rate-independent, so growing any rate
  // only widens the faulted interval (the nesting property).
  double edge = rates.timeout;
  if (u < edge) return FaultKind::Timeout;
  edge += rates.error;
  if (u < edge) return FaultKind::Error;
  edge += rates.slow;
  if (u < edge) return FaultKind::SlowResponse;
  edge += rates.stale;
  if (u < edge) return FaultKind::StaleData;
  return FaultKind::None;
}

}  // namespace cbwt::fault
